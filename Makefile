PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench-smoke verify

# Full tier-1 suite.
test:
	$(PYTHON) -m pytest -x -q

# Fast lane: skips the @pytest.mark.slow DP/integration tests (~3x faster).
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

# Tiny end-to-end benchmark: Figure 2 experiment at smoke scale with the
# parallel runner engaged.  Exercises trace generation, every policy
# family, the DP cache, and the process pool in a few seconds.
bench-smoke:
	REPRO_BENCH_SCALE=smoke REPRO_BENCH_TRACES=2 REPRO_BENCH_PETA=64 \
	REPRO_BENCH_PPOINTS=2 REPRO_BENCH_JOBS=2 \
		$(PYTHON) -m pytest benchmarks/bench_fig2_peta_exp.py --benchmark-only -q

# What CI / pre-merge should run.
verify: test-fast bench-smoke
