PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint lint-fix test test-fast bench-smoke bench-engine bench-dp \
	bench-solvecache bench-sweep service-smoke verify

# Static analysis.  reprolint (stdlib-only, part of this package) always
# runs the full R1-R15 rule set — per-file, whole-program and
# interprocedural — over src/ and tests/ (the literal rules R2/R3 relax
# themselves inside test files).  Re-runs are incremental via
# .reprolint-cache/ (file level and call-graph level).  --baseline
# applies the committed (currently empty) ratchet file and fails on
# stale entries.  ruff and mypy run only where installed — CI installs
# both.
lint:
	$(PYTHON) -m repro lint src tests --baseline
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed -- skipping (CI runs it)"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed -- skipping (CI runs it)"; \
	fi

# Apply reprolint's mechanical fixes (R2 unit constants, R4 future
# imports), then report what is left for a human.
lint-fix:
	$(PYTHON) -m repro lint src tests --fix

# Full tier-1 suite.
test:
	$(PYTHON) -m pytest -x -q

# Fast lane: skips the @pytest.mark.slow DP/integration tests (~3x faster).
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

# Tiny end-to-end benchmark: Figure 2 experiment at smoke scale with the
# parallel runner engaged.  Exercises trace generation, every policy
# family, the DP cache, and the process pool in a few seconds.
bench-smoke:
	REPRO_BENCH_SCALE=smoke REPRO_BENCH_TRACES=2 REPRO_BENCH_PETA=64 \
	REPRO_BENCH_PPOINTS=2 REPRO_BENCH_JOBS=2 \
		$(PYTHON) -m pytest benchmarks/bench_fig2_peta_exp.py --benchmark-only -q

# Engine benchmark at smoke scale: verifies the batch replay and the
# vectorized DPMakespan sweep are bit-identical to their scalar/loop
# references (full scale: python benchmarks/bench_engine.py).
bench-engine:
	$(PYTHON) benchmarks/bench_engine.py --smoke

# Adaptive-policy pipeline benchmark at smoke scale: verifies the
# vectorized kernels, replan memo and shared-memory publication are
# bit-identical (full scale: python benchmarks/bench_dp_pipeline.py).
bench-dp:
	$(PYTHON) benchmarks/bench_dp_pipeline.py --smoke

# Persistent solve-cache benchmark at smoke scale: verifies cold,
# disk-warm (second process) and shared-memo (--jobs 2) runs are
# bit-identical (full scale: python benchmarks/bench_solvecache.py).
bench-solvecache:
	$(PYTHON) benchmarks/bench_solvecache.py --smoke

# Grid-sweep benchmark at smoke scale: verifies the shared-trace sweep
# plan is bit-identical to running every grid point independently
# (full scale: python benchmarks/bench_sweep.py).
bench-sweep:
	$(PYTHON) benchmarks/bench_sweep.py --smoke

# Scenario-service acceptance check: boots a real daemon on an
# ephemeral port, drives it through the CLI, asserts daemon results are
# bit-identical to a direct `repro run` and that resubmission is served
# from the result store (docs/service.md).
service-smoke:
	$(PYTHON) -m repro.service.smoke

# What CI / pre-merge should run (CI also runs bench-engine as its own
# step).
verify: lint test-fast bench-smoke service-smoke
