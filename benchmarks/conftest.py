"""Benchmark session configuration (kept minimal; result tables are
echoed to the real terminal by ``_util.report`` and archived under
``benchmarks/results/``)."""
