"""Engine benchmark: vectorized batch replay and DPMakespan sweep.

Standalone script (not pytest-benchmark — CI runs it directly):

    python benchmarks/bench_engine.py [--smoke]

Two measurements, each with a built-in bit-identity check:

1. **Ensemble replay** — every static-schedule policy (Young, DalyLow,
   DalyHigh, OptExp, Bouguerra, Liu) plus the omniscient LowerBound over
   a Weibull trace ensemble, scalar engine (one ``simulate_job`` per
   trace) vs the batch engine (one ``TraceEnsemble`` compile shared by
   all policies + one lockstep replay per policy).
2. **DPMakespan build** — the ``y``-at-a-time reference loop vs the
   blocked 2-D ``(y, i)`` vectorized sweep of
   :func:`repro.core.dp_makespan.dp_makespan`.

Results are archived to ``benchmarks/results/engine_batch.txt`` and
machine-readable ``BENCH_engine.json`` at the repo root.  The full run
asserts the >= 5x ensemble-replay speedup documented in
``docs/performance.md``; ``--smoke`` only checks identity (tiny sizes
tell nothing about throughput).
"""

from __future__ import annotations

import argparse
import math
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.dp_makespan import dp_makespan  # noqa: E402
from repro.distributions.weibull import Weibull  # noqa: E402
from repro.policies.base import PolicyInfeasibleError  # noqa: E402
from repro.policies.bouguerra import Bouguerra  # noqa: E402
from repro.policies.classical import (  # noqa: E402
    DalyHigh,
    DalyLow,
    OptExp,
    Young,
)
from repro.policies.liu import Liu  # noqa: E402
from repro.simulation.batch import (  # noqa: E402
    TraceEnsemble,
    simulate_lower_bound_batch,
    simulate_policy_ensemble,
)
from repro.simulation.engine import (  # noqa: E402
    simulate_job,
    simulate_lower_bound,
)
from repro.traces.generation import generate_platform_traces  # noqa: E402

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _util import report, write_bench_json  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

HOUR = 3600.0
DAY = 24 * HOUR

RESULT_FIELDS = (
    "makespan",
    "work_time",
    "n_failures",
    "n_checkpoints",
    "n_attempts",
    "chunk_min",
    "chunk_max",
    "completed",
    "time_lost",
    "time_outage",
    "time_waiting",
)


def _same_result(a, b) -> bool:
    if a is None or b is None:
        return a is b
    for f in RESULT_FIELDS:
        x, y = getattr(a, f), getattr(b, f)
        if (
            isinstance(x, float)
            and isinstance(y, float)
            and math.isnan(x)
            and math.isnan(y)
        ):
            continue
        if x != y:
            return False
    return True


def bench_ensemble_replay(n_traces: int, seed: int = 11) -> dict:
    """Scalar-vs-batch replay of a whole policy family over one
    ensemble; returns timings + the bit-identity verdict."""
    dist = Weibull.from_mtbf(18 * HOUR, 0.7)
    n_units = 8
    work, checkpoint, recovery, downtime = 50 * HOUR, 600.0, 300.0, 60.0
    horizon = 60 * DAY  # reprolint: disable=R2  (60 days, not MINUTE)
    mtbf = dist.mean() / n_units

    traces = [
        generate_platform_traces(
            dist,
            n_units,
            horizon,
            downtime=downtime,
            seed=np.random.SeedSequence([seed, i]),
        ).for_job(n_units)
        for i in range(n_traces)
    ]
    policies = [Young(), DalyLow(), DalyHigh(), OptExp(), Bouguerra(), Liu()]
    # Warm up lazily-imported numerics (scipy inside Bouguerra's setup)
    # so neither side pays the one-time import cost.
    for pol in policies:
        try:
            simulate_job(
                pol,
                work,
                traces[0],
                checkpoint,
                recovery,
                dist,
                platform_mtbf=mtbf,
            )
        except PolicyInfeasibleError:
            pass

    t0 = time.perf_counter()
    ensemble = TraceEnsemble(traces, recovery, 0.0)
    t1 = time.perf_counter()
    batch_results = {}
    for pol in policies:
        batch_results[pol.name] = simulate_policy_ensemble(
            pol,
            work,
            traces,
            checkpoint,
            recovery,
            dist,
            platform_mtbf=mtbf,
            ensemble=ensemble,
        )
    batch_results["LowerBound"] = simulate_lower_bound_batch(
        work, ensemble, checkpoint
    )
    t2 = time.perf_counter()

    scalar_results = {}
    for pol in policies:
        per_trace = []
        for tr in traces:
            try:
                per_trace.append(
                    simulate_job(
                        pol,
                        work,
                        tr,
                        checkpoint,
                        recovery,
                        dist,
                        platform_mtbf=mtbf,
                    )
                )
            except PolicyInfeasibleError:
                per_trace.append(None)
        scalar_results[pol.name] = per_trace
    scalar_results["LowerBound"] = [
        simulate_lower_bound(work, tr, checkpoint, recovery) for tr in traces
    ]
    t3 = time.perf_counter()

    identical = all(
        _same_result(batch_results[name][i], scalar_results[name][i])
        for name in scalar_results
        for i in range(n_traces)
    )
    compile_s, replay_s, scalar_s = t1 - t0, t2 - t1, t3 - t2
    batch_s = t2 - t0
    return {
        "n_traces": n_traces,
        "n_units": n_units,
        "n_policies": len(policies) + 1,
        "distribution": "Weibull(k=0.7, MTBF=18h)",
        "work_h": work / HOUR,
        "checkpoint_s": checkpoint,
        "recovery_s": recovery,
        "compile_s": compile_s,
        "batch_replay_s": replay_s,
        "batch_total_s": batch_s,
        "scalar_s": scalar_s,
        "speedup": scalar_s / batch_s,
        "speedup_replay_only": scalar_s / replay_s,
        "identical": identical,
    }


def bench_dp_makespan(n_grid: int) -> dict:
    """Loop-vs-vectorized DPMakespan table build; identical tables."""
    dist = Weibull.from_mtbf(10 * DAY, 0.7)
    work, checkpoint, downtime, recovery = 20 * DAY, 600.0, 60.0, 600.0
    u = max(checkpoint, work / n_grid)

    t0 = time.perf_counter()
    vec = dp_makespan(work, checkpoint, downtime, recovery, dist, u, vectorized=True)
    t1 = time.perf_counter()
    loop = dp_makespan(work, checkpoint, downtime, recovery, dist, u, vectorized=False)
    t2 = time.perf_counter()

    identical = (
        np.array_equal(vec._v_pre, loop._v_pre)
        and np.array_equal(vec._c_pre, loop._c_pre)
        and np.array_equal(vec._v_post, loop._v_post)
        and np.array_equal(vec._c_post, loop._c_post)
        and vec.expected_makespan == loop.expected_makespan
        and vec.first_chunk == loop.first_chunk
    )
    return {
        "n_grid": n_grid,
        "distribution": "Weibull(k=0.7, MTBF=10d)",
        "work_d": work / DAY,
        "vectorized_s": t1 - t0,
        "loop_s": t2 - t1,
        "speedup": (t2 - t1) / (t1 - t0),
        "identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes: verify bit-identity, skip the speedup floor",
    )
    parser.add_argument(
        "--traces",
        type=int,
        default=None,
        help="ensemble size (default 240; smoke 40)",
    )
    parser.add_argument(
        "--n-grid",
        type=int,
        default=None,
        help="DPMakespan grid (default 288; smoke 64)",
    )
    args = parser.parse_args(argv)
    n_traces = args.traces or (40 if args.smoke else 240)
    n_grid = args.n_grid or (64 if args.smoke else 288)

    replay = bench_ensemble_replay(n_traces)
    dp = bench_dp_makespan(n_grid)

    lines = [
        f"mode: {'smoke' if args.smoke else 'full'}",
        "",
        "ensemble replay (scalar simulate_job loop vs batch engine)",
        f"  scenario: {replay['distribution']}, p={replay['n_units']}, "
        f"W={replay['work_h']:.0f}h, C={replay['checkpoint_s']:.0f}s, "
        f"{replay['n_traces']} traces x {replay['n_policies']} policies "
        "(incl. LowerBound)",
        f"  scalar          {replay['scalar_s'] * 1000:9.1f} ms",
        f"  batch compile   {replay['compile_s'] * 1000:9.1f} ms (shared)",
        f"  batch replay    {replay['batch_replay_s'] * 1000:9.1f} ms",
        f"  speedup         {replay['speedup']:9.1f} x (incl. compile; "
        f"{replay['speedup_replay_only']:.1f}x replay only)",
        f"  bit-identical   {replay['identical']}",
        "",
        "DPMakespan table build (reference y-loop vs vectorized sweep)",
        f"  scenario: {dp['distribution']}, W={dp['work_d']:.0f}d, "
        f"n_grid={dp['n_grid']}",
        f"  loop            {dp['loop_s'] * 1000:9.1f} ms",
        f"  vectorized      {dp['vectorized_s'] * 1000:9.1f} ms",
        f"  speedup         {dp['speedup']:9.1f} x",
        f"  identical       {dp['identical']}",
    ]
    if args.smoke:
        # Smoke runs are an identity gate (CI); only a full run may
        # replace the archived full-scale artifacts.
        print("\n".join(lines))
    else:
        report("engine_batch", "\n".join(lines))
        payload = {
            "benchmark": "engine",
            "mode": "full",
            "ensemble_replay": replay,
            "dp_makespan": dp,
        }
        out = REPO_ROOT / "BENCH_engine.json"
        write_bench_json(out, payload)
        print(f"wrote {out}")

    if not (replay["identical"] and dp["identical"]):
        print("FAIL: batch/vectorized results are not bit-identical")
        return 1
    if not args.smoke and replay["n_traces"] >= 200 and replay["speedup"] < 5.0:
        print(
            f"FAIL: ensemble replay speedup {replay['speedup']:.1f}x "
            "below the documented 5x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
