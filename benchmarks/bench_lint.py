"""reprolint engine benchmark: cold vs incremental vs parallel.

Lints the full tree (``src/`` + ``tests/``) four ways:

1. cold, serial, caching disabled (the lower bound for one-shot runs);
2. cold, serial, writing ``.reprolint-cache/`` (cache-fill overhead);
3. warm, incremental (the edit-relint loop: zero files re-parsed);
4. cold, parallel (``REPRO_BENCH_JOBS`` workers, default one per CPU).

Diagnostics are asserted identical across all four runs, and the warm
run is asserted to re-parse nothing — the two guarantees the engine's
cache and process pool are built on.  The measured numbers land in
``benchmarks/results/lint_engine.txt`` and are quoted in
``docs/development.md``.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.lint import run_lint
from repro.lint.cache import LintCache

from _util import report, run_once

REPO = Path(__file__).resolve().parent.parent
PATHS = [REPO / "src", REPO / "tests"]


def test_lint_engine_modes(benchmark):
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0") or 0) or (os.cpu_count() or 1)

    def timed(label, fn):
        t = time.perf_counter()
        res = fn()
        return label, time.perf_counter() - t, res

    def run_all():
        cache_dir = Path(tempfile.mkdtemp(prefix="reprolint-bench-"))
        try:
            rows = [
                timed("cold serial, no cache", lambda: run_lint(PATHS)),
                timed(
                    "cold serial, cache fill",
                    lambda: run_lint(PATHS, cache=LintCache(cache_dir)),
                ),
                timed(
                    "warm incremental",
                    lambda: run_lint(PATHS, cache=LintCache(cache_dir)),
                ),
                timed(
                    f"cold parallel, jobs={jobs}",
                    lambda: run_lint(PATHS, jobs=jobs),
                ),
            ]
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)
        return rows

    rows = run_once(benchmark, run_all)

    base = rows[0][2]
    for _label, _t, rep in rows[1:]:
        assert [d.render() for d in rep.diagnostics] == [
            d.render() for d in base.diagnostics
        ], "lint results differ across engine modes"
    warm = rows[2][2]
    assert warm.parsed == 0, "warm cache run re-parsed files"

    t_cold = rows[0][1]
    lines = [
        f"linted: src/ + tests/ = {base.files} files, "
        f"{len(base.diagnostics)} findings",
        f"host CPUs: {os.cpu_count()}",
        "",
        f"{'mode':<26} {'wall [s]':>9}  {'vs cold':>8}",
    ]
    for label, t, rep in rows:
        lines.append(
            f"{label:<26} {t:>9.3f}  {t_cold / t:>7.1f}x"
            + (f"  (parsed {rep.parsed}/{rep.files})" if not rep.parsed else "")
        )
    report("lint_engine", "\n".join(lines))
