"""reprolint engine benchmark: cold vs incremental vs parallel.

Lints the full tree (``src/`` + ``tests/``) four ways:

1. cold, serial, caching disabled (the lower bound for one-shot runs);
2. cold, serial, writing ``.reprolint-cache/`` (cache-fill overhead);
3. warm, incremental (the edit-relint loop: zero files re-parsed and
   the interprocedural layer replayed entirely from the project cache);
4. cold, parallel (``REPRO_BENCH_JOBS`` workers, default one per CPU).

A fifth row isolates the interprocedural layer itself: building the
resolved project call graph plus the three dataflow summaries
(determinism taint, kernel reachability, exception leaks) over the
already-parsed model — the marginal cost R13-R15 add to a cold run.

Diagnostics are asserted identical across all full runs, and the warm
run is asserted to re-parse nothing and re-analyze no module — the
guarantees the engine's file and project caches are built on.  The
measured numbers land in ``benchmarks/results/lint_engine.txt`` and
are quoted in ``docs/development.md``.
"""

from __future__ import annotations

import ast
import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.lint import run_lint
from repro.lint.cache import LintCache
from repro.lint.engine import iter_python_files
from repro.lint.interproc import InterAnalysis
from repro.lint.project import ProjectModel, build_module_info

from _util import report, run_once

REPO = Path(__file__).resolve().parent.parent
PATHS = [REPO / "src", REPO / "tests"]


def _interprocedural_pass():
    """Model + call graph + all three summaries, timed separately."""
    modules = []
    for path in iter_python_files(PATHS):
        text = path.read_text(encoding="utf-8")
        modules.append(
            build_module_info(path, ast.parse(text), text.splitlines())
        )
    analysis = InterAnalysis(ProjectModel(modules))
    analysis.taint_summary()
    analysis.kernel_summary()
    analysis.leak_summary()
    return analysis


def test_lint_engine_modes(benchmark):
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0") or 0) or (os.cpu_count() or 1)

    def timed(label, fn):
        t = time.perf_counter()
        res = fn()
        return label, time.perf_counter() - t, res

    def run_all():
        cache_dir = Path(tempfile.mkdtemp(prefix="reprolint-bench-"))
        try:
            rows = [
                timed("cold serial, no cache", lambda: run_lint(PATHS)),
                timed(
                    "cold serial, cache fill",
                    lambda: run_lint(PATHS, cache=LintCache(cache_dir)),
                ),
                timed(
                    "warm incremental",
                    lambda: run_lint(PATHS, cache=LintCache(cache_dir)),
                ),
                timed(
                    f"cold parallel, jobs={jobs}",
                    lambda: run_lint(PATHS, jobs=jobs),
                ),
                timed("call graph + summaries", _interprocedural_pass),
            ]
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)
        return rows

    rows = run_once(benchmark, run_all)

    full_runs, graph_row = rows[:4], rows[4]
    base = full_runs[0][2]
    for _label, _t, rep in full_runs[1:]:
        assert [d.render() for d in rep.diagnostics] == [
            d.render() for d in base.diagnostics
        ], "lint results differ across engine modes"
    warm = full_runs[2][2]
    assert warm.parsed == 0, "warm cache run re-parsed files"
    assert warm.project_reanalyzed == [], (
        "warm cache run re-analyzed interprocedural modules"
    )
    n_functions = sum(
        1 for _ in graph_row[2].model.functions()
    )

    t_cold = rows[0][1]
    lines = [
        f"linted: src/ + tests/ = {base.files} files, "
        f"{len(base.diagnostics)} findings",
        f"call graph: {n_functions} functions, "
        f"{len(graph_row[2].graph.out)} callers resolved",
        f"host CPUs: {os.cpu_count()}",
        "",
        f"{'mode':<26} {'wall [s]':>9}  {'vs cold':>8}",
    ]
    for label, t, rep in full_runs:
        lines.append(
            f"{label:<26} {t:>9.3f}  {t_cold / t:>7.1f}x"
            + (f"  (parsed {rep.parsed}/{rep.files})" if not rep.parsed else "")
        )
    lines.append(
        f"{graph_row[0]:<26} {graph_row[1]:>9.3f}  "
        f"{'':>8}  (share of cold: {graph_row[1] / t_cold:.0%})"
    )
    report("lint_engine", "\n".join(lines))
