"""Figure 3: Exascale platform, Exponential failures, degradation vs p.

Paper shape: corroborates Figure 2 — periodic MTBF-based policies remain
optimal-grade under Exponential failures even at 2^20 processors.
"""

from repro.analysis import format_series
from repro.experiments.scaling import run_scaling_experiment

from _util import bench_scale, report, run_once


def test_fig3_exascale_exponential(benchmark):
    scale = bench_scale()
    result = run_once(
        benchmark,
        lambda: run_scaling_experiment("exa", "exponential", scale=scale),
    )
    text = format_series(
        "p",
        result.p_values,
        result.series(),
        title="Average degradation vs processors (Exascale, Exponential)",
    )
    report("fig3_exascale_exponential", text)
