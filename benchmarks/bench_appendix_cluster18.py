"""Appendix E (Figure 100a): log-based failures, LANL-like cluster 18.

Paper shape: same as Figure 7, "even more in favor of DPNextFailure".
"""

import dataclasses

from repro.analysis import format_series
from repro.experiments.logbased import run_logbased_experiment

from _util import bench_scale, report, run_once


def test_appendix_logbased_cluster18(benchmark):
    scale = bench_scale()
    scale = dataclasses.replace(
        scale,
        n_traces=max(4, scale.n_traces // 4),
        n_p_points=min(scale.n_p_points, 3),
    )
    result = run_once(
        benchmark, lambda: run_logbased_experiment(cluster=18, scale=scale)
    )
    text = format_series(
        "p",
        result.p_values,
        result.series(),
        title="Average degradation vs processors (LANL-like cluster 18)",
    )
    report("appendix_logbased_cluster18", text)
