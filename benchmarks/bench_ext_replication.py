"""Extension bench (Section 8): replication on platform halves.

Expected shape: at the paper's reliability level replication loses
(double compute, failures too rare to matter); as the processor MTBF
shrinks, the synchronized-replication curve crosses below the
unreplicated one — the open question the paper poses, quantified.
"""

from repro.experiments.replication import run_replication_experiment
from repro.units import DAY

from _util import bench_scale, report, run_once


def test_extension_replication_crossover(benchmark):
    scale = bench_scale()
    points = run_once(
        benchmark, lambda: run_replication_experiment(scale=scale)
    )
    lines = [
        f"{'MTBF factor':>11} {'platform MTBF (s)':>18} {'full (d)':>9} "
        f"{'indep (d)':>10} {'sync (d)':>9} {'replication wins':>17}"
    ]
    for pt in points:
        lines.append(
            f"{pt.mtbf_factor:>11.3f} {pt.platform_mtbf:>18.0f} "
            f"{pt.full / DAY:>9.2f} {pt.independent / DAY:>10.2f} "
            f"{pt.synchronized / DAY:>9.2f} {str(pt.replication_wins):>17}"
        )
    report("extension_replication_crossover", "\n".join(lines))
    # reliable end: replication must lose
    assert not points[0].replication_wins
