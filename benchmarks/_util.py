"""Shared benchmark plumbing.

Each benchmark runs one experiment driver once (``benchmark.pedantic``
with a single round — the experiments are themselves statistical), then
prints the paper-style table/series and archives it under
``benchmarks/results/``.

The experiment scale is selected with the ``REPRO_BENCH_SCALE``
environment variable: ``smoke`` | ``small`` (default) | ``medium`` |
``paper``.  Execution knobs: ``REPRO_BENCH_JOBS`` fans scenario work
out over N worker processes (0 = one per CPU; results are bit-identical
to serial), ``REPRO_BENCH_NO_CACHE=1`` bypasses the shared DP table
cache, ``REPRO_BENCH_NO_MEMO=1`` the cross-trace replan memo,
``REPRO_BENCH_NO_SHM=1`` the shared-memory trace publication and
``REPRO_BENCH_NO_DISKCACHE=1`` the persistent disk solve tier — see
``docs/performance.md``.

Archived JSON reports (``write_bench_json``) carry a ``host`` block
(:func:`host_metadata`) so numbers from different machines are never
compared blind.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import platform as _platform
import socket

from repro.experiments import MEDIUM, PAPER, SMALL, SMOKE, ExperimentScale
from repro.simulation.parallel import set_default_execution

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_SCALES = {"smoke": SMOKE, "small": SMALL, "medium": MEDIUM, "paper": PAPER}


def apply_execution_env() -> None:
    """Install ``REPRO_BENCH_JOBS`` / ``REPRO_BENCH_NO_CACHE`` /
    ``REPRO_BENCH_NO_BATCH`` / ``REPRO_BENCH_NO_MEMO`` /
    ``REPRO_BENCH_NO_SHM`` / ``REPRO_BENCH_NO_DISKCACHE`` as the
    process-wide execution default so every driver the benchmark calls
    inherits them."""
    jobs = os.environ.get("REPRO_BENCH_JOBS")
    if jobs:
        set_default_execution(jobs=int(jobs))
    if os.environ.get("REPRO_BENCH_NO_CACHE"):
        set_default_execution(use_cache=False)
    if os.environ.get("REPRO_BENCH_NO_BATCH"):
        set_default_execution(use_batch=False)
    if os.environ.get("REPRO_BENCH_NO_MEMO"):
        set_default_execution(use_memo=False)
    if os.environ.get("REPRO_BENCH_NO_SHM"):
        set_default_execution(use_shm=False)
    if os.environ.get("REPRO_BENCH_NO_DISKCACHE"):
        set_default_execution(use_disk_cache=False)


def host_metadata() -> dict:
    """Identity of the machine that produced a benchmark number.

    Wall-clock results are only comparable on the same hardware; every
    archived bench JSON embeds this block so a number can always be
    traced back to the host (and library versions) that measured it.
    """
    import numpy

    return {
        "hostname": socket.gethostname(),
        "machine": _platform.machine(),
        "system": f"{_platform.system()} {_platform.release()}",
        "cpu_count": os.cpu_count(),
        "python": _platform.python_version(),
        "numpy": numpy.__version__,
    }


def write_bench_json(path: pathlib.Path | str, payload: dict) -> None:
    """Archive a benchmark report as JSON with the ``host`` block
    attached (existing ``host`` keys are preserved)."""
    payload = dict(payload)
    payload.setdefault("host", host_metadata())
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def bench_scale(**overrides) -> ExperimentScale:
    """The configured scale, with per-benchmark overrides applied.

    Additional environment knobs (applied after the named scale) let a
    constrained machine trade statistics for wall-clock:

    - ``REPRO_BENCH_TRACES``: cap ``n_traces``;
    - ``REPRO_BENCH_PETA`` / ``REPRO_BENCH_EXA``: platform sizes;
    - ``REPRO_BENCH_PPOINTS``: points on degradation-vs-p axes;
    - ``REPRO_BENCH_JOBS`` / ``REPRO_BENCH_NO_CACHE``: execution mode
      (worker processes / DP-cache bypass), applied as a side effect.
    """
    apply_execution_env()
    name = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    scale = _SCALES.get(name, SMALL)
    env = {}
    for var, field in (
        ("REPRO_BENCH_TRACES", "n_traces"),
        ("REPRO_BENCH_PETA", "ptotal_peta"),
        ("REPRO_BENCH_EXA", "ptotal_exa"),
        ("REPRO_BENCH_PPOINTS", "n_p_points"),
    ):
        value = os.environ.get(var)
        if value:
            env[field] = int(value)
    if "n_traces" in env:
        env.setdefault(
            "period_lb_traces", min(scale.period_lb_traces, env["n_traces"])
        )
    merged = {**env, **overrides}
    return dataclasses.replace(scale, **merged) if merged else scale


def report(name: str, text: str) -> None:
    """Echo a result block to the real terminal (bypassing pytest's
    capture) and archive it under ``benchmarks/results/``."""
    import sys

    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)  # captured output (visible with -s / on failure)
    try:
        sys.__stdout__.write(banner)
        sys.__stdout__.flush()
    except (AttributeError, ValueError):  # pragma: no cover - no terminal
        pass
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
