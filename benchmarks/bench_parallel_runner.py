"""Parallel runner and DP-cache speedup measurement.

Runs one fixed DP-heavy scenario sweep (the regime where the table
cache and the process pool actually matter) four ways:

1. serial, cold DP cache;
2. serial, warm DP cache (second run of the identical sweep);
3. serial, cache disabled (the ``--no-cache`` baseline);
4. parallel (``REPRO_BENCH_JOBS`` workers, default = one per CPU).

and reports wall-clock, speedups over the cold serial run, and the
cache hit/miss counters surfaced in ``ScenarioResult``.  Per-trace
makespans are asserted bit-identical across all four runs — the
determinism guarantee the parallel layer is built on.

The measured numbers land in ``benchmarks/results/parallel_runner.txt``
and are quoted in ``docs/performance.md``.  On a single-core container
the parallel row shows pool overhead instead of speedup; on an N-core
machine it approaches the core count for trace-dominated sweeps.
"""

import os
import time

import numpy as np

from repro.cluster.models import ConstantOverhead, Platform
from repro.core.cache import cache_stats, clear_cache
from repro.distributions import Weibull
from repro.experiments import SMOKE
from repro.policies import DPMakespanPolicy, DPNextFailurePolicy, OptExp, Young
from repro.simulation.runner import run_scenarios
from repro.units import DAY, HOUR

from _util import bench_scale, report, run_once


def _sweep(jobs: int, use_cache: bool, n_traces: int):
    platform = Platform(
        p=8,
        dist=Weibull.from_mtbf(18 * HOUR, 0.7),
        downtime=60.0,
        overhead=ConstantOverhead(600.0),
    )
    return run_scenarios(
        [Young(), OptExp(), DPNextFailurePolicy(n_grid=64), DPMakespanPolicy(n_grid=96)],
        platform,
        work_time=2 * DAY,
        n_traces=n_traces,
        horizon=400 * DAY,
        seed=2011,
        period_lb_factors=[0.5, 0.8, 1.0, 1.25, 2.0],
        jobs=jobs,
        use_cache=use_cache,
    )


def test_parallel_runner_speedup(benchmark):
    scale = bench_scale()
    n_traces = max(8, min(scale.n_traces, 40))
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0") or 0) or (os.cpu_count() or 1)

    def timed(label, fn):
        t = time.perf_counter()
        res = fn()
        return label, time.perf_counter() - t, res

    def run_all():
        clear_cache()
        rows = [timed("serial cold cache", lambda: _sweep(1, True, n_traces))]
        rows.append(timed("serial warm cache", lambda: _sweep(1, True, n_traces)))
        rows.append(timed("serial no cache", lambda: _sweep(1, False, n_traces)))
        clear_cache()  # parallel run starts cold, like the serial baseline
        rows.append(timed(f"parallel jobs={jobs}", lambda: _sweep(jobs, True, n_traces)))
        return rows

    rows = run_once(benchmark, run_all)

    base = rows[0][2]
    for _label, _t, res in rows[1:]:
        for name in base.makespans:
            assert np.array_equal(
                base.makespans[name], res.makespans[name], equal_nan=True
            ), f"{name} differs — determinism broken"

    t_cold = rows[0][1]
    lines = [
        f"scenario sweep: 4 policies + LowerBound + PeriodLB, "
        f"{n_traces} traces, p=8, Weibull k=0.7",
        f"host CPUs: {os.cpu_count()}",
        "",
        f"{'mode':>22} {'seconds':>9} {'speedup':>9} {'hits':>6} {'misses':>7}",
    ]
    for label, t, res in rows:
        lines.append(
            f"{label:>22} {t:9.2f} {t_cold / t:8.2f}x "
            f"{res.cache_hits:6d} {res.cache_misses:7d}"
        )
    lines.append("")
    lines.append(f"global cache after sweep: {cache_stats()}")
    report("parallel_runner", "\n".join(lines))
