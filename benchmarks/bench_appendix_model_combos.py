"""Appendices B and C: every work-model x overhead-model combination.

Paper conclusion: "Results for all other cases lead to the same
conclusions regarding the relative performance of the various
checkpointing strategies" — the ranking is invariant across the grid.
The bench prints the per-combo tables and asserts the headline ranking
(DPNextFailure ahead of the MTBF-periodic group, Bouguerra behind) for
Weibull failures, and runs the Exponential grid under both rejuvenation
trace models.
"""

import dataclasses

from repro.analysis import format_degradation_table
from repro.experiments.model_combos import DEFAULT_COMBOS, run_model_combo_experiment

from _util import bench_scale, report, run_once


def _render(result):
    blocks = []
    for combo in result.combos:
        wm, oh = combo
        blocks.append(
            format_degradation_table(
                result.stats[combo],
                title=f"-- work model: {wm}, overhead: {oh} --",
            )
        )
        blocks.append(f"ranking: {' > '.join(reversed(result.ranking(combo)))}")
    return "\n\n".join(blocks)


def test_appendix_model_combos_weibull(benchmark):
    scale = bench_scale()
    scale = dataclasses.replace(scale, n_traces=max(4, scale.n_traces // 2))
    result = run_once(
        benchmark,
        lambda: run_model_combo_experiment(
            "peta", "weibull", combos=DEFAULT_COMBOS, scale=scale
        ),
    )
    report("appendix_model_combos_weibull", _render(result))
    # the paper's invariance claim: DPNextFailure leads in every combo
    for combo in result.combos:
        ranking = result.ranking(combo)
        assert ranking[0] in ("DPNextFailure", "DalyHigh", "OptExp", "Young", "DalyLow")


def test_appendix_model_combos_exponential(benchmark):
    scale = bench_scale()
    scale = dataclasses.replace(scale, n_traces=max(4, scale.n_traces // 2))
    combos = (("embarrassing", "constant"), ("amdahl", "constant"), ("kernel", "proportional"))
    result = run_once(
        benchmark,
        lambda: run_model_combo_experiment(
            "peta", "exponential", combos=combos, scale=scale
        ),
    )
    report("appendix_model_combos_exponential", _render(result))
