"""Table 2: single processor, Exponential failures.

Paper values (600 traces, W=20 days, MTBF 1 h / 1 d / 1 w): all
heuristics within ~1-3% of PeriodLB; LowerBound 0.63 / 0.91 / 0.98;
Liu degrades at long MTBFs; DPNextFailure and DPMakespan close to the
optimal periodic policy.
"""

from repro.analysis import format_degradation_table
from repro.experiments.single_proc import run_single_proc_experiment
from repro.units import DAY, HOUR, WEEK

from _util import bench_scale, report, run_once

ORDER = [
    "LowerBound",
    "PeriodLB",
    "Young",
    "DalyLow",
    "DalyHigh",
    "Liu",
    "Bouguerra",
    "OptExp",
    "DPNextFailure",
    "DPMakespan",
]


def test_table2_single_proc_exponential(benchmark):
    scale = bench_scale()
    result = run_once(
        benchmark,
        lambda: run_single_proc_experiment(
            "exponential", mtbfs=(HOUR, DAY, WEEK), scale=scale
        ),
    )
    blocks = []
    for mtbf in result.mtbfs:
        label = {HOUR: "1 hour", DAY: "1 day", WEEK: "1 week"}[mtbf]
        blocks.append(
            format_degradation_table(
                result.stats[mtbf],
                title=f"-- MTBF = {label} (degradation from best) --",
                order=ORDER,
            )
        )
    report("table2_single_proc_exponential", "\n\n".join(blocks))
