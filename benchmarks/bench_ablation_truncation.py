"""Ablation: the 2 x platform-MTBF work-truncation rule (Section 3.3).

Planning more than ~2 MTBFs ahead buys essentially nothing: with high
probability a failure voids the tail of the plan.  The bench compares
the per-unit-work value of plans truncated at several multiples.
"""

import numpy as np

from repro.cluster import scaled_petascale
from repro.core.state import PlatformState
from repro.distributions import Weibull
from repro.experiments.ablations import truncation_study

from _util import bench_scale, report, run_once


def test_ablation_truncation_factor(benchmark):
    scale = bench_scale()
    preset = scaled_petascale(scale.ptotal_peta)
    dist = Weibull.from_mtbf(preset.processor_mtbf, 0.7)
    state = PlatformState(
        np.full(preset.ptotal, preset.start_offset), dist
    ).compress()
    mtbf = preset.platform_mtbf
    work = preset.work / preset.ptotal

    result = run_once(
        benchmark,
        lambda: truncation_study(
            work, 600.0, state, mtbf, factors=(0.5, 1.0, 2.0, 4.0)
        ),
    )
    lines = ["truncation x MTBF    E[work]/planned-work"]
    for f, v in result.items():
        lines.append(f"{f:>17.1f}    {v:.4f}")
    report("ablation_truncation_factor", "\n".join(lines))
    # the fraction of planned work expected to complete falls with the
    # horizon — most of a >2xMTBF plan is dead weight
    vals = [result[f] for f in (0.5, 1.0, 2.0, 4.0)]
    assert vals[0] > vals[1] > vals[2] > vals[3]
