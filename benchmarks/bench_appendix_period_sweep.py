"""Appendix A (Figures 8-9) and the a/b panels of Appendices B-C:
degradation vs checkpoint-period multiplicative factor.

Paper shape: for Exponential failures the curve is flat within ~2x of
the optimum (why Young/Daly are fine despite differing periods); for
Weibull at scale the bowl sharpens and its minimum sits *below* the
MTBF-derived base period.
"""

from repro.analysis import format_series
from repro.experiments.period_sweep import run_period_sweep

from _util import bench_scale, report, run_once

FACTORS = (-4, -3, -2, -1, 0, 1, 2, 3, 4)


def _render(result, title):
    rows = {
        "PeriodVariation": [result.sweep[f].avg for f in result.log2_factors]
    }
    lines = [
        format_series("log2(factor)", list(result.log2_factors), rows, title=title)
    ]
    lines.append("heuristic reference lines:")
    for name, s in sorted(result.heuristics.items(), key=lambda kv: kv[1].avg):
        lines.append(f"  {name:>14}: {s.avg:.4f}" if s.n_valid else f"  {name:>14}: --")
    return "\n".join(lines)


def test_appendix_period_sweep_exponential(benchmark):
    scale = bench_scale()
    result = run_once(
        benchmark,
        lambda: run_period_sweep(
            "peta", "exponential", log2_factors=FACTORS, scale=scale
        ),
    )
    report(
        "appendix_period_sweep_exponential",
        _render(result, "Degradation vs period factor (Exponential)"),
    )


def test_appendix_period_sweep_weibull(benchmark):
    scale = bench_scale()
    result = run_once(
        benchmark,
        lambda: run_period_sweep(
            "peta", "weibull", log2_factors=FACTORS, scale=scale
        ),
    )
    report(
        "appendix_period_sweep_weibull",
        _render(result, "Degradation vs period factor (Weibull k=0.7)"),
    )
