"""Table 3: single processor, Weibull(k=0.7) failures.

Paper values: same picture as Table 2 except Liu degrades sharply at
long MTBFs (1.07 at 1 day, 1.19 at 1 week); DP policies stay close to
PeriodLB.
"""

from repro.analysis import format_degradation_table
from repro.experiments.single_proc import run_single_proc_experiment
from repro.units import DAY, HOUR, WEEK

from _util import bench_scale, report, run_once
from bench_table2 import ORDER


def test_table3_single_proc_weibull(benchmark):
    scale = bench_scale()
    result = run_once(
        benchmark,
        lambda: run_single_proc_experiment(
            "weibull", mtbfs=(HOUR, DAY, WEEK), scale=scale, weibull_k=0.7
        ),
    )
    blocks = []
    for mtbf in result.mtbfs:
        label = {HOUR: "1 hour", DAY: "1 day", WEEK: "1 week"}[mtbf]
        blocks.append(
            format_degradation_table(
                result.stats[mtbf],
                title=f"-- MTBF = {label}, Weibull k=0.7 --",
                order=ORDER,
            )
        )
    report("table3_single_proc_weibull", "\n\n".join(blocks))
