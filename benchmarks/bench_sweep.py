"""Grid-sweep engine benchmark: shared-trace planning vs per-scenario runs.

Two arms execute the same 24-point grid (12 checkpoint costs x 2 static
policies over one Weibull platform — every point shares one trace
signature), each in its **own child process** against a private
``.repro-service/`` root so the persistent disk tier cannot leak
between arms:

1. **baseline** — ``run_sweep(..., use_sweep_plan=False)``: every grid
   point runs as an independent scenario, regenerating its trace set
   and recompiling its :class:`TraceEnsemble` — exactly what a loop of
   ``repro run`` calls would execute.
2. **sweep** — ``run_sweep(..., use_sweep_plan=True)``: the planner
   collapses the grid into one trace group; traces are generated once
   and the ensemble compiled once for all 24 points.

The gate (full mode) is the sweep arm at >= 3x the baseline's
wall-clock, with every point's comparable result payload byte-identical
across arms — planning moves work, never results.  ``--smoke`` (CI)
checks only that identity at toy sizes; the full run asserts the speed
gate and archives ``BENCH_sweep.json`` with host metadata.

Child processes time *only* the ``run_sweep`` call (not interpreter
startup or imports), so the reported ratio is trace-sharing, not
process overhead.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from _util import write_bench_json  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

HOUR = 3600.0
DAY = 24 * HOUR


def _configs(smoke: bool) -> tuple[dict, dict]:
    """(base spec, grid axes) for the benchmark grid."""
    if smoke:
        base = {"dist": "weibull", "shape": 0.7, "mtbf": 10 * DAY, "p": 8,
                "work": 4 * HOUR, "recovery": 600.0, "downtime": 60.0,
                "n_traces": 4, "seed": 42}
        grid = {"checkpoint": [300.0, 600.0, 900.0],
                "policies": [["young"], ["dalylow"]]}
    else:
        base = {"dist": "weibull", "shape": 0.7, "mtbf": 10 * DAY, "p": 256,
                "work": 8 * HOUR, "recovery": 600.0, "downtime": 60.0,
                "n_traces": 200, "seed": 42}
        grid = {"checkpoint": [float(300 + 100 * i) for i in range(12)],
                "policies": [["young"], ["dalylow"]]}
    return base, grid


def _child_main(config: dict) -> dict:
    """One sweep arm in this process; returns the measurement."""
    import time

    from repro.service.serialize import (
        comparable_result_payload,
        scenario_result_to_dict,
    )
    from repro.service.spec import expand_grid
    from repro.simulation.sweep import run_sweep

    specs = expand_grid(config["base"], config["grid"])
    t0 = time.perf_counter()
    sweep = run_sweep(
        specs,
        jobs=config["jobs"],
        use_sweep_plan=config["use_sweep_plan"],
        use_disk_cache=False,  # isolate trace-sharing from the disk tier
    )
    seconds = time.perf_counter() - t0
    # canonical JSON of the comparable payload per point: the parent's
    # identity gate is a plain string equality over these
    payloads = [
        json.dumps(
            comparable_result_payload(scenario_result_to_dict(result)),
            sort_keys=True,
        )
        for result in sweep.results
    ]
    return {
        "seconds": seconds,
        "payloads": payloads,
        "plan": sweep.plan.to_dict(),
        "counters": sweep.counters,
        "group_stats": sweep.group_stats,
        "scheduler": sweep.scheduler_summary(),
    }


def _run_child(config: dict, service_dir: pathlib.Path) -> dict:
    """Run one arm in a fresh interpreter against ``service_dir``."""
    env = dict(os.environ)
    env["REPRO_SERVICE_DIR"] = str(service_dir)
    proc = subprocess.run(
        [sys.executable, str(pathlib.Path(__file__).resolve()),
         "--child", json.dumps(config)],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"child arm failed (rc={proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def bench_sweep(smoke: bool) -> dict:
    """Baseline (independent points) vs planned sweep over one grid."""
    base, grid = _configs(smoke)
    n_points = 1
    for values in grid.values():
        n_points *= len(values)

    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
        tier_a = pathlib.Path(tmp) / "tier-a"
        tier_b = pathlib.Path(tmp) / "tier-b"
        baseline = _run_child(
            {"base": base, "grid": grid, "jobs": 1, "use_sweep_plan": False},
            tier_a,
        )
        sweep = _run_child(
            {"base": base, "grid": grid, "jobs": 1, "use_sweep_plan": True},
            tier_b,
        )

    identical = baseline["payloads"] == sweep["payloads"]
    return {
        "distribution": (
            f"Weibull(k={base['shape']}, MTBF={base['mtbf'] / DAY:.0f}d) "
            f"x {base['p']}"
        ),
        "n_points": n_points,
        "n_traces": base["n_traces"],
        "grid_axes": {key: len(values) for key, values in grid.items()},
        "plan": sweep["plan"],
        "baseline_s": baseline["seconds"],
        "sweep_s": sweep["seconds"],
        "sweep_speedup": baseline["seconds"] / max(sweep["seconds"], 1e-12),
        "sweep_counters": sweep["counters"],
        "sweep_group_stats": sweep["group_stats"],
        "identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, identity gate only (CI); no artifacts written",
    )
    parser.add_argument("--child", metavar="JSON", default=None,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child is not None:
        json.dump(_child_main(json.loads(args.child)), sys.stdout)
        return 0

    res = bench_sweep(args.smoke)
    plan = res["plan"]
    lines = [
        f"mode: {'smoke' if args.smoke else 'full'}",
        "",
        "grid-sweep engine (shared-trace planning)",
        f"  grid: {res['n_points']} points "
        f"({' x '.join(f'{k}={n}' for k, n in res['grid_axes'].items())}), "
        f"{res['distribution']}, {res['n_traces']} traces",
        f"  plan: {plan['n_groups']} trace group(s), "
        f"{plan['shared_trace_gens_saved']} generation(s) shared",
        f"  baseline (independent points)   {res['baseline_s']:9.2f} s",
        f"  sweep    (shared-trace plan)    {res['sweep_s']:9.2f} s",
        f"  speedup                         {res['sweep_speedup']:9.1f} x",
        f"  bit-identical                   {res['identical']}",
    ]
    print("\n".join(lines))

    if not res["identical"]:
        print("FAIL: sweep results are not bit-identical to the baseline")
        return 1
    if not args.smoke:
        from _util import report

        report("sweep", "\n".join(lines))
        out = REPO_ROOT / "BENCH_sweep.json"
        write_bench_json(out, {
            "benchmark": "sweep",
            "mode": "full",
            "sweep": res,
        })
        print(f"wrote {out}")
        if res["sweep_speedup"] < 3.0:
            print(
                f"FAIL: sweep speedup {res['sweep_speedup']:.1f}x below "
                "the documented 3x floor"
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
