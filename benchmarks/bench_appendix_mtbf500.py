"""Appendix B.3 variant: Weibull failures with a 500-year processor MTBF
(4x the 125-year baseline, same workload).

Paper claim (Sections 5.2.1-5.2.2): "the same conclusions are reached
when the MTBF per processor is 500 years instead of 125" — DPNextFailure
still leads at the full platform, Bouguerra still trails.
"""

import dataclasses

from repro.analysis import format_series
from repro.experiments.scaling import run_scaling_experiment

from _util import bench_scale, report, run_once


def test_appendix_weibull_mtbf500(benchmark):
    scale = bench_scale()
    scale = dataclasses.replace(scale, n_traces=max(4, scale.n_traces // 2))
    result = run_once(
        benchmark,
        lambda: run_scaling_experiment(
            "peta", "weibull", scale=scale, mtbf_factor=4.0
        ),
    )
    text = format_series(
        "p",
        result.p_values,
        result.series(),
        title="Average degradation vs p (Petascale, Weibull, 4x MTBF)",
    )
    report("appendix_weibull_mtbf500", text)
    full = result.stats[result.p_values[-1]]
    if full["DPNextFailure"].n_valid and full["Bouguerra"].n_valid:
        assert full["DPNextFailure"].avg < full["Bouguerra"].avg
