"""Extension bench (Section 8): optimal number of processors to enroll.

Expected shape: with the paper's reliability every profile still prefers
the full platform (failures cost less than halving the compute); on a
30x less reliable platform the Amdahl-heavy profile's optimum moves
strictly inside the machine.
"""

from repro.analysis import format_series
from repro.experiments.enrollment import run_optimal_enrollment
from repro.units import DAY

from _util import bench_scale, report, run_once


def test_extension_optimal_enrollment(benchmark):
    scale = bench_scale()

    def run():
        return (
            run_optimal_enrollment(scale=scale, dist_kind="weibull"),
            run_optimal_enrollment(
                scale=scale, dist_kind="weibull", mtbf_factor=1.0 / 30.0
            ),
        )

    reliable, fragile = run_once(benchmark, run)
    blocks = []
    for label, res in (("paper reliability", reliable), ("30x more failures", fragile)):
        series = {k: [v / DAY for v in vals] for k, vals in res.makespans.items()}
        blocks.append(
            format_series(
                "p", res.p_values, series,
                title=f"Mean makespan (days) vs enrollment — {label}",
                fmt="9.2f",
            )
        )
        blocks.append(
            "optimal enrollment per profile: "
            + ", ".join(f"{k}: {v}" for k, v in res.best_p.items())
        )
    report("extension_optimal_enrollment", "\n\n".join(blocks))
    assert reliable.best_p["W/p"] == reliable.p_values[-1]
