"""Ablation: waste breakdown of the Table-4 scenario.

Expected shape: DPNextFailure spends *more* time checkpointing than
Young (shorter chunks) but loses far less work to failures — the net is
a smaller makespan.
"""

from repro.experiments.waste import run_waste_breakdown
from repro.units import HOUR

from _util import bench_scale, report, run_once


def test_ablation_waste_breakdown(benchmark):
    scale = bench_scale()
    rows = run_once(benchmark, lambda: run_waste_breakdown(scale=scale))
    lines = [
        f"{'policy':>15} {'work(h)':>9} {'ckpt(h)':>8} {'lost(h)':>8} "
        f"{'outage(h)':>9} {'makespan(h)':>11}"
    ]
    for r in rows:
        lines.append(
            f"{r.policy:>15} {r.work / HOUR:>9.1f} "
            f"{r.checkpointing / HOUR:>8.1f} {r.lost / HOUR:>8.1f} "
            f"{r.outage / HOUR:>9.1f} {r.makespan / HOUR:>11.1f}"
        )
    report("ablation_waste_breakdown", "\n".join(lines))
    by_name = {r.policy: r for r in rows}
    dp, young = by_name["DPNextFailure"], by_name["Young"]
    # the adaptive policy trades checkpoint time for lost work
    assert dp.lost < young.lost
