"""Figure 1: platform MTBF vs processor count, both rejuvenation options
(Weibull k=0.7, processor MTBF 125 y, downtime 60 s).

Paper shape: the no-rejuvenation curve is a straight line of slope -1 in
log2-log2; the all-rejuvenation curve falls with slope -1/k ~ -1.43 and
sits far below at large p.
"""

from repro.analysis import format_series
from repro.experiments.rejuvenation_fig import run_rejuvenation_figure

from _util import report, run_once


def test_fig1_rejuvenation_mtbf(benchmark):
    fig = run_once(benchmark, run_rejuvenation_figure)
    text = format_series(
        "log2(p)",
        list(fig.p_exponents),
        {
            "with rejuvenation": fig.log2_mtbf_with_rejuvenation,
            "without rejuvenation": fig.log2_mtbf_without_rejuvenation,
        },
        title="log2(platform MTBF in seconds) vs log2(processors)",
        fmt="8.2f",
    )
    report("fig1_rejuvenation_mtbf", text)
