"""Figure 5: sensitivity to the Weibull shape parameter k (full
Jaguar-like platform).

Paper shape: DPNextFailure stays below ~1.03 for k >= 0.15 (1.13 at
k=0.10) while every other heuristic degrades dramatically as k falls;
Liu infeasible for k <= 0.7; Bouguerra collapses (rejuvenation
assumption); at k=1 (Exponential) everyone converges.
"""

from repro.analysis import format_series
from repro.experiments.shape_sweep import DEFAULT_SHAPES, run_shape_sweep

from _util import bench_scale, report, run_once


def test_fig5_weibull_shape_sweep(benchmark):
    scale = bench_scale()
    result = run_once(
        benchmark, lambda: run_shape_sweep(shapes=DEFAULT_SHAPES, scale=scale)
    )
    text = format_series(
        "k",
        list(result.shapes),
        result.series(),
        title="Average degradation vs Weibull shape k ('--' = infeasible)",
    )
    report("fig5_weibull_shape_sweep", text)
