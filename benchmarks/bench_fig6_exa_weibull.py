"""Figure 6: Exascale platform, Weibull(k=0.7) failures, degradation
vs p.

Paper shape: DPNextFailure's advantage is even larger than at Petascale
(its degradation stays below ~1.03 against PeriodLB while the periodic
heuristics drift far above).
"""

from repro.analysis import format_series
from repro.experiments.scaling import run_scaling_experiment

from _util import bench_scale, report, run_once


def test_fig6_exascale_weibull(benchmark):
    scale = bench_scale()
    result = run_once(
        benchmark,
        lambda: run_scaling_experiment("exa", "weibull", scale=scale),
    )
    text = format_series(
        "p",
        result.p_values,
        result.series(),
        title="Average degradation vs processors (Exascale, Weibull k=0.7)",
    )
    report("fig6_exascale_weibull", text)
