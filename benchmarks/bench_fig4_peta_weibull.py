"""Figure 4: Petascale platform, Weibull(k=0.7) failures, degradation
vs p.

Paper shape: the gap between the MTBF-based periodic heuristics and
PeriodLB grows with p; at the full platform Young/Daly are ~4.3% worse
than DPNextFailure, which stays within ~0.6% of PeriodLB; Liu is absent
(infeasible) at scale; Bouguerra far above everyone.
"""

from repro.analysis import format_series
from repro.experiments.scaling import run_scaling_experiment

from _util import bench_scale, report, run_once


def test_fig4_petascale_weibull(benchmark):
    scale = bench_scale()
    result = run_once(
        benchmark,
        lambda: run_scaling_experiment("peta", "weibull", scale=scale),
    )
    text = format_series(
        "p",
        result.p_values,
        result.series(),
        title="Average degradation vs processors (Petascale, Weibull k=0.7)",
    )
    report("fig4_petascale_weibull", text)
