"""Section 3.3 precision study: relative error of the (nexact, napprox)
platform-state compression for chunks of 2^-i x platform MTBF.

Paper: worst relative error below 0.2% for a chunk of one platform MTBF
(45,208 processors); error shrinks with the chunk size.
"""

import numpy as np

from repro.experiments.ablations import state_approx_precision

from _util import bench_scale, report, run_once


def test_ablation_state_compression_precision(benchmark):
    scale = bench_scale()
    result = run_once(
        benchmark,
        lambda: state_approx_precision(p=min(scale.ptotal_peta * 8, 8192)),
    )
    lines = ["chunk / platform-MTBF    relative error of Psuc"]
    for f, e in zip(result.chunk_fractions, result.relative_errors):
        lines.append(f"{f:>20.4f}    {e:.3e}")
    report("ablation_state_compression", "\n".join(lines))
    # the paper's 0.2% bound at the full-MTBF chunk
    assert result.relative_errors[0] < 0.002
    # error shrinks with chunk size (allow noise at the tiny end)
    assert result.relative_errors[-1] <= result.relative_errors[0]
