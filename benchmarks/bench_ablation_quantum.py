"""Ablation: DPNextFailure solution quality vs planning grid size.

The schedules from coarser grids are re-scored with the exact
Proposition-3 objective: the value should saturate quickly, justifying
the default grid.
"""

import numpy as np

from repro.core.state import PlatformState
from repro.distributions import Weibull
from repro.experiments.ablations import quantum_sensitivity
from repro.cluster import scaled_petascale

from _util import bench_scale, report, run_once


def test_ablation_dp_grid_size(benchmark):
    scale = bench_scale()
    preset = scaled_petascale(scale.ptotal_peta)
    dist = Weibull.from_mtbf(preset.processor_mtbf, 0.7)
    state = PlatformState(
        np.full(preset.ptotal, preset.start_offset), dist
    ).compress()
    work = 2 * preset.platform_mtbf

    result = run_once(
        benchmark,
        lambda: quantum_sensitivity(
            work, 600.0, state, grids=(12, 24, 48, 96, 192)
        ),
    )
    lines = ["grid    E[work before failure] (s)"]
    for n, v in result.items():
        lines.append(f"{n:>4}    {v:.1f}")
    report("ablation_dp_grid_size", "\n".join(lines))
    values = list(result.values())
    # quality saturates: the finest grid gains little over the default
    assert values[-1] <= max(values) * 1.0 + 1e-9
    assert result[96] > 0.98 * result[192]
