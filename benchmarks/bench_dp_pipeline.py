"""A/B benchmark of the fast adaptive-policy (DPNextFailure) pipeline.

Three arms run the *same* Weibull scenario with the same seed and
compare per-trace makespans bit-for-bit:

1. **baseline** — scalar survival kernels, replan memo off, serial
   (``DPNextFailurePolicy(vectorized=False, use_memo=False)``): the
   pre-pipeline reference path.  The DP *table* cache stays on in every
   arm (it predates this pipeline), so the measured speedup isolates
   the vectorized kernels + replan memo + shared-memory layers.
2. **fast** — vectorized kernels + cross-trace replan memo, serial.
3. **parallel** — the fast arm fanned over worker processes with the
   scenario's traces published once through shared memory.

The caches are cleared between arms so each one measures its own cold
cost, and the persistent disk solve tier is disabled for the whole
benchmark — a disk-warm arm 2 would no longer measure the in-memory
pipeline this A/B isolates (``benchmarks/bench_solvecache.py`` measures
the disk tier itself).  The full run asserts the >= 3x
fast-vs-baseline speedup
documented in ``docs/performance.md`` and archives
``BENCH_dp.json`` at the repo root; ``--smoke`` (CI) only checks the
three-way bit-identity at toy sizes, which tell nothing about
throughput.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.cluster.models import ConstantOverhead, Platform  # noqa: E402
from repro.core.cache import clear_cache, clear_replan_memo  # noqa: E402
from repro.distributions.weibull import Weibull  # noqa: E402
from repro.policies.dp import DPNextFailurePolicy  # noqa: E402
from repro.simulation.runner import run_scenarios  # noqa: E402

from _util import report, write_bench_json  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

HOUR = 3600.0
DAY = 24 * HOUR


def _arm(policy: DPNextFailurePolicy, scenario: dict, jobs: int,
         use_shm: bool) -> dict:
    """Run one arm cold (both caches cleared) and time it."""
    clear_cache()
    clear_replan_memo()
    t0 = time.perf_counter()
    result = run_scenarios(
        [policy],
        scenario["platform"],
        scenario["work"],
        n_traces=scenario["n_traces"],
        horizon=scenario["horizon"],
        seed=scenario["seed"],
        include_lower_bound=False,
        include_period_lb=False,
        jobs=jobs,
        use_memo=policy.use_memo,
        use_shm=use_shm,
        # each arm must pay its own in-memory cold cost; a persistent
        # tier would hand arms 2 and 3 the solves arm 1 just paid for
        use_disk_cache=False,
    )
    elapsed = time.perf_counter() - t0
    return {
        "seconds": elapsed,
        "makespans": result.makespans["DPNextFailure"],
        "memo_hits": result.memo_hits,
        "memo_misses": result.memo_misses,
    }


def bench_pipeline(smoke: bool) -> dict:
    """Three-arm A/B over one adaptive-policy scenario."""
    if smoke:
        p, n_traces, n_grid, work = 8, 6, 24, 4 * HOUR
    else:
        p, n_traces, n_grid, work = 64, 100, 64, 8 * HOUR
    dist = Weibull.from_mtbf(10 * DAY, 0.7)
    scenario = {
        "platform": Platform(
            p=p, dist=dist, downtime=60.0, overhead=ConstantOverhead(600.0)
        ),
        "work": work,
        "n_traces": n_traces,
        "horizon": 400 * DAY,  # reprolint: disable=R2  (sim horizon)
        "seed": 17,
    }
    # At least 2 workers even on a 1-CPU host so the shared-memory
    # publication path is exercised (its gate is identity, not speed).
    jobs = max(2, min(4, os.cpu_count() or 1))

    baseline = _arm(
        DPNextFailurePolicy(n_grid=n_grid, vectorized=False, use_memo=False),
        scenario, jobs=1, use_shm=False,
    )
    fast = _arm(
        DPNextFailurePolicy(n_grid=n_grid),
        scenario, jobs=1, use_shm=False,
    )
    par = _arm(
        DPNextFailurePolicy(n_grid=n_grid),
        scenario, jobs=jobs, use_shm=True,
    )

    identical = bool(
        np.array_equal(baseline["makespans"], fast["makespans"])
        and np.array_equal(baseline["makespans"], par["makespans"])
    )
    return {
        "distribution": f"Weibull(k=0.7, MTBF=10d) x {p}",
        "n_units": p,
        "n_traces": n_traces,
        "n_grid": n_grid,
        "work_h": work / HOUR,
        "checkpoint_s": 600.0,
        "jobs": jobs,
        "baseline_s": baseline["seconds"],
        "fast_s": fast["seconds"],
        "parallel_s": par["seconds"],
        "speedup": baseline["seconds"] / max(fast["seconds"], 1e-12),
        "speedup_parallel": baseline["seconds"] / max(par["seconds"], 1e-12),
        "memo_hits": fast["memo_hits"],
        "memo_misses": fast["memo_misses"],
        "identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, identity gate only (CI); no artifacts written",
    )
    args = parser.parse_args(argv)

    res = bench_pipeline(args.smoke)
    memo_lookups = res["memo_hits"] + res["memo_misses"]
    hit_rate = res["memo_hits"] / memo_lookups if memo_lookups else 0.0
    lines = [
        f"mode: {'smoke' if args.smoke else 'full'}",
        "",
        "adaptive-policy pipeline (DPNextFailure)",
        f"  scenario: {res['distribution']}, W={res['work_h']:.0f}h, "
        f"C={res['checkpoint_s']:.0f}s, n_grid={res['n_grid']}, "
        f"{res['n_traces']} traces",
        f"  baseline (scalar kernels, no memo) {res['baseline_s']:9.1f} s",
        f"  fast (vectorized + memo, serial)   {res['fast_s']:9.1f} s",
        f"  parallel ({res['jobs']} workers, shm)       "
        f"{res['parallel_s']:9.1f} s",
        f"  speedup (fast vs baseline)         {res['speedup']:9.1f} x",
        f"  speedup (parallel vs baseline)     "
        f"{res['speedup_parallel']:9.1f} x",
        f"  replan memo                        {res['memo_hits']} hits / "
        f"{res['memo_misses']} misses ({hit_rate:.0%} hit rate)",
        f"  bit-identical                      {res['identical']}",
    ]
    if args.smoke:
        # Smoke runs are an identity gate (CI); only a full run may
        # replace the archived full-scale artifacts.
        print("\n".join(lines))
    else:
        report("dp_pipeline", "\n".join(lines))
        out = REPO_ROOT / "BENCH_dp.json"
        write_bench_json(out, {
            "benchmark": "dp_pipeline",
            "mode": "full",
            "pipeline": res,
        })
        print(f"wrote {out}")

    if not res["identical"]:
        print("FAIL: pipeline arms are not bit-identical")
        return 1
    if not args.smoke and res["speedup"] < 3.0:
        print(
            f"FAIL: pipeline speedup {res['speedup']:.1f}x below the "
            "documented 3x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
