"""Extension bench (Section 8 future work): makespan / energy trade-off
for periodic policies around the OptExp period.

Expected shape: energy is minimized at a period >= the makespan-optimal
one whenever checkpoint I/O power is significant — stretching the period
trades a slightly longer run for fewer expensive checkpoints.
"""

from repro.cluster import ConstantOverhead, Platform, scaled_petascale
from repro.distributions import Weibull
from repro.experiments.energy import run_energy_tradeoff
from repro.units import DAY

from _util import bench_scale, report, run_once


def test_extension_energy_tradeoff(benchmark):
    scale = bench_scale()
    preset = scaled_petascale(scale.ptotal_peta)
    dist = Weibull.from_mtbf(preset.processor_mtbf, 0.7)
    platform = Platform(
        p=preset.ptotal,
        dist=dist,
        downtime=preset.downtime,
        overhead=ConstantOverhead(preset.overhead_seconds),
    )
    points = run_once(
        benchmark,
        lambda: run_energy_tradeoff(
            platform,
            work_time=preset.work / preset.ptotal,
            horizon=preset.horizon,
            t0=preset.start_offset,
            n_traces=max(4, scale.n_traces // 4),
        ),
    )
    lines = [f"{'period factor':>13} {'makespan (d)':>13} {'energy (MJ)':>12}"]
    for pt in points:
        lines.append(
            f"{pt.period_factor:>13.2f} {pt.mean_makespan / DAY:>13.2f} "
            f"{pt.mean_energy_joules / 1e6:>12.1f}"
        )
    report("extension_energy_tradeoff", "\n".join(lines))
    # the frontier exists: neither makespan nor energy is monotone-free
    spans = [pt.mean_makespan for pt in points]
    assert min(spans) < spans[-1]  # over-stretching hurts makespan
