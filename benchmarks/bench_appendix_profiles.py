"""Appendix D (Figures 98-99): absolute average makespan (days) vs p per
application profile.

Paper shape: the embarrassingly-parallel profile keeps improving with p;
the Amdahl gamma=1e-4 profile flattens early; the numerical-kernel
profiles sit between, and under failures enrolling the whole machine is
no longer always best.
"""

from repro.analysis import format_series
from repro.experiments.profiles import run_profile_experiment

from _util import bench_scale, report, run_once


def test_appendix_profiles_optexp_exponential(benchmark):
    scale = bench_scale()
    result = run_once(
        benchmark,
        lambda: run_profile_experiment("exponential", policy="OptExp", scale=scale),
    )
    text = format_series(
        "p",
        result.p_values,
        result.makespan_days,
        title="Average makespan (days) vs p, OptExp, Exponential failures",
        fmt="9.2f",
    )
    report("appendix_profiles_optexp", text)


def test_appendix_profiles_dpnf_weibull(benchmark):
    scale = bench_scale()
    result = run_once(
        benchmark,
        lambda: run_profile_experiment(
            "weibull", policy="DPNextFailure", scale=scale
        ),
    )
    text = format_series(
        "p",
        result.p_values,
        result.makespan_days,
        title="Average makespan (days) vs p, DPNextFailure, Weibull k=0.7",
        fmt="9.2f",
    )
    report("appendix_profiles_dpnf", text)
