"""Figure 7: log-based failures (LANL-like cluster 19), degradation vs p.

Paper shape: DPNextFailure *below* PeriodLB (periodic policies are
inherently suboptimal on real logs); Young noticeably better than
DalyLow/DalyHigh/OptExp; LowerBound falls from ~0.80 to ~0.56 with p
(an intrinsically hard regime: platform MTBF of the order of C+R).
"""

import dataclasses

from repro.analysis import format_series
from repro.experiments.logbased import run_logbased_experiment

from _util import bench_scale, report, run_once


def test_fig7_logbased_cluster19(benchmark):
    scale = bench_scale()
    # the log-based regime sees a failure every few minutes: trim the
    # trace count so the bench stays in budget
    scale = dataclasses.replace(
        scale,
        n_traces=max(4, scale.n_traces // 4),
        n_p_points=min(scale.n_p_points, 3),
    )
    result = run_once(
        benchmark, lambda: run_logbased_experiment(cluster=19, scale=scale)
    )
    text = format_series(
        "p",
        result.p_values,
        result.series(),
        title="Average degradation vs processors (LANL-like cluster 19)",
    )
    report("fig7_logbased_cluster19", text)
