"""Persistent solve-cache tier benchmark: cold / disk-warm / shared-memo.

Three arms run the BENCH_dp adaptive-policy scenario (Weibull, DPNext-
Failure) against a private ``.repro-service/`` root, each in its **own
child process** so "warm" means what it means in practice — a fresh
process (empty L1 caches) finding the previous process's solves on
disk:

1. **cold** — first process, empty tier: every solve is paid for and
   persisted (``disk_misses`` = distinct solves, ``disk_hits`` = 0).
2. **disk-warm** — second process, same tier: the run should be mostly
   ``disk_hits`` and is gated at >= 5x faster than cold (full mode).
3. **shared-memo** — third process, fresh tier, ``--jobs 2``, the same
   scenario run **twice**: pass 1's workers ship their replan-memo
   entries back to the parent at unit exit, so pass 2's workers fork
   from a fully warmed memo.  The gate is pass 2's memo hit rate —
   without the delta merge the parent memo stays empty and pass 2
   repays every solve.

Every arm's per-trace makespans must be bit-identical to the cold
arm's — caching moves solves between processes, never changes them.
``--smoke`` (CI) checks only that identity at toy sizes; the full run
asserts the speed gates and archives ``BENCH_solvecache.json``.

Child processes time *only* the ``run_scenarios`` call (not interpreter
startup or imports), so the reported ratio is solve reuse, not process
overhead.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from _util import write_bench_json  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

HOUR = 3600.0
DAY = 24 * HOUR


def _child_main(config: dict) -> dict:
    """One scenario run in this process; returns the measurement."""
    import time

    from repro.cluster.models import ConstantOverhead, Platform
    from repro.distributions.weibull import Weibull
    from repro.policies.dp import DPNextFailurePolicy
    from repro.simulation.runner import run_scenarios

    dist = Weibull.from_mtbf(10 * DAY, 0.7)
    platform = Platform(
        p=config["p"],
        dist=dist,
        downtime=60.0,
        overhead=ConstantOverhead(600.0),
    )
    policy = DPNextFailurePolicy(n_grid=config["n_grid"])
    pass_seconds = []
    for _ in range(config.get("repeat", 1)):
        t0 = time.perf_counter()
        result = run_scenarios(
            [policy],
            platform,
            config["work"],
            n_traces=config["n_traces"],
            horizon=400 * DAY,  # reprolint: disable=R2  (sim horizon)
            seed=config["seed"],
            include_lower_bound=False,
            include_period_lb=False,
            jobs=config["jobs"],
            use_disk_cache=config.get("use_disk_cache", True),
        )
        pass_seconds.append(time.perf_counter() - t0)
    # counters and makespans below are the LAST pass's (each
    # run_scenarios reports its own deltas) — for repeat=2 that is the
    # pass whose workers forked from the delta-warmed parent memo
    return {
        "seconds": pass_seconds[0],
        "pass_seconds": pass_seconds,
        # JSON floats round-trip exactly in Python 3 (shortest repr),
        # so the parent's bit-identity gate is a true equality check
        "makespans": [float(m) for m in result.makespans["DPNextFailure"]],
        "memo_hits": result.memo_hits,
        "memo_misses": result.memo_misses,
        "memo_unique_misses": result.memo_unique_misses,
        "disk_hits": result.disk_hits,
        "disk_misses": result.disk_misses,
        "disk_evictions": result.disk_evictions,
    }


def _run_child(config: dict, service_dir: pathlib.Path) -> dict:
    """Run one arm in a fresh interpreter against ``service_dir``."""
    env = dict(os.environ)
    env["REPRO_SERVICE_DIR"] = str(service_dir)
    proc = subprocess.run(
        [sys.executable, str(pathlib.Path(__file__).resolve()),
         "--child", json.dumps(config)],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"child arm failed (rc={proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def bench_solvecache(smoke: bool) -> dict:
    """Cold / disk-warm / shared-memo over one adaptive scenario."""
    if smoke:
        config = {"p": 8, "n_traces": 6, "n_grid": 24,
                  "work": 4 * HOUR, "seed": 17, "jobs": 1}
    else:
        config = {"p": 64, "n_traces": 100, "n_grid": 64,
                  "work": 8 * HOUR, "seed": 17, "jobs": 1}
    jobs = max(2, min(4, os.cpu_count() or 1))

    with tempfile.TemporaryDirectory(prefix="bench-solvecache-") as tmp:
        tier_a = pathlib.Path(tmp) / "tier-a"  # cold + disk-warm
        tier_b = pathlib.Path(tmp) / "tier-b"  # shared-memo (unused)
        cold = _run_child(config, tier_a)
        warm = _run_child(config, tier_a)
        # disk tier off so pass 2's hits are purely the memo deltas the
        # pass-1 workers shipped back to the parent
        shared = _run_child(
            {**config, "jobs": jobs, "repeat": 2, "use_disk_cache": False},
            tier_b,
        )

    identical = bool(
        np.array_equal(cold["makespans"], warm["makespans"])
        and np.array_equal(cold["makespans"], shared["makespans"])
    )
    memo_lookups = shared["memo_hits"] + shared["memo_misses"]
    return {
        "distribution": f"Weibull(k=0.7, MTBF=10d) x {config['p']}",
        "n_units": config["p"],
        "n_traces": config["n_traces"],
        "n_grid": config["n_grid"],
        "work_h": config["work"] / HOUR,
        "jobs": jobs,
        "cold_s": cold["seconds"],
        "warm_s": warm["seconds"],
        "warm_speedup": cold["seconds"] / max(warm["seconds"], 1e-12),
        "cold_disk": {k: cold[k] for k in
                      ("disk_hits", "disk_misses", "disk_evictions")},
        "warm_disk": {k: warm[k] for k in
                      ("disk_hits", "disk_misses", "disk_evictions")},
        "shared_pass1_s": shared["pass_seconds"][0],
        "shared_pass2_s": shared["pass_seconds"][1],
        "shared_memo_hits": shared["memo_hits"],
        "shared_memo_misses": shared["memo_misses"],
        "shared_memo_unique_misses": shared["memo_unique_misses"],
        "shared_memo_hit_rate": (
            shared["memo_hits"] / memo_lookups if memo_lookups else 0.0
        ),
        "identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, identity gate only (CI); no artifacts written",
    )
    parser.add_argument("--child", metavar="JSON", default=None,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child is not None:
        json.dump(_child_main(json.loads(args.child)), sys.stdout)
        return 0

    res = bench_solvecache(args.smoke)
    lines = [
        f"mode: {'smoke' if args.smoke else 'full'}",
        "",
        "persistent solve-cache tier (DPNextFailure)",
        f"  scenario: {res['distribution']}, W={res['work_h']:.0f}h, "
        f"n_grid={res['n_grid']}, {res['n_traces']} traces",
        f"  cold  (1st process, empty tier)   {res['cold_s']:9.1f} s  "
        f"disk {res['cold_disk']['disk_hits']}h/"
        f"{res['cold_disk']['disk_misses']}m",
        f"  warm  (2nd process, same tier)    {res['warm_s']:9.1f} s  "
        f"disk {res['warm_disk']['disk_hits']}h/"
        f"{res['warm_disk']['disk_misses']}m",
        f"  speedup (warm vs cold)            {res['warm_speedup']:9.1f} x",
        f"  shared ({res['jobs']} workers, no disk)    "
        f"pass 1 {res['shared_pass1_s']:.1f} s, "
        f"pass 2 {res['shared_pass2_s']:.1f} s",
        f"  shared memo (pass 2)              {res['shared_memo_hits']} hits"
        f" / {res['shared_memo_misses']} misses"
        f" ({res['shared_memo_hit_rate']:.0%} hit rate)",
        f"  bit-identical                     {res['identical']}",
    ]
    print("\n".join(lines))

    if not res["identical"]:
        print("FAIL: solve-cache arms are not bit-identical")
        return 1
    if not args.smoke:
        from _util import report

        report("solvecache", "\n".join(lines))
        out = REPO_ROOT / "BENCH_solvecache.json"
        write_bench_json(out, {
            "benchmark": "solvecache",
            "mode": "full",
            "solvecache": res,
        })
        print(f"wrote {out}")
        if res["warm_speedup"] < 5.0:
            print(
                f"FAIL: disk-warm speedup {res['warm_speedup']:.1f}x below "
                "the documented 5x floor"
            )
            return 1
        if res["shared_memo_hit_rate"] < 0.5:
            print(
                "FAIL: shared-memo pass-2 hit rate "
                f"{res['shared_memo_hit_rate']:.0%} below the documented "
                "50% floor (the delta merge is not warming the parent)"
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
