"""Table 4: full Jaguar-scale platform, Weibull(k=0.7), embarrassingly
parallel job, constant C=R=600 s.

Paper values (45,208 processors, 600 traces):
  LowerBound 0.834 | PeriodLB 1.022 | Young 1.082 | DalyLow 1.082 |
  DalyHigh 1.076 | Bouguerra 1.250 | OptExp 1.076 | DPNextFailure 1.029.
Plus Section 5.2.2: DPNextFailure sees 38 failures per run on average
(max 66) — the spare-processor guidance.
"""

from repro.analysis import format_degradation_table
from repro.experiments.scaling import run_table4

from _util import bench_scale, report, run_once

ORDER = [
    "LowerBound",
    "PeriodLB",
    "Young",
    "DalyLow",
    "DalyHigh",
    "Liu",
    "Bouguerra",
    "OptExp",
    "DPNextFailure",
]


def test_table4_petascale_weibull(benchmark):
    scale = bench_scale()
    result = run_once(benchmark, lambda: run_table4(scale=scale))
    text = format_degradation_table(
        result.stats,
        title=(
            f"-- Full scaled Petascale platform ({scale.ptotal_peta} procs), "
            "Weibull k=0.7 --"
        ),
        order=ORDER,
    )
    text += (
        f"\n\nDPNextFailure failures per run: avg {result.dp_failures_avg:.1f}, "
        f"max {result.dp_failures_max}"
    )
    report("table4_petascale_weibull", text)
