"""Figure 2: Petascale platform, Exponential failures, degradation vs p.

Paper shape: Young/DalyLow/DalyHigh/OptExp/PeriodLB indistinguishable
(degradation < 1.023) at every p; Bouguerra slightly above; Liu ~1.09;
DPNextFailure within ~2% of OptExp; DPMakespan slightly behind
DPNextFailure (its all-rejuvenation assumption is harmless here).
"""

from repro.analysis import format_series
from repro.experiments.scaling import run_scaling_experiment

from _util import bench_scale, report, run_once


def test_fig2_petascale_exponential(benchmark):
    scale = bench_scale()
    result = run_once(
        benchmark,
        lambda: run_scaling_experiment("peta", "exponential", scale=scale),
    )
    text = format_series(
        "p",
        result.p_values,
        result.series(),
        title="Average degradation vs processors (Petascale, Exponential)",
    )
    report("fig2_petascale_exponential", text)
