"""Ablation: Theorem 1's closed form vs Monte-Carlo simulation of the
OptExp policy (engine validation)."""

from repro.experiments.ablations import theory_vs_simulation
from repro.units import DAY, HOUR

from _util import bench_scale, report, run_once


def test_ablation_theorem1_vs_simulation(benchmark):
    scale = bench_scale()
    n = max(40, scale.n_traces * 3)

    def run():
        rows = []
        for mtbf in (6 * HOUR, DAY):
            theory, sim, se = theory_vs_simulation(
                mtbf=mtbf, work=10 * DAY, n_traces=n
            )
            rows.append((mtbf, theory, sim, se))
        return rows

    rows = run_once(benchmark, run)
    lines = [f"{'MTBF (h)':>9} {'E[T*] theory':>14} {'simulated':>12} {'std err':>9}"]
    for mtbf, theory, sim, se in rows:
        lines.append(f"{mtbf / 3600:9.1f} {theory:14.0f} {sim:12.0f} {se:9.0f}")
        assert abs(sim - theory) < 4 * se + 0.005 * theory
    report("ablation_theorem1_vs_simulation", "\n".join(lines))
