"""Extension bench (Section 8): progress-dependent checkpoint cost.

Compares the constant-cost Theorem-1 plan with the extended DP under
shrinking/growing state profiles, reporting expected makespans and the
drift of checkpoint placement toward the cheap region.
"""

import numpy as np

from repro.core.theory import expected_makespan_optimal
from repro.core.variable_cost import dp_makespan_variable_cost
from repro.units import DAY, HOUR

from _util import report, run_once


def test_extension_variable_checkpoint_cost(benchmark):
    lam, work, d = 1 / (6 * HOUR), 24 * HOUR, 60.0

    def run():
        const = dp_makespan_variable_cost(
            work, lambda _: 600.0, lam, d, n_grid=288
        )
        shrink = dp_makespan_variable_cost(
            work, lambda rem: 60.0 + 1740.0 * rem / work, lam, d, n_grid=288
        )
        grow = dp_makespan_variable_cost(
            work, lambda rem: 60.0 + 1740.0 * (1 - rem / work), lam, d, n_grid=288
        )
        return const, shrink, grow

    const, shrink, grow = run_once(benchmark, run)
    theory = expected_makespan_optimal(lam, work, 600.0, d, 600.0)
    lines = [
        f"constant C=600: E[T] {const.expected_makespan / HOUR:.2f} h "
        f"({len(const.chunks)} chunks; Theorem 1: "
        f"{theory.expected_makespan / HOUR:.2f} h)",
        f"shrinking cost: E[T] {shrink.expected_makespan / HOUR:.2f} h, "
        f"first/last chunk {shrink.chunks[0] / HOUR:.2f}/"
        f"{shrink.chunks[-1] / HOUR:.2f} h",
        f"growing cost:   E[T] {grow.expected_makespan / HOUR:.2f} h, "
        f"first/last chunk {grow.chunks[0] / HOUR:.2f}/"
        f"{grow.chunks[-1] / HOUR:.2f} h",
    ]
    report("extension_variable_cost", "\n".join(lines))
    # checkpoints drift toward the cheap region
    assert shrink.chunks[-1] < shrink.chunks[0]
    assert grow.chunks[-1] > grow.chunks[0]
