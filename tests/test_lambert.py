"""Lambert W implementation vs the defining identity and scipy."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.special import lambertw as scipy_lambertw

from repro.core.lambert import lambert_w


class TestAgainstScipy:
    @pytest.mark.parametrize(
        "z",
        [-1 / math.e + 1e-12, -0.3, -1e-6, 0.0, 1e-6, 0.5, 1.0, 10.0, 1e6],
    )
    def test_matches_scipy(self, z):
        assert lambert_w(z) == pytest.approx(
            float(scipy_lambertw(z).real), rel=1e-9, abs=1e-9
        )

    def test_array_input(self):
        zs = np.array([-0.2, 0.1, 2.0])
        ours = lambert_w(zs)
        ref = scipy_lambertw(zs).real
        assert np.allclose(ours, ref, rtol=1e-10)


class TestDefiningIdentity:
    @settings(max_examples=200, deadline=None)
    @given(
        z=st.floats(
            min_value=-1 / math.e + 1e-9, max_value=1e8, allow_nan=False
        )
    )
    def test_w_exp_w_equals_z(self, z):
        w = lambert_w(z)
        assert w * math.exp(w) == pytest.approx(z, rel=1e-8, abs=1e-10)

    def test_branch_point(self):
        assert lambert_w(-1 / math.e) == pytest.approx(-1.0, abs=1e-5)

    def test_below_branch_point_raises(self):
        with pytest.raises(ValueError):
            lambert_w(-1.0)


def test_theorem1_argument_range():
    """Theorem 1 uses z = -e^{-lam C - 1} in (-1/e, 0): the principal
    branch value lies in (-1, 0)."""
    for lam_c in (1e-6, 1e-3, 0.1, 5.0):
        z = -math.exp(-lam_c - 1.0)
        w = lambert_w(z)
        assert -1.0 < w < 0.0
