"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

# Lint fixtures contain deliberate rule violations (including fake
# ``test_*`` functions for the R5 rule); never collect them as tests.
collect_ignore = ["fixtures"]

from repro.distributions import Empirical, Exponential, Gamma, LogNormal, Weibull
from repro.units import DAY, HOUR


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def exponential_day():
    return Exponential.from_mtbf(DAY)


@pytest.fixture
def weibull_day():
    return Weibull.from_mtbf(DAY, 0.7)


def all_distributions():
    """One representative of every distribution family, MTBF ~ 1 day."""
    rng = np.random.default_rng(7)
    return [
        Exponential.from_mtbf(DAY),
        Weibull.from_mtbf(DAY, 0.7),
        Weibull.from_mtbf(DAY, 1.5),
        Gamma.from_mtbf(DAY, 0.6),
        Gamma.from_mtbf(DAY, 2.0),
        LogNormal.from_mtbf(DAY, 1.0),
        Empirical(rng.weibull(0.7, size=4000) * DAY),
    ]


def dist_id(dist):
    return repr(dist)[:40]
