"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

# Lint fixtures contain deliberate rule violations (including fake
# ``test_*`` functions for the R5 rule); never collect them as tests.
collect_ignore = ["fixtures"]

from repro.distributions import Empirical, Exponential, Gamma, LogNormal, Weibull
from repro.units import DAY, HOUR


@pytest.fixture(scope="session", autouse=True)
def _service_dir_backstop(tmp_path_factory):
    """Session-wide ``REPRO_SERVICE_DIR`` so *nothing* — including
    module-scoped fixtures, which run before any function-scoped
    fixture can patch the environment — writes a ``.repro-service/``
    under the repository root."""
    import os

    path = tmp_path_factory.mktemp("repro-service-session")
    prior = os.environ.get("REPRO_SERVICE_DIR")
    os.environ["REPRO_SERVICE_DIR"] = str(path)
    yield
    if prior is None:
        os.environ.pop("REPRO_SERVICE_DIR", None)
    else:
        os.environ["REPRO_SERVICE_DIR"] = prior


@pytest.fixture(autouse=True)
def _isolated_service_dir(tmp_path, monkeypatch):
    """Point every test at a private ``.repro-service/`` root.

    The persistent solve tier (:mod:`repro.core.diskcache`) and the
    result store both resolve their location from ``REPRO_SERVICE_DIR``
    (or the CWD); a per-test directory keeps disk-warm solves from
    leaking between tests that count solves or cache misses."""
    monkeypatch.setenv("REPRO_SERVICE_DIR", str(tmp_path / ".repro-service"))
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def exponential_day():
    return Exponential.from_mtbf(DAY)


@pytest.fixture
def weibull_day():
    return Weibull.from_mtbf(DAY, 0.7)


def all_distributions():
    """One representative of every distribution family, MTBF ~ 1 day."""
    rng = np.random.default_rng(7)
    return [
        Exponential.from_mtbf(DAY),
        Weibull.from_mtbf(DAY, 0.7),
        Weibull.from_mtbf(DAY, 1.5),
        Gamma.from_mtbf(DAY, 0.6),
        Gamma.from_mtbf(DAY, 2.0),
        LogNormal.from_mtbf(DAY, 1.0),
        Empirical(rng.weibull(0.7, size=4000) * DAY),
    ]


def dist_id(dist):
    return repr(dist)[:40]
