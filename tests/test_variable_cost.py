"""Progress-dependent checkpoint cost extension (Section 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.theory import expected_makespan_optimal
from repro.core.variable_cost import dp_makespan_variable_cost
from repro.units import DAY, HOUR


class TestConstantCostReduction:
    def test_matches_theorem1(self):
        """With a constant cost function the DP must reproduce the
        Theorem 1 optimum (up to quantization)."""
        lam, work, c, d, r = 1 / (6 * HOUR), 12 * HOUR, 600.0, 60.0, 600.0
        plan = dp_makespan_variable_cost(
            work, lambda _: c, lam, d, lambda _: r, n_grid=288
        )
        theory = expected_makespan_optimal(lam, work, c, d, r)
        assert plan.expected_makespan == pytest.approx(
            theory.expected_makespan, rel=0.02
        )
        # equal-size chunks
        assert np.ptp(plan.chunks) <= plan.u + 1e-9

    def test_chunks_cover_work(self):
        plan = dp_makespan_variable_cost(
            10 * HOUR, lambda _: 300.0, 1 / DAY, 60.0, n_grid=100
        )
        assert plan.chunks.sum() == pytest.approx(10 * HOUR)


class TestVariableCost:
    def test_cheaper_checkpoints_taken_more_often(self):
        """If checkpoints get cheaper as the job progresses (state
        shrinks), the later chunks should be shorter than under the
        mirrored cost profile."""
        lam, work, d = 1 / (4 * HOUR), 12 * HOUR, 60.0

        def shrinking(remaining):  # cheap near the end
            return 60.0 + 1200.0 * remaining / work

        def growing(remaining):  # cheap near the start
            return 60.0 + 1200.0 * (1.0 - remaining / work)

        plan_shrink = dp_makespan_variable_cost(work, shrinking, lam, d, n_grid=192)
        plan_grow = dp_makespan_variable_cost(work, growing, lam, d, n_grid=192)
        # compare mean chunk length in the last third of the schedule
        def tail_mean(plan):
            k = max(1, len(plan.chunks) // 3)
            return float(np.mean(plan.chunks[-k:]))

        assert tail_mean(plan_shrink) < tail_mean(plan_grow)

    def test_expensive_cost_fewer_checkpoints(self):
        lam, work, d = 1 / DAY, 12 * HOUR, 60.0
        cheap = dp_makespan_variable_cost(work, lambda _: 60.0, lam, d, n_grid=144)
        dear = dp_makespan_variable_cost(work, lambda _: 1800.0, lam, d, n_grid=144)
        assert len(dear.chunks) < len(cheap.chunks)

    def test_checkpoint_progress_monotone(self):
        plan = dp_makespan_variable_cost(
            8 * HOUR, lambda w: 100.0 + w / 100.0, 1 / DAY, 60.0, n_grid=96
        )
        prog = plan.checkpoint_progress()
        assert np.all(np.diff(prog) > 0)
        assert prog[-1] == pytest.approx(1.0)

    def test_rejects_bad_quantum(self):
        with pytest.raises(ValueError):
            dp_makespan_variable_cost(HOUR, lambda _: 1.0, 1.0, 0.0, u=0.0)
