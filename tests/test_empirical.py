"""Empirical (log-based) distribution: the paper's ratio construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Empirical


@pytest.fixture
def durations():
    return np.array([10.0, 20.0, 20.0, 50.0, 100.0, 400.0])


class TestRatioConstruction:
    def test_sf_counts(self, durations):
        d = Empirical(durations)
        assert d.sf(0.0) == pytest.approx(1.0)
        assert d.sf(15.0) == pytest.approx(5 / 6)
        assert d.sf(20.0) == pytest.approx(5 / 6)  # >= is inclusive
        assert d.sf(21.0) == pytest.approx(3 / 6)
        assert d.sf(401.0) == pytest.approx(0.0)

    def test_psuc_is_count_ratio(self, durations):
        d = Empirical(durations)
        # P(X >= 50 | X >= 20) = #{>=50} / #{>=20} = 3/5
        assert d.psuc(30.0, 20.0) == pytest.approx(3 / 5)

    def test_psuc_unconditional_special_case(self, durations):
        d = Empirical(durations)
        assert d.psuc(100.0, 0.0) == pytest.approx(d.sf(100.0))

    def test_mean(self, durations):
        assert Empirical(durations).mean() == pytest.approx(100.0)


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Empirical([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Empirical([1.0, 0.0])
        with pytest.raises(ValueError):
            Empirical([1.0, -3.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Empirical(np.ones((2, 2)))


class TestSampling:
    def test_bootstrap_sampling(self, durations):
        d = Empirical(durations)
        rng = np.random.default_rng(0)
        xs = d.sample(rng, size=10_000)
        assert set(np.unique(xs)).issubset(set(durations))
        assert xs.mean() == pytest.approx(d.mean(), rel=0.1)

    def test_conditional_sampling_respects_age(self, durations):
        d = Empirical(durations)
        rng = np.random.default_rng(1)
        xs = d.sample_conditional(rng, 30.0, size=2000)
        # only durations >= 30 qualify: 50, 100, 400 -> remaining 20, 70, 370
        assert set(np.unique(xs)).issubset({20.0, 70.0, 370.0})

    def test_conditional_beyond_support(self, durations):
        d = Empirical(durations)
        rng = np.random.default_rng(2)
        xs = d.sample_conditional(rng, 1e9, size=5)
        assert np.all(np.asarray(xs) == 0.0)


def test_quantile_order_statistics(durations):
    d = Empirical(durations)
    assert d.quantile(0.0) == 10.0
    assert float(np.asarray(d.quantile(0.99))) == 400.0


def test_large_log_sf_matches_weibull_shape():
    """An empirical distribution built from Weibull samples should
    reproduce the Weibull survival within sampling error."""
    from repro.distributions import Weibull

    w = Weibull.from_mtbf(1000.0, 0.6)
    rng = np.random.default_rng(3)
    d = Empirical(w.sample(rng, size=50_000))
    for t in (100.0, 500.0, 2000.0):
        assert d.sf(t) == pytest.approx(float(w.sf(t)), abs=0.01)
