"""Extension experiments: energy model, ablation drivers, scales."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cluster import ConstantOverhead, Platform
from repro.distributions import Exponential, Weibull
from repro.experiments import MEDIUM, PAPER, SMALL, SMOKE
from repro.experiments.ablations import (
    quantum_sensitivity,
    state_approx_precision,
    theory_vs_simulation,
    truncation_study,
)
from repro.experiments.energy import EnergyModel, run_energy_tradeoff
from repro.units import DAY, HOUR


class TestScales:
    def test_ordering(self):
        assert SMOKE.n_traces < SMALL.n_traces < MEDIUM.n_traces < PAPER.n_traces
        assert PAPER.ptotal_peta == 45_208
        assert PAPER.ptotal_exa == 2**20
        assert PAPER.n_traces == 600

    def test_immutable(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SMALL.n_traces = 1


class TestEnergyModel:
    def test_energy_formula(self):
        m = EnergyModel(p_static=100.0, p_dynamic=50.0, p_io=1000.0)
        e = m.energy(p=10, makespan=100.0, compute=80.0, checkpoint_time=5.0)
        assert e == pytest.approx(10 * 100 * 100 + 10 * 50 * 80 + 1000 * 5)

    def test_tradeoff_curve(self):
        dist = Weibull.from_mtbf(12 * HOUR, 0.7)
        platform = Platform(
            p=8, dist=dist, downtime=60.0, overhead=ConstantOverhead(600.0)
        )
        points = run_energy_tradeoff(
            platform,
            work_time=DAY,
            horizon=400 * DAY,
            n_traces=4,
            period_factors=(0.5, 1.0, 2.0),
        )
        assert [p.period_factor for p in points] == [0.5, 1.0, 2.0]
        for p in points:
            assert p.mean_makespan > DAY
            assert p.mean_energy_joules > 0

    def test_io_heavy_energy_prefers_longer_periods(self):
        """With checkpoint I/O power dominating, the energy-minimal
        period is at least the makespan-minimal one."""
        dist = Exponential.from_mtbf(12 * HOUR)
        platform = Platform(
            p=4, dist=dist, downtime=60.0, overhead=ConstantOverhead(600.0)
        )
        points = run_energy_tradeoff(
            platform,
            work_time=DAY,
            horizon=400 * DAY,
            n_traces=6,
            period_factors=(0.25, 0.5, 1.0, 2.0, 4.0),
            model=EnergyModel(p_static=10.0, p_dynamic=5.0, p_io=1e6),
        )
        span_best = min(points, key=lambda p: p.mean_makespan).period_factor
        energy_best = min(points, key=lambda p: p.mean_energy_joules).period_factor
        assert energy_best >= span_best


class TestAblationDrivers:
    def test_state_approx_small(self):
        r = state_approx_precision(p=512, exponents=range(0, 3))
        assert r.relative_errors.shape == (3,)
        assert np.all(r.relative_errors >= 0)
        assert r.relative_errors[0] < 0.01

    def test_quantum_sensitivity_improves(self):
        from repro.core.state import PlatformState

        dist = Weibull.from_mtbf(DAY, 0.7)
        state = PlatformState([HOUR], dist)
        r = quantum_sensitivity(6 * HOUR, 600.0, state, grids=(6, 24, 96))
        assert r[96] >= r[6] * 0.999

    def test_truncation_study_monotone(self):
        from repro.core.state import PlatformState

        dist = Weibull.from_mtbf(50 * DAY, 0.7)
        state = PlatformState(np.full(32, DAY), dist)
        mtbf = 50 * DAY / 32
        r = truncation_study(100 * DAY, 600.0, state, mtbf, factors=(0.5, 2.0))
        assert r[0.5] > r[2.0]

    def test_theory_vs_simulation_close(self):
        theory, sim, se = theory_vs_simulation(
            mtbf=6 * HOUR, work=2 * DAY, n_traces=60
        )
        assert abs(sim - theory) < 4 * se + 0.01 * theory
