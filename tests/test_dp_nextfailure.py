"""DPNextFailure: optimality, consistency with Proposition 3, behavior."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.dp_nextfailure import (
    dp_next_failure,
    dp_next_failure_parallel,
    expected_work_of_schedule,
)
from repro.core.state import PlatformState
from repro.distributions import Empirical, Exponential, Weibull
from repro.units import DAY, HOUR


def brute_force_best(work_quanta: int, u: float, checkpoint: float, state):
    """Enumerate every composition of `work_quanta` into chunks and score
    with the exact Proposition-3 objective."""
    best_val, best_chunks = -1.0, None
    # compositions of n: choose cut points
    n = work_quanta
    for cuts in itertools.product([0, 1], repeat=n - 1):
        chunks, size = [], 1
        for c in cuts:
            if c:
                chunks.append(size * u)
                size = 1
            else:
                size += 1
        chunks.append(size * u)
        val = expected_work_of_schedule(chunks, checkpoint, state)
        if val > best_val:
            best_val, best_chunks = val, chunks
    return best_val, best_chunks


class TestOptimality:
    @pytest.mark.parametrize(
        "dist",
        [
            Exponential(1 / (2 * HOUR)),
            Weibull.from_mtbf(2 * HOUR, 0.7),
            Weibull.from_mtbf(2 * HOUR, 1.5),
        ],
        ids=["exp", "weibull0.7", "weibull1.5"],
    )
    @pytest.mark.parametrize("tau", [0.0, HOUR])
    def test_matches_brute_force(self, dist, tau):
        u, c, n = 900.0, 600.0, 9
        state = PlatformState([tau], dist)
        result = dp_next_failure(n * u, c, dist, u=u, tau=tau)
        best_val, _ = brute_force_best(n, u, c, state)
        assert result.expected_work == pytest.approx(best_val, rel=1e-9)

    def test_parallel_matches_brute_force(self):
        dist = Weibull.from_mtbf(DAY, 0.6)
        state = PlatformState([0.0, HOUR, 5 * HOUR], dist)
        u, c, n = 900.0, 600.0, 8
        result = dp_next_failure_parallel(n * u, c, state, u=u)
        best_val, _ = brute_force_best(n, u, c, state)
        assert result.expected_work == pytest.approx(best_val, rel=1e-9)


class TestConsistency:
    def test_value_matches_schedule_evaluation(self):
        dist = Weibull.from_mtbf(DAY, 0.7)
        state = PlatformState([HOUR], dist)
        r = dp_next_failure_parallel(12 * HOUR, 600.0, state, u=1800.0)
        assert r.expected_work == pytest.approx(
            expected_work_of_schedule(r.chunks, 600.0, state), rel=1e-9
        )

    def test_chunks_cover_work(self):
        dist = Exponential(1 / DAY)
        r = dp_next_failure(10 * HOUR, 600.0, dist, u=600.0)
        assert r.chunks.sum() == pytest.approx(10 * HOUR)
        assert np.all(r.chunks > 0)

    def test_expected_work_below_total(self):
        dist = Exponential(1 / DAY)
        r = dp_next_failure(10 * HOUR, 600.0, dist, u=600.0)
        assert 0 < r.expected_work < 10 * HOUR

    def test_checkpoint_not_rounded_to_quantum(self):
        """The lattice keeps C exact even when u >> C: the DP must not
        behave as if checkpoints cost a whole quantum."""
        dist = Exponential(1 / (6 * HOUR))
        work = 12 * HOUR
        coarse = dp_next_failure(work, 60.0, dist, u=work / 24)
        fine = dp_next_failure(work, 60.0, dist, u=work / 96)
        state = PlatformState([0.0], dist)
        v_coarse = expected_work_of_schedule(coarse.chunks, 60.0, state)
        v_fine = expected_work_of_schedule(fine.chunks, 60.0, state)
        assert v_coarse > 0.97 * v_fine


class TestAdaptivity:
    def test_aged_weibull_allows_longer_first_chunk(self):
        """k < 1: an old processor is safer, so the optimal first chunk
        grows with the age — the adaptivity Young/Daly lack."""
        dist = Weibull.from_mtbf(DAY, 0.7)
        young = dp_next_failure(12 * HOUR, 600.0, dist, u=600.0, tau=0.0)
        old = dp_next_failure(12 * HOUR, 600.0, dist, u=600.0, tau=5 * DAY)
        assert old.first_chunk > young.first_chunk

    def test_exponential_age_irrelevant(self):
        dist = Exponential(1 / DAY)
        a = dp_next_failure(12 * HOUR, 600.0, dist, u=600.0, tau=0.0)
        b = dp_next_failure(12 * HOUR, 600.0, dist, u=600.0, tau=3 * DAY)
        assert np.allclose(a.chunks, b.chunks)
        assert a.expected_work == pytest.approx(b.expected_work, rel=1e-12)

    def test_compressed_state_matches_exact(self):
        dist = Weibull.from_mtbf(125 * 365 * DAY, 0.7)
        rng = np.random.default_rng(0)
        taus = rng.uniform(0, 365 * DAY, size=3000)
        exact = PlatformState(taus, dist)
        approx = exact.compress(10, 100)
        re = dp_next_failure_parallel(6 * HOUR, 600.0, exact, u=900.0)
        ra = dp_next_failure_parallel(6 * HOUR, 600.0, approx, u=900.0)
        assert ra.expected_work == pytest.approx(re.expected_work, rel=1e-3)

    def test_higher_failure_rate_means_shorter_chunks(self):
        work, c, u = 12 * HOUR, 600.0, 300.0
        fast = dp_next_failure(work, c, Exponential(1 / (2 * HOUR)), u=u)
        slow = dp_next_failure(work, c, Exponential(1 / (2 * DAY)), u=u)
        assert max(fast.chunks) < max(slow.chunks)


class TestEmpiricalDistribution:
    def test_runs_on_empirical(self):
        rng = np.random.default_rng(1)
        d = Empirical(rng.weibull(0.6, 5000) * DAY)
        state = PlatformState(np.full(16, HOUR), d)
        r = dp_next_failure_parallel(6 * HOUR, 600.0, state, u=900.0)
        assert np.isfinite(r.expected_work)
        assert r.chunks.sum() == pytest.approx(6 * HOUR)


class TestValidation:
    def test_rejects_bad_quantum(self):
        with pytest.raises(ValueError):
            dp_next_failure(HOUR, 600.0, Exponential(1.0), u=0.0)

    def test_empty_schedule_evaluates_to_zero(self):
        state = PlatformState([0.0], Exponential(1 / DAY))
        assert expected_work_of_schedule([], 600.0, state) == 0.0
