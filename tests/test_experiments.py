"""Experiment drivers at SMOKE scale: structure and basic sanity.

These are plumbing tests (fast, few traces); the paper-shape assertions
with enough statistics live in test_integration.py and the benchmarks.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.experiments import SMOKE
from repro.experiments.logbased import run_logbased_experiment
from repro.experiments.model_combos import run_model_combo_experiment
from repro.experiments.period_sweep import run_period_sweep
from repro.experiments.profiles import run_profile_experiment
from repro.experiments.scaling import run_scaling_experiment, run_table4
from repro.experiments.shape_sweep import run_shape_sweep
from repro.experiments.single_proc import run_single_proc_experiment
from repro.units import DAY, HOUR

TINY = dataclasses.replace(SMOKE, n_traces=3, n_p_points=2)


class TestSingleProc:
    def test_exponential_structure(self):
        r = run_single_proc_experiment("exponential", mtbfs=(HOUR,), scale=TINY)
        stats = r.stats[HOUR]
        for name in (
            "Young",
            "DalyLow",
            "DalyHigh",
            "OptExp",
            "Bouguerra",
            "Liu",
            "DPNextFailure",
            "DPMakespan",
            "LowerBound",
            "PeriodLB",
        ):
            assert name in stats
        assert stats["LowerBound"].avg < 1.0
        for name, s in stats.items():
            if name != "LowerBound" and s.n_valid:
                assert s.avg >= 1.0 - 1e-9

    def test_weibull_runs(self):
        r = run_single_proc_experiment("weibull", mtbfs=(HOUR,), scale=TINY)
        assert r.dist_kind == "weibull"
        assert HOUR in r.stats


class TestScaling:
    def test_petascale_weibull(self):
        r = run_scaling_experiment("peta", "weibull", scale=TINY)
        assert len(r.p_values) == 2
        assert r.p_values[-1] == TINY.ptotal_peta
        series = r.series()
        assert "DPNextFailure" in series
        assert all(len(v) == 2 for v in series.values())

    @pytest.mark.slow
    def test_exponential_includes_dpmakespan(self):
        r = run_scaling_experiment("peta", "exponential", scale=TINY)
        assert "DPMakespan" in r.series()

    def test_weibull_excludes_dpmakespan(self):
        r = run_scaling_experiment("peta", "weibull", scale=TINY)
        assert "DPMakespan" not in r.series()

    def test_table4(self):
        r = run_table4(scale=TINY)
        assert "DPNextFailure" in r.stats
        assert r.dp_failures_avg > 0
        assert r.dp_failures_max >= r.dp_failures_avg


class TestSweeps:
    def test_shape_sweep(self):
        r = run_shape_sweep(shapes=(0.7, 1.0), scale=TINY)
        assert set(r.shapes) == {0.7, 1.0}
        assert "DPNextFailure" in r.series()

    def test_period_sweep(self):
        r = run_period_sweep(
            "peta", "exponential", log2_factors=(-2, 0, 2), scale=TINY
        )
        assert set(r.sweep) == {-2, 0, 2}
        for s in r.sweep.values():
            assert s.avg >= 1.0 - 1e-9
        assert "Young" in r.heuristics

    @pytest.mark.slow
    def test_logbased(self):
        r = run_logbased_experiment(cluster=19, scale=TINY)
        assert len(r.p_values) == 2
        stats = r.stats[r.p_values[-1]]
        assert "DPNextFailure" in stats
        assert "Bouguerra" not in stats  # not adaptable to logs

    def test_model_combos(self):
        combos = (("embarrassing", "constant"), ("amdahl", "proportional"))
        r = run_model_combo_experiment(
            "peta", "weibull", combos=combos, scale=TINY
        )
        assert set(r.stats) == set(combos)
        ranked = r.ranking(combos[0])
        assert len(ranked) >= 5

    def test_profiles(self):
        r = run_profile_experiment("exponential", policy="OptExp", scale=TINY)
        assert len(r.p_values) == 2
        for series in r.makespan_days.values():
            assert all(v > 0 for v in series)

    def test_profiles_more_processors_faster_embarrassing(self):
        r = run_profile_experiment("exponential", policy="OptExp", scale=TINY)
        emb = r.makespan_days["W/p"]
        assert emb[-1] < emb[0]
