"""reprolint: rule fixtures, pragmas, engine mechanics, cache, CLI.

Each rule R1-R15 is demonstrated by a failing and a passing fixture under
``tests/fixtures/lint/`` (never collected by pytest, never swept up by
directory-walk linting).  The property-style pair test asserts each
failing fixture triggers *exactly* its own rule — no cross-rule bleed —
and each passing fixture is completely clean under the full rule set.
The capstone test asserts the real tree passes its own linter:
``repro lint src tests`` must exit 0.

The interprocedural layer (call graph, R13-R15, ``--explain`` traces,
the lint baseline and the project-level cache) is covered in its own
sections toward the end.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import all_rules, get_rule, lint_file, lint_paths, run_lint
from repro.lint.cache import LintCache
from repro.lint.engine import iter_python_files
from repro.lint.formats import render_report
from repro.lint.registry import is_interprocedural, is_project_rule

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "fixtures" / "lint"

ALL_CODES = [
    "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8",
    "R9", "R10", "R11", "R12", "R13", "R14", "R15",
]

# code -> (failing fixture, passing fixture); directories exercise the
# whole-program rules over multi-file mini-projects.
FIXTURE_PAIRS = {
    "R1": ("r1_fail.py", "r1_pass.py"),
    "R2": ("r2_fail.py", "r2_pass.py"),
    "R3": ("r3_fail.py", "r3_pass.py"),
    "R4": ("r4_fail.py", "r4_pass.py"),
    "R5": ("test_r5_fail.py", "test_r5_pass.py"),
    "R6": ("simulation/r6_fail.py", "simulation/r6_pass.py"),
    "R7": ("r7_fail.py", "r7_pass.py"),
    "R8": ("r8_fail", "r8_pass"),
    "R9": ("r9_fail.py", "r9_pass.py"),
    "R10": ("r10_fail", "r10_pass"),
    "R11": ("service/r11_fail.py", "service/r11_pass.py"),
    "R12": ("r12_fail.py", "r12_pass.py"),
    "R13": ("r13_fail", "r13_pass"),
    "R14": ("r14_fail.py", "r14_pass.py"),
    "R15": ("service/r15_fail.py", "service/r15_pass.py"),
}


def codes(diags):
    """The set of rule codes present in a diagnostic list."""
    return {d.code for d in diags}


# ----------------------------------------------------------------------
# per-rule fixtures: the no-bleed property
# ----------------------------------------------------------------------


@pytest.mark.parametrize("code", ALL_CODES)
def test_failing_fixture_flags_exactly_its_rule(code):
    """Every rule's failing fixture triggers that rule and nothing else
    under the FULL rule set — fixtures must not bleed across rules."""
    fail, _ = FIXTURE_PAIRS[code]
    diags = lint_paths([FIXTURES / fail])
    assert codes(diags) == {code}, [d.render() for d in diags]


@pytest.mark.parametrize("code", ALL_CODES)
def test_passing_fixture_is_clean(code):
    _, ok = FIXTURE_PAIRS[code]
    diags = lint_paths([FIXTURES / ok])
    assert diags == [], [d.render() for d in diags]


def test_r1_counts_every_global_rng_use():
    diags = lint_file(FIXTURES / "r1_fail.py", [get_rule("R1")])
    messages = " ".join(d.message for d in diags)
    assert "np.random.seed" in messages
    assert "np.random.uniform" in messages
    assert "stdlib 'random'" in messages
    assert "without an explicit seed=" in messages


def test_r1_wall_clock_only_in_hot_paths(tmp_path):
    src = "import time\n\ndef f():\n    return time.time()\n"
    outside = tmp_path / "analysis_helper.py"
    outside.write_text(src)
    assert lint_file(outside, [get_rule("R1")]) == []
    diags = lint_file(FIXTURES / "simulation" / "r1_wallclock_fail.py",
                      [get_rule("R1")])
    assert len(diags) == 1 and "wall-clock" in diags[0].message


def test_r2_suggests_units_constants():
    diags = lint_file(FIXTURES / "r2_fail.py", [get_rule("R2")])
    messages = " ".join(d.message for d in diags)
    assert "write DAY" in messages
    assert "HOUR" in messages
    assert "MINUTE" in messages
    assert "timeout_ms" in messages  # the naming-convention arm


def test_r3_exempts_tolerance_helpers(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "def assert_approx_zero(x):\n"
        "    return x == 0.0\n"
        "def outside(x):\n"
        "    return x == 0.0\n"
    )
    diags = lint_file(f, [get_rule("R3")])
    assert len(diags) == 1
    assert diags[0].line == 4


def test_r4_flags_each_hygiene_hazard():
    diags = lint_file(FIXTURES / "r4_fail.py", [get_rule("R4")])
    messages = [d.message for d in diags]
    assert any("mutable default" in m for m in messages)
    assert any("bare 'except:'" in m for m in messages)
    assert any("swallows the error" in m for m in messages)
    assert len(diags) == 3


def test_r4_requires_future_annotations(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text('"""Doc."""\n\nX = 1\n')
    diags = lint_file(f, [get_rule("R4")])
    assert len(diags) == 1
    assert "from __future__ import annotations" in diags[0].message
    assert diags[0].fix is not None
    # docstring-only modules are exempt — nothing needs annotating
    g = tmp_path / "empty.py"
    g.write_text('"""Only a docstring."""\n')
    assert lint_file(g, [get_rule("R4")]) == []


def test_r5_respects_class_and_module_markers(tmp_path):
    body = (
        "    for i in range(500):\n"
        "        simulate_job(1, 2, 3)\n"
    )
    marked_module = tmp_path / "test_marked_mod.py"
    marked_module.write_text(
        "import pytest\nfrom repro.simulation import simulate_job\n"
        "pytestmark = pytest.mark.slow\n"
        f"def test_heavy():\n{body}"
    )
    assert lint_file(marked_module, [get_rule("R5")]) == []
    marked_class = tmp_path / "test_marked_cls.py"
    marked_class.write_text(
        "import pytest\nfrom repro.simulation import simulate_job\n"
        "@pytest.mark.slow\nclass TestHeavy:\n"
        f"    def test_heavy(self):\n    {body.replace(chr(10), chr(10) + '    ')}\n"
    )
    assert lint_file(marked_class, [get_rule("R5")]) == []


# ----------------------------------------------------------------------
# whole-program rules
# ----------------------------------------------------------------------


def test_r6_names_each_seed_flow_hazard():
    diags = lint_paths([FIXTURES / "simulation" / "r6_fail.py"])
    messages = " ".join(d.message for d in diags)
    assert "draws OS entropy" in messages
    assert "no seed/rng parameter" in messages
    assert "drops the threaded seed" in messages
    assert "shadows the threaded seed" in messages
    assert len(diags) == 4


def test_r6_only_applies_to_seeded_packages(tmp_path):
    """The same hazards outside traces/simulation/experiments are not
    R6's business (library code may legitimately be caller-seeded)."""
    src = (FIXTURES / "simulation" / "r6_fail.py").read_text()
    outside = tmp_path / "helpers.py"
    outside.write_text(src)
    assert lint_paths([outside]) == []


def test_r7_names_each_unit_propagation_hazard():
    diags = lint_paths([FIXTURES / "r7_fail.py"])
    messages = " ".join(d.message for d in diags)
    assert "bare literal 86400" in messages
    assert "names a non-second unit" in messages
    assert "count-valued" in messages
    assert "time-valued" in messages
    assert len(diags) == 4


def test_r8_reports_every_drifted_layer():
    diags = lint_paths([FIXTURES / "r8_fail"])
    messages = " ".join(d.message for d in diags)
    assert "'DalyHigh' is not exported" in messages
    assert "no 'liu' policy choice" in messages
    assert "'Bouguerra' is never constructed" in messages
    assert "'PeriodLB' column constant" in messages
    assert "never mentions policy 'DPMakespan'" in messages
    assert len(diags) == 5


def test_r8_inactive_without_a_policies_module(tmp_path):
    f = tmp_path / "plain.py"
    f.write_text("from __future__ import annotations\n\nX = 1\n")
    assert lint_paths([f], select=["R8"]) == []


def test_r9_flags_declared_and_inferred_guards():
    diags = lint_file(FIXTURES / "r9_fail.py", [get_rule("R9")])
    messages = [d.message for d in diags]
    assert len(diags) == 2
    assert any("is declared guarded-by '_lock'" in m for m in messages)
    assert any("inferred guarded-by '_lock'" in m for m in messages)
    assert all("outside a 'with self._lock:' region" in m for m in messages)


def test_r9_rejects_annotation_naming_unknown_lock(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "from __future__ import annotations\n"
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.items = []  # reprolint: guarded-by=_mutex\n"
    )
    diags = lint_file(f, [get_rule("R9")])
    assert len(diags) == 1
    assert "creates no such lock attribute" in diags[0].message
    assert "_mutex" in diags[0].message


def test_r9_single_threaded_marker_exempts_method(tmp_path):
    src = (FIXTURES / "r9_pass.py").read_text()
    assert "# reprolint: single-threaded" in src
    stripped = tmp_path / "mod.py"
    stripped.write_text(src.replace("  # reprolint: single-threaded", ""))
    diags = lint_file(stripped, [get_rule("R9")])
    assert diags != []  # without the marker the unlocked reset is flagged


def test_r10_names_each_lifecycle_hazard():
    diags = lint_paths([FIXTURES / "r10_fail"], select=["R10"])
    messages = " ".join(d.message for d in diags)
    assert "the segment leaks when the block raises" in messages or (
        "not a try block releasing it" in messages
    )
    assert "temp-then-os.replace idiom" in messages
    assert "no method ever shuts them down" in messages
    assert len(diags) == 3


def test_r10_ownership_transfer_is_not_a_leak(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "from __future__ import annotations\n"
        "from multiprocessing import shared_memory\n"
        "def make(size):\n"
        "    return shared_memory.SharedMemory(create=True, size=size)\n"
    )
    assert lint_file(f, [get_rule("R10")]) == []


def test_r11_flags_every_contract_breach():
    diags = lint_paths([FIXTURES / "service" / "r11_fail.py"])
    messages = " ".join(d.message for d in diags)
    assert "emits more than one envelope" in messages
    assert "a return path that emits no envelope" in messages
    assert "never emits an envelope" in messages
    assert "returns exit code 3" in messages
    assert "'print(...)' writes stdout" in messages
    assert "bypasses the envelope" in messages
    assert "'sys.exit(5)'" in messages
    assert len(diags) == 7


def test_r12_flags_each_thread_hazard():
    diags = lint_file(FIXTURES / "r12_fail.py", [get_rule("R12")])
    messages = [d.message for d in diags]
    assert any("explicit daemon= flag" in m for m in messages)
    assert any("the failure is swallowed" in m for m in messages)
    joinless = [m for m in messages if "shutdown path 'shutdown'" in m]
    assert len(joinless) == 2  # join() and wait(), both timeout-free
    assert len(diags) == 4


# ----------------------------------------------------------------------
# pragmas
# ----------------------------------------------------------------------


def test_pragma_silences_named_rule_on_that_line_only(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "def a(x):\n"
        "    return x == 1.5  # reprolint: disable=R3\n"
        "def b(x):\n"
        "    return x == 1.5\n"
    )
    diags = lint_file(f, [get_rule("R3")])
    assert [d.line for d in diags] == [4]


def test_pragma_accepts_rule_name_and_all(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "def a(x):\n"
        "    return x == 1.5  # reprolint: disable=float-eq\n"
        "def b(x):\n"
        "    return x == 1.5  # reprolint: disable=all\n"
    )
    assert lint_file(f, [get_rule("R3")]) == []


def test_pragma_for_other_rule_does_not_silence(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text("def a(x):\n    return x == 1.5  # reprolint: disable=R2\n")
    assert len(lint_file(f, [get_rule("R3")])) == 1


def test_pragma_multi_rule_comma_list(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "def a(x):\n"
        "    mtbf = 86400.0; ok = x == 1.5  # reprolint: disable=R2,R3\n"
    )
    diags = lint_file(f, [get_rule("R2"), get_rule("R3")])
    assert diags == [], [d.render() for d in diags]


def test_pragma_trailing_justification_text(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "def a(x):\n"
        "    mtbf = 86400.0  # reprolint: disable=R2 dimensionless factor\n"
    )
    assert lint_file(f, [get_rule("R2")]) == []


def test_pragma_justification_does_not_widen_to_later_chunks(tmp_path):
    """Once a chunk carries free text, later comma-separated words are
    justification, not extra rule keys."""
    f = tmp_path / "mod.py"
    f.write_text(
        "def a(x):\n"
        "    mtbf = 86400.0; ok = x == 1.5"
        "  # reprolint: disable=R2 factor, R3 would be wrong\n"
    )
    diags = lint_file(f, [get_rule("R2"), get_rule("R3")])
    assert codes(diags) == {"R3"}


def test_pragma_on_decorator_line_covers_the_def(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "from __future__ import annotations\n"
        "import functools\n"
        "@functools.lru_cache  # reprolint: disable=R2\n"
        "def f(timeout_ms=5):\n"
        "    return timeout_ms\n"
    )
    assert lint_file(f, [get_rule("R2")]) == []
    # without the pragma the diagnostic anchors at the def line
    g = tmp_path / "bare.py"
    g.write_text(
        "from __future__ import annotations\n"
        "import functools\n"
        "@functools.lru_cache\n"
        "def f(timeout_ms=5):\n"
        "    return timeout_ms\n"
    )
    assert [d.line for d in lint_file(g, [get_rule("R2")])] == [4]


# ----------------------------------------------------------------------
# engine mechanics
# ----------------------------------------------------------------------


def test_registry_exposes_fifteen_rules():
    assert [r.code for r in all_rules()] == ALL_CODES
    assert get_rule("unit-safety").code == "R2"
    assert get_rule("seed-flow").code == "R6"
    assert get_rule("lock-discipline").code == "R9"
    assert get_rule("envelope-conformance").code == "R11"
    assert get_rule("determinism-taint").code == "R13"
    assert get_rule("knob-parity").code == "R14"
    assert get_rule("service-exception-contract").code == "R15"
    with pytest.raises(KeyError):
        get_rule("R99")


def test_project_rules_are_discriminated_from_file_rules():
    for code in ("R2", "R9", "R10", "R12"):
        assert not is_project_rule(get_rule(code))
    for code in ("R6", "R7", "R8", "R11", "R13", "R14", "R15"):
        assert is_project_rule(get_rule(code))
    for code in ("R13", "R14", "R15"):
        assert is_interprocedural(get_rule(code))
    for code in ("R6", "R7", "R8", "R11"):
        assert not is_interprocedural(get_rule(code))


def test_directory_walk_skips_fixture_violations_and_cache():
    walked = list(iter_python_files([REPO / "tests"]))
    assert all("fixtures" not in f.parts for f in walked)
    assert any(f.name == "test_lint.py" for f in walked)


def test_directory_walk_skips_reprolint_cache(tmp_path):
    (tmp_path / ".reprolint-cache").mkdir()
    (tmp_path / ".reprolint-cache" / "stale.py").write_text("x = 1\n")
    (tmp_path / "real.py").write_text("x = 1\n")
    walked = list(iter_python_files([tmp_path]))
    assert [f.name for f in walked] == ["real.py"]


def test_explicit_fixture_path_is_still_linted():
    assert lint_paths([FIXTURES / "r4_fail.py"]) != []


def test_parse_error_is_reported_not_raised(tmp_path):
    f = tmp_path / "broken.py"
    f.write_text("def broken(:\n")
    diags = lint_file(f)
    assert len(diags) == 1 and diags[0].code == "E0"


def test_non_utf8_file_is_reported_not_raised(tmp_path):
    f = tmp_path / "latin.py"
    f.write_bytes(b'"""caf\xe9"""\nx = 1\n')
    diags = lint_paths([f])
    assert len(diags) == 1 and diags[0].code == "E0"
    assert "UTF-8" in diags[0].message


def test_unreadable_path_is_reported_not_raised(tmp_path):
    trap = tmp_path / "dir_pretending.py"
    trap.mkdir()
    diags = lint_file(trap)
    assert len(diags) == 1 and diags[0].code == "E0"
    assert "cannot read" in diags[0].message


def test_select_restricts_rules():
    diags = lint_paths([FIXTURES / "r4_fail.py"], select=["R3"])
    assert diags == []


# ----------------------------------------------------------------------
# incremental cache + parallel pass
# ----------------------------------------------------------------------


def _fixture_args():
    return [FIXTURES / f for f, _ in FIXTURE_PAIRS.values()]


def test_warm_cache_relints_with_zero_reparses(tmp_path):
    cache_dir = tmp_path / "cache"
    cold = run_lint(_fixture_args(), cache=LintCache(cache_dir))
    assert cold.parsed == cold.files and cold.cached == 0
    warm = run_lint(_fixture_args(), cache=LintCache(cache_dir))
    assert warm.parsed == 0 and warm.cached == warm.files
    assert [d.render() for d in warm.diagnostics] == [
        d.render() for d in cold.diagnostics
    ]


def test_select_change_rekeys_cache(tmp_path):
    """The cache key includes the active rule selection: only the rules
    that actually ran are cached, so changing --select re-analyzes once
    and is warm thereafter under the new key."""
    cache_dir = tmp_path / "cache"
    full = run_lint([FIXTURES / "r2_fail.py"], cache=LintCache(cache_dir))
    assert full.parsed == 1
    narrowed = run_lint(
        [FIXTURES / "r2_fail.py"], select=["R2"], cache=LintCache(cache_dir)
    )
    assert narrowed.parsed == 1  # new selection -> new key -> re-analyzed
    assert codes(narrowed.diagnostics) == {"R2"}
    warm = run_lint(
        [FIXTURES / "r2_fail.py"], select=["R2"], cache=LintCache(cache_dir)
    )
    assert warm.parsed == 0 and warm.cached == 1
    assert codes(warm.diagnostics) == {"R2"}


def test_rule_source_change_invalidates_cache(tmp_path, monkeypatch):
    """The signature hashes each selected rule's module source, so
    editing a rule invalidates entries even for unchanged files."""
    import repro.lint.cache as cache_mod

    cache_dir = tmp_path / "cache"
    first = run_lint([FIXTURES / "r2_fail.py"], cache=LintCache(cache_dir))
    assert first.parsed == 1
    monkeypatch.setattr(
        cache_mod, "_rule_source", lambda rule: f"edited {rule.code}"
    )
    second = run_lint([FIXTURES / "r2_fail.py"], cache=LintCache(cache_dir))
    assert second.parsed == 1  # rule sources "changed" -> cold again


def test_cache_invalidates_on_content_change(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("from __future__ import annotations\n\nX = 1\n")
    cache_dir = tmp_path / "cache"
    first = run_lint([mod], cache=LintCache(cache_dir))
    assert first.parsed == 1 and first.diagnostics == []
    mod.write_text(
        "from __future__ import annotations\n\n"
        "def f(x):\n    return x == 1.5\n"
    )
    second = run_lint([mod], cache=LintCache(cache_dir))
    assert second.parsed == 1
    assert codes(second.diagnostics) == {"R3"}


def test_parallel_jobs_match_serial(tmp_path):
    serial = run_lint(_fixture_args())
    parallel = run_lint(_fixture_args(), jobs=2)
    assert [d.render() for d in parallel.diagnostics] == [
        d.render() for d in serial.diagnostics
    ]


# ----------------------------------------------------------------------
# output formats
# ----------------------------------------------------------------------


def test_json_format_carries_engine_counters():
    report = run_lint([FIXTURES / "r2_fail.py"])
    doc = json.loads(render_report(report, "json"))
    assert doc["tool"] == "reprolint"
    assert doc["files"] == 1 and doc["parsed"] == 1 and doc["cached"] == 0
    assert all(d["code"] == "R2" for d in doc["diagnostics"])
    assert {"path", "line", "col", "code", "name", "message"} <= set(
        doc["diagnostics"][0]
    )


def test_sarif_output_validates_against_schema():
    jsonschema = pytest.importorskip("jsonschema")
    report = run_lint([FIXTURES / "r2_fail.py"])
    doc = json.loads(render_report(report, "sarif"))
    schema = json.loads(
        (REPO / "tests" / "fixtures" / "sarif-2.1.0-subset.schema.json")
        .read_text(encoding="utf-8")
    )
    jsonschema.validate(doc, schema)
    assert doc["version"] == "2.1.0"
    driver = doc["runs"][0]["tool"]["driver"]
    assert driver["name"] == "reprolint"
    rule_ids = {r["id"] for r in driver["rules"]}
    assert set(ALL_CODES) | {"E0"} <= rule_ids
    results = doc["runs"][0]["results"]
    assert results and all(r["ruleId"] == "R2" for r in results)
    region = results[0]["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] >= 1 and region["startColumn"] >= 1


def test_sarif_marks_parse_errors_as_errors(tmp_path):
    f = tmp_path / "broken.py"
    f.write_text("def broken(:\n")
    doc = json.loads(render_report(run_lint([f]), "sarif"))
    assert doc["runs"][0]["results"][0]["level"] == "error"


# ----------------------------------------------------------------------
# autofix
# ----------------------------------------------------------------------


def test_fix_rewrites_unit_literals_and_adds_imports(tmp_path, monkeypatch):
    monkeypatch.setenv("REPROLINT_CACHE_DIR", str(tmp_path / "cache"))
    target = tmp_path / "mod.py"
    target.write_text(
        '"""Fixture for --fix."""\n'
        "\n"
        "\n"
        "def plan(work=1728000.0, downtime=60):\n"
        "    mtbf = 86400.0\n"
        "    return work + mtbf + downtime\n"
    )
    assert main(["lint", str(target), "--fix"]) == 0
    text = target.read_text()
    assert "from __future__ import annotations" in text
    assert "work=20 * DAY" in text
    assert "downtime=MINUTE" in text
    assert "mtbf = DAY" in text
    assert "from repro.units import DAY, MINUTE" in text
    compile(text, str(target), "exec")  # the rewrite must stay valid Python


def test_fix_is_idempotent(tmp_path, monkeypatch):
    monkeypatch.setenv("REPROLINT_CACHE_DIR", str(tmp_path / "cache"))
    target = tmp_path / "mod.py"
    target.write_text(
        '"""Fixture for --fix."""\n'
        "\n"
        "\n"
        "def plan(work=1728000.0):\n"
        "    return work\n"
    )
    assert main(["lint", str(target), "--fix"]) == 0
    once = target.read_text()
    assert main(["lint", str(target), "--fix"]) == 0
    assert target.read_text() == once


def test_fix_parenthesizes_when_precedence_demands(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "from __future__ import annotations\n"
        "\n"
        "def plan(period=120 ** 2):\n"
        "    return period\n"
    )
    from repro.lint.fixes import apply_fixes

    diags = lint_file(target, [get_rule("R2")])
    assert len(diags) == 1 and diags[0].fix is not None
    apply_fixes(diags)
    text = target.read_text()
    assert "(2 * MINUTE) ** 2" in text
    compile(text, str(target), "exec")


def test_fix_redirects_print_to_hlog(tmp_path):
    """R11's mechanical fix: bare one-argument print() becomes hlog()
    with the import added; the rewritten module re-lints clean."""
    from repro.lint.fixes import apply_fixes

    service = tmp_path / "service"
    service.mkdir()
    target = service / "mod.py"
    target.write_text(
        "from __future__ import annotations\n"
        "\n"
        'print("starting up")\n'
    )
    report = run_lint([target], select=["R11"])
    assert codes(report.diagnostics) == {"R11"}
    assert report.diagnostics[0].fix is not None
    apply_fixes(report.diagnostics)
    text = target.read_text()
    assert 'hlog("starting up")' in text
    assert "from repro.service.envelope import hlog" in text
    compile(text, str(target), "exec")
    assert run_lint([target], select=["R11"]).diagnostics == []


def test_fix_adds_explicit_daemon_flag(tmp_path):
    from repro.lint.fixes import apply_fixes

    target = tmp_path / "mod.py"
    target.write_text(
        "from __future__ import annotations\n"
        "import threading\n"
        "\n"
        "def spawn(fn):\n"
        "    return threading.Thread(target=fn)\n"
    )
    diags = lint_file(target, [get_rule("R12")])
    assert len(diags) == 1 and diags[0].fix is not None
    apply_fixes(diags)
    text = target.read_text()
    assert "threading.Thread(target=fn, daemon=False)" in text
    compile(text, str(target), "exec")
    assert lint_file(target, [get_rule("R12")]) == []


# ----------------------------------------------------------------------
# CLI + clean tree
# ----------------------------------------------------------------------


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ALL_CODES:
        assert code in out


def test_cli_exit_codes(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPROLINT_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["lint", str(FIXTURES / "r4_fail.py")]) == 1
    env = json.loads(capsys.readouterr().out)  # stdout is the envelope now
    assert "R4" in {d["code"] for d in env["data"]["diagnostics"]}
    assert main(["lint", str(FIXTURES / "r4_pass.py")]) == 0
    assert main(["lint", "--select", "bogus", "src"]) == 2
    assert main(["lint", str(REPO / "no-such-dir")]) == 2
    broken = tmp_path / "latin.py"
    broken.write_bytes(b"x = '\xff'\n")
    assert main(["lint", str(broken)]) == 2  # E0 is a hard error


def test_cli_json_format(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPROLINT_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["lint", "--format", "json",
                 str(FIXTURES / "r3_fail.py")]) == 1
    doc = json.loads(capsys.readouterr().out)["data"]
    assert codes_from_json(doc) == {"R3"}


def codes_from_json(doc):
    """Rule codes present in a ``--format json`` document."""
    return {d["code"] for d in doc["diagnostics"]}


def test_cli_no_cache_and_jobs_flags(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPROLINT_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["lint", "--no-cache", "--jobs", "2",
                 str(FIXTURES / "r2_pass.py")]) == 0
    assert not (tmp_path / "cache").exists()  # --no-cache wrote nothing


def test_repro_lint_src_is_clean():
    """The acceptance gate: the real tree passes its own linter."""
    diags = lint_paths([REPO / "src"])
    assert diags == [], [d.render() for d in diags]


def test_repro_lint_src_and_tests_clean_with_all_rules():
    """The full-tree gate with R1-R15 enabled — including the
    whole-program seed-flow, unit-propagation, registry,
    envelope-conformance and interprocedural flow checks."""
    diags = lint_paths([REPO / "src", REPO / "tests"])
    assert diags == [], [d.render() for d in diags]


def test_cli_concurrency_rules_clean_on_real_tree(capsys, tmp_path,
                                                  monkeypatch):
    """The new rule families pass over the swept tree via the CLI."""
    monkeypatch.setenv("REPROLINT_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["lint", "--select", "R9,R10,R11,R12",
                 str(REPO / "src")]) == 0
    env = json.loads(capsys.readouterr().out)
    assert env["data"]["diagnostics"] == []


def test_cli_interprocedural_rules_clean_on_real_tree(capsys, tmp_path,
                                                      monkeypatch):
    """R13-R15 pass over the swept tree via the CLI."""
    monkeypatch.setenv("REPROLINT_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["lint", "--select", "R13,R14,R15",
                 str(REPO / "src")]) == 0
    env = json.loads(capsys.readouterr().out)
    assert env["data"]["diagnostics"] == []


# ----------------------------------------------------------------------
# interprocedural layer: witness traces and --explain
# ----------------------------------------------------------------------


def test_r13_trace_names_every_chain_function():
    """The acceptance chain: a two-hop indirect time.time read carries a
    witness trace naming every function on the way to the source."""
    report = run_lint([FIXTURES / "r13_fail"])
    [diag] = report.diagnostics
    assert diag.code == "R13"
    names = [s.function.rsplit(".", 1)[-1] for s in diag.trace]
    assert names == ["step", "advance", "stamp"]
    assert diag.trace[-1].note == "reads time.time()"
    assert all(s.line >= 1 and s.col >= 1 for s in diag.trace)


def test_r13_explain_text_prints_the_call_chain():
    report = run_lint([FIXTURES / "r13_fail"])
    plain = render_report(report, "text")
    explained = render_report(report, "text", explain=True)
    assert "call chain:" not in plain
    assert "call chain:" in explained
    for name in ("step", "advance", "stamp"):
        assert name in explained


def test_r13_sarif_code_flow_names_every_chain_function():
    doc = json.loads(
        render_report(run_lint([FIXTURES / "r13_fail"]), "sarif")
    )
    [result] = doc["runs"][0]["results"]
    [flow] = result["codeFlows"]
    messages = [
        loc["location"]["message"]["text"]
        for loc in flow["threadFlows"][0]["locations"]
    ]
    assert len(messages) == 3
    for name, text in zip(("step", "advance", "stamp"), messages):
        assert name in text


def test_r13_real_tree_kernel_taint_is_empty():
    """The meta-test behind the R13 gate: no core/simulation/traces
    function transitively reaches an ambient-state source."""
    import ast

    from repro.lint.interproc import InterAnalysis, in_kernel_tier
    from repro.lint.project import ProjectModel, build_module_info

    modules = []
    for path in iter_python_files([REPO / "src"]):
        text = path.read_text(encoding="utf-8")
        modules.append(
            build_module_info(path, ast.parse(text), text.splitlines())
        )
    analysis = InterAnalysis(ProjectModel(modules))
    tainted = {
        f"{mod.module}.{fn.qualname}": sorted(
            analysis.taints(f"{mod.module}.{fn.qualname}")
        )
        for mod, fn in analysis.model.functions()
        if in_kernel_tier(mod)
        and not fn.is_test
        and analysis.taints(f"{mod.module}.{fn.qualname}")
    }
    assert tainted == {}


def test_r14_fires_when_reference_branch_is_deleted(tmp_path):
    """The acceptance edit: delete the slow-path branch of a gated
    function and R14 appears."""
    mod = tmp_path / "engine.py"
    mod.write_text(
        "from __future__ import annotations\n"
        "\n"
        "\n"
        "def replay(values, use_batch=True):\n"
        "    if use_batch:\n"
        "        return [v + v for v in values]\n"
        "    return [v * 2 for v in values]\n"
    )
    assert lint_paths([mod]) == []
    mod.write_text(
        "from __future__ import annotations\n"
        "\n"
        "\n"
        "def replay(values, use_batch=True):\n"
        "    if use_batch:\n"
        "        return [v + v for v in values]\n"
    )
    diags = lint_paths([mod])
    assert codes(diags) == {"R14"}
    assert "use_batch" in diags[0].message


def test_r15_trace_walks_handler_to_origin():
    report = run_lint([FIXTURES / "service" / "r15_fail.py"])
    [diag] = [
        d for d in report.diagnostics
        if "do_GET" in d.message and "unguarded raise" in d.message
    ]
    names = [s.function.rsplit(".", 1)[-1] for s in diag.trace]
    assert names == ["do_GET", "_route", "_dispatch"]


def test_cli_explain_prints_call_chain(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPROLINT_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["lint", "--explain",
                 str(FIXTURES / "service" / "r15_fail.py")]) == 1
    assert "call chain:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# lint baseline
# ----------------------------------------------------------------------


def test_baseline_roundtrip_suppresses_then_goes_stale(tmp_path):
    from repro.lint.baseline import (
        apply_baseline,
        load_baseline,
        write_baseline,
    )

    report = run_lint([FIXTURES / "r14_fail.py"])
    assert len(report.diagnostics) == 3
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, report.diagnostics)
    baseline = load_baseline(baseline_file)
    surviving, suppressed, stale = apply_baseline(
        report.diagnostics, baseline
    )
    assert surviving == [] and suppressed == 3 and stale == []
    # the tree improves: every entry has leftover capacity -> stale
    clean, kept, leftovers = apply_baseline([], baseline)
    assert clean == [] and kept == 0 and len(leftovers) == 3


def test_baseline_counts_absorb_exactly():
    from repro.lint.baseline import Baseline, apply_baseline
    from repro.lint.diagnostics import Diagnostic

    def diag(line):
        return Diagnostic(path="m.py", line=line, col=1, code="R14",
                          name="knob-parity", message="same finding")

    base = Baseline.from_diagnostics([diag(3), diag(9)])
    surviving, suppressed, stale = apply_baseline(
        [diag(4), diag(10), diag(30)], base
    )
    # two entries absorb two findings regardless of line; the third is new
    assert suppressed == 2 and len(surviving) == 1 and stale == []


def test_baseline_never_suppresses_parse_errors():
    from repro.lint.baseline import Baseline, apply_baseline
    from repro.lint.diagnostics import Diagnostic

    err = Diagnostic(path="m.py", line=1, col=1, code="E0",
                     name="parse-error", message="boom")
    base = Baseline.from_diagnostics([err])
    assert base.counts == {}
    surviving, suppressed, _ = apply_baseline([err], base)
    assert surviving == [err] and suppressed == 0


def test_cli_baseline_update_suppress_stale(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPROLINT_CACHE_DIR", str(tmp_path / "cache"))
    mod = tmp_path / "mod.py"
    mod.write_text((FIXTURES / "r14_fail.py").read_text())
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(mod), "--update-baseline", str(baseline)]) == 0
    capsys.readouterr()
    # recorded findings no longer fail the run
    assert main(["lint", str(mod), "--baseline", str(baseline)]) == 0
    env = json.loads(capsys.readouterr().out)
    assert env["data"]["suppressed"] == 3
    assert env["data"]["diagnostics"] == []
    # the tree improves; leftover entries are stale and fail the run
    mod.write_text((FIXTURES / "r14_pass.py").read_text())
    assert main(["lint", str(mod), "--baseline", str(baseline)]) == 1
    captured = capsys.readouterr()
    env = json.loads(captured.out)
    assert env["data"]["stale_baseline"]
    assert "stale baseline" in captured.err


def test_cli_baseline_with_absent_file_is_clean(capsys, tmp_path,
                                                monkeypatch):
    monkeypatch.setenv("REPROLINT_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["lint", "--baseline", str(tmp_path / "none.json"),
                 str(FIXTURES / "r2_pass.py")]) == 0


def test_committed_baseline_is_empty():
    """The repo ships an empty baseline: the tree is clean and any new
    finding fails CI rather than being absorbed silently."""
    doc = json.loads((REPO / ".reprolint-baseline.json").read_text())
    assert doc == {"entries": [], "version": 1}


# ----------------------------------------------------------------------
# call-graph-aware project cache
# ----------------------------------------------------------------------


def _chain_project(proj):
    """a -> b -> c call chain plus an unrelated module d."""
    proj.mkdir(parents=True, exist_ok=True)
    (proj / "a.py").write_text(
        "from __future__ import annotations\n"
        "\n"
        "from b import g\n"
        "\n"
        "\n"
        "def f():\n"
        "    return g()\n"
    )
    (proj / "b.py").write_text(
        "from __future__ import annotations\n"
        "\n"
        "from c import h\n"
        "\n"
        "\n"
        "def g():\n"
        "    return h()\n"
    )
    (proj / "c.py").write_text(
        "from __future__ import annotations\n"
        "\n"
        "\n"
        "def h():\n"
        "    return 1\n"
    )
    (proj / "d.py").write_text(
        "from __future__ import annotations\n"
        "\n"
        "\n"
        "def unrelated():\n"
        "    return 2\n"
    )
    return proj


def test_project_cache_invalidates_transitive_callers_only(tmp_path):
    """The acceptance behavior: a leaf edit re-analyzes only that module
    plus its transitive callers; unrelated modules replay warm."""
    proj = _chain_project(tmp_path / "proj")
    cache_dir = tmp_path / "cache"
    cold = run_lint([proj], cache=LintCache(cache_dir))
    assert len(cold.project_reanalyzed) == 4 and cold.project_cached == []
    warm = run_lint([proj], cache=LintCache(cache_dir))
    assert warm.project_reanalyzed == [] and len(warm.project_cached) == 4
    (proj / "c.py").write_text(
        "from __future__ import annotations\n"
        "\n"
        "\n"
        "def h():\n"
        "    return 3\n"
    )
    third = run_lint([proj], cache=LintCache(cache_dir))
    reanalyzed = {Path(p).name for p in third.project_reanalyzed}
    assert reanalyzed == {"a.py", "b.py", "c.py"}
    assert {Path(p).name for p in third.project_cached} == {"d.py"}


def test_project_cache_replays_diagnostics_with_traces(tmp_path):
    cache_dir = tmp_path / "cache"
    cold = run_lint([FIXTURES / "r13_fail"], cache=LintCache(cache_dir))
    warm = run_lint([FIXTURES / "r13_fail"], cache=LintCache(cache_dir))
    assert warm.project_reanalyzed == []
    assert [d.render() for d in warm.diagnostics] == [
        d.render() for d in cold.diagnostics
    ]
    [diag] = warm.diagnostics
    assert [s.function for s in diag.trace] == [
        s.function for s in cold.diagnostics[0].trace
    ]


def test_every_cli_handler_emits_exactly_one_envelope():
    """R11's meta-property over the real CLI: every cmd_* subcommand
    handler has CFG emission bounds of exactly (1, 1) — one envelope on
    every return path, including exception edges."""
    from repro.lint.engine import _process_file
    from repro.lint.project import ModuleInfo, ProjectModel
    from repro.lint.rules.envelope_conformance import handler_emission_bounds

    files = [REPO / "src" / "repro" / "cli.py"] + sorted(
        (REPO / "src" / "repro" / "service").glob("*.py")
    )
    results = [_process_file(f, None) for f in files]
    model = ProjectModel(
        [ModuleInfo.from_json(r.module) for r in results if r.module]
    )
    bounds = handler_emission_bounds(model)
    handlers = {f for f in bounds if f.startswith("repro.cli.cmd_")}
    assert len(handlers) >= 10  # every subcommand rides through here
    for fqid, b in sorted(bounds.items()):
        assert b == (1, 1), f"{fqid}: emission bounds {b}"
