"""reprolint: rule fixtures, pragma handling, engine mechanics, CLI.

Each rule R1-R5 is demonstrated by a failing and a passing fixture under
``tests/fixtures/lint/`` (never collected by pytest, never swept up by
directory-walk linting).  The capstone test asserts the real tree is
clean: ``repro lint src`` must exit 0.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import all_rules, get_rule, lint_file, lint_paths
from repro.lint.engine import iter_python_files

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "fixtures" / "lint"


def codes(diags):
    """The set of rule codes present in a diagnostic list."""
    return {d.code for d in diags}


# ----------------------------------------------------------------------
# per-rule fixtures
# ----------------------------------------------------------------------


@pytest.mark.parametrize("code", ["R1", "R2", "R3", "R4", "R5"])
def test_failing_fixture_flags_rule(code):
    name = f"test_{code.lower()}_fail.py" if code == "R5" else f"{code.lower()}_fail.py"
    diags = lint_file(FIXTURES / name)
    assert code in codes(diags), f"{name} should trigger {code}"


@pytest.mark.parametrize("code", ["R1", "R2", "R3", "R4", "R5"])
def test_passing_fixture_is_clean(code):
    name = f"test_{code.lower()}_pass.py" if code == "R5" else f"{code.lower()}_pass.py"
    diags = lint_file(FIXTURES / name)
    assert diags == [], [d.render() for d in diags]


def test_r1_counts_every_global_rng_use():
    diags = lint_file(FIXTURES / "r1_fail.py", [get_rule("R1")])
    messages = " ".join(d.message for d in diags)
    assert "np.random.seed" in messages
    assert "np.random.uniform" in messages
    assert "stdlib 'random'" in messages
    assert "without an explicit seed=" in messages


def test_r1_wall_clock_only_in_hot_paths(tmp_path):
    src = "import time\n\ndef f():\n    return time.time()\n"
    outside = tmp_path / "analysis_helper.py"
    outside.write_text(src)
    assert lint_file(outside, [get_rule("R1")]) == []
    diags = lint_file(FIXTURES / "simulation" / "r1_wallclock_fail.py",
                      [get_rule("R1")])
    assert len(diags) == 1 and "wall-clock" in diags[0].message


def test_r2_suggests_units_constants():
    diags = lint_file(FIXTURES / "r2_fail.py", [get_rule("R2")])
    messages = " ".join(d.message for d in diags)
    assert "write DAY" in messages
    assert "HOUR" in messages
    assert "MINUTE" in messages
    assert "timeout_ms" in messages  # the naming-convention arm


def test_r3_exempts_tolerance_helpers(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "def assert_approx_zero(x):\n"
        "    return x == 0.0\n"
        "def outside(x):\n"
        "    return x == 0.0\n"
    )
    diags = lint_file(f, [get_rule("R3")])
    assert len(diags) == 1
    assert diags[0].line == 4


def test_r4_flags_each_hygiene_hazard():
    diags = lint_file(FIXTURES / "r4_fail.py", [get_rule("R4")])
    messages = [d.message for d in diags]
    assert any("mutable default" in m for m in messages)
    assert any("bare 'except:'" in m for m in messages)
    assert any("swallows the error" in m for m in messages)
    assert len(diags) == 3


def test_r5_respects_class_and_module_markers(tmp_path):
    body = (
        "    for i in range(500):\n"
        "        simulate_job(1, 2, 3)\n"
    )
    marked_module = tmp_path / "test_marked_mod.py"
    marked_module.write_text(
        "import pytest\nfrom repro.simulation import simulate_job\n"
        "pytestmark = pytest.mark.slow\n"
        f"def test_heavy():\n{body}"
    )
    assert lint_file(marked_module, [get_rule("R5")]) == []
    marked_class = tmp_path / "test_marked_cls.py"
    marked_class.write_text(
        "import pytest\nfrom repro.simulation import simulate_job\n"
        "@pytest.mark.slow\nclass TestHeavy:\n"
        f"    def test_heavy(self):\n    {body.replace(chr(10), chr(10) + '    ')}\n"
    )
    assert lint_file(marked_class, [get_rule("R5")]) == []


# ----------------------------------------------------------------------
# pragmas
# ----------------------------------------------------------------------


def test_pragma_silences_named_rule_on_that_line_only(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "def a(x):\n"
        "    return x == 1.5  # reprolint: disable=R3\n"
        "def b(x):\n"
        "    return x == 1.5\n"
    )
    diags = lint_file(f, [get_rule("R3")])
    assert [d.line for d in diags] == [4]


def test_pragma_accepts_rule_name_and_all(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "def a(x):\n"
        "    return x == 1.5  # reprolint: disable=float-eq\n"
        "def b(x):\n"
        "    return x == 1.5  # reprolint: disable=all\n"
    )
    assert lint_file(f, [get_rule("R3")]) == []


def test_pragma_for_other_rule_does_not_silence(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text("def a(x):\n    return x == 1.5  # reprolint: disable=R2\n")
    assert len(lint_file(f, [get_rule("R3")])) == 1


# ----------------------------------------------------------------------
# engine mechanics
# ----------------------------------------------------------------------


def test_registry_exposes_five_rules():
    assert [r.code for r in all_rules()] == ["R1", "R2", "R3", "R4", "R5"]
    assert get_rule("unit-safety").code == "R2"
    with pytest.raises(KeyError):
        get_rule("R99")


def test_directory_walk_skips_fixture_violations():
    walked = list(iter_python_files([REPO / "tests"]))
    assert all("fixtures" not in f.parts for f in walked)
    assert any(f.name == "test_lint.py" for f in walked)


def test_explicit_fixture_path_is_still_linted():
    assert lint_paths([FIXTURES / "r4_fail.py"]) != []


def test_parse_error_is_reported_not_raised(tmp_path):
    f = tmp_path / "broken.py"
    f.write_text("def broken(:\n")
    diags = lint_file(f)
    assert len(diags) == 1 and diags[0].code == "E0"


def test_select_restricts_rules():
    diags = lint_paths([FIXTURES / "r4_fail.py"], select=["R3"])
    assert diags == []


# ----------------------------------------------------------------------
# CLI + clean tree
# ----------------------------------------------------------------------


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("R1", "R2", "R3", "R4", "R5"):
        assert code in out


def test_cli_exit_codes(capsys):
    assert main(["lint", str(FIXTURES / "r4_fail.py")]) == 1
    assert "R4[api-hygiene]" in capsys.readouterr().out
    assert main(["lint", str(FIXTURES / "r4_pass.py")]) == 0
    assert main(["lint", "--select", "bogus", "src"]) == 2
    assert main(["lint", str(REPO / "no-such-dir")]) == 2


def test_repro_lint_src_is_clean():
    """The acceptance gate: the real tree passes its own linter."""
    diags = lint_paths([REPO / "src"])
    assert diags == [], [d.render() for d in diags]


def test_repro_lint_tests_discipline_rules_are_clean():
    """tests/ holds the R1/R4/R5 line (R2/R3 literal rules are relaxed
    for test code — exact asserts on constructed values are idiomatic)."""
    diags = lint_paths([REPO / "tests"], select=["R1", "R4", "R5"])
    assert diags == [], [d.render() for d in diags]
