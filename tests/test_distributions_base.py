"""Interface-level properties every failure distribution must satisfy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.units import DAY

from .conftest import all_distributions, dist_id

DISTS = all_distributions()


@pytest.mark.parametrize("dist", DISTS, ids=dist_id)
class TestSurvivalFunction:
    def test_sf_at_zero_is_one(self, dist):
        assert dist.sf(0.0) == pytest.approx(1.0)

    def test_sf_is_decreasing(self, dist):
        ts = np.linspace(0.0, 5 * DAY, 200)
        sf = np.atleast_1d(dist.sf(ts))
        assert np.all(np.diff(sf) <= 1e-12)

    def test_sf_bounded(self, dist):
        ts = np.geomspace(1.0, 100 * DAY, 50)
        sf = np.atleast_1d(dist.sf(ts))
        assert np.all(sf >= 0.0) and np.all(sf <= 1.0)

    def test_cdf_complements_sf(self, dist):
        ts = np.geomspace(10.0, 10 * DAY, 20)
        assert np.allclose(dist.cdf(ts) + dist.sf(ts), 1.0)

    def test_logsf_consistent_with_sf(self, dist):
        ts = np.geomspace(10.0, 3 * DAY, 20)
        sf = np.atleast_1d(dist.sf(ts))
        logsf = np.atleast_1d(dist.logsf(ts))
        mask = sf > 1e-12
        assert np.allclose(np.exp(logsf[mask]), sf[mask], rtol=1e-8)

    def test_sf_negative_time_is_one(self, dist):
        assert dist.sf(-5.0) == pytest.approx(1.0)


@pytest.mark.parametrize("dist", DISTS, ids=dist_id)
class TestConditionalSurvival:
    def test_psuc_is_probability(self, dist):
        for tau in (0.0, DAY / 4, 2 * DAY):
            p = float(dist.psuc(DAY / 2, tau))
            assert 0.0 <= p <= 1.0

    def test_psuc_zero_window_is_one(self, dist):
        assert float(dist.psuc(0.0, DAY / 3)) == pytest.approx(1.0)

    def test_psuc_decreasing_in_window(self, dist):
        xs = np.linspace(0.0, 2 * DAY, 50)
        p = np.atleast_1d(dist.psuc(xs, DAY / 5))
        assert np.all(np.diff(p) <= 1e-12)

    def test_psuc_matches_sf_ratio(self, dist):
        tau, x = DAY / 3, DAY / 2
        expected = dist.sf(tau + x) / dist.sf(tau)
        assert float(dist.psuc(x, tau)) == pytest.approx(float(expected), rel=1e-9)


@pytest.mark.parametrize("dist", DISTS, ids=dist_id)
class TestMoments:
    def test_mean_positive(self, dist):
        assert dist.mean() > 0

    def test_sample_mean_close(self, dist):
        rng = np.random.default_rng(0)
        xs = np.asarray(dist.sample(rng, size=40_000), dtype=float)
        assert np.all(xs >= 0)
        # heavy tails: generous tolerance
        assert xs.mean() == pytest.approx(dist.mean(), rel=0.15)

    def test_quantile_inverts_cdf(self, dist):
        for q in (0.1, 0.5, 0.9):
            t = float(np.asarray(dist.quantile(q)).ravel()[0])
            # discrete distributions overshoot slightly; allow slack
            assert dist.cdf(t) == pytest.approx(q, abs=0.02)

    def test_quantile_monotone(self, dist):
        qs = np.array([0.05, 0.25, 0.5, 0.75, 0.95])
        ts = np.asarray(dist.quantile(qs), dtype=float)
        assert np.all(np.diff(ts) >= 0)


@pytest.mark.parametrize("dist", DISTS, ids=dist_id)
class TestHazardAndLoss:
    def test_hazard_nonnegative(self, dist):
        ts = np.geomspace(60.0, 5 * DAY, 30)
        h = np.atleast_1d(dist.hazard(ts))
        assert np.all(h >= 0)

    def test_expected_tlost_bounds(self, dist):
        x = DAY / 2
        for tau in (0.0, DAY / 4):
            tl = dist.expected_tlost(x, tau)
            assert 0.0 <= tl <= x

    def test_expected_tlost_zero_window(self, dist):
        assert dist.expected_tlost(0.0, 0.0) == 0.0

    def test_sample_conditional_nonnegative(self, dist):
        rng = np.random.default_rng(3)
        xs = np.asarray(dist.sample_conditional(rng, DAY / 4, size=500), dtype=float)
        assert np.all(xs >= -1e-9)


@pytest.mark.parametrize("dist", DISTS, ids=dist_id)
def test_conditional_sampling_consistent_with_psuc(dist):
    """Empirical survival of conditional samples matches Psuc."""
    rng = np.random.default_rng(11)
    tau = DAY / 5
    xs = np.asarray(dist.sample_conditional(rng, tau, size=20_000), dtype=float)
    x_probe = DAY / 2
    emp = float(np.mean(xs >= x_probe))
    assert emp == pytest.approx(float(dist.psuc(x_probe, tau)), abs=0.02)
