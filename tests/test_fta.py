"""FTA-style log persistence roundtrip."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.fta import log_to_intervals, read_fta, write_fta
from repro.traces.logs import SyntheticLog, synthesize_lanl_like_log


@pytest.fixture
def small_log():
    return SyntheticLog(
        durations=np.array([100.0, 200.0, 50.0, 300.0, 75.0]),
        n_nodes=2,
        procs_per_node=4,
        name="mini",
    )


class TestIntervals:
    def test_round_robin_layout(self, small_log):
        rows = log_to_intervals(small_log)
        assert len(rows) == 5
        # node 0 gets durations 0, 2, 4 stacked back-to-back
        node0 = [(s, e) for n, s, e in rows if n == 0]
        assert node0[0] == (0.0, 100.0)
        assert node0[1] == (100.0, 150.0)
        assert node0[2] == (150.0, 225.0)

    def test_lengths_preserved(self, small_log):
        rows = log_to_intervals(small_log)
        lengths = sorted(e - s for _, s, e in rows)
        assert np.allclose(lengths, sorted(small_log.durations))


class TestRoundtrip:
    def test_roundtrip(self, tmp_path, small_log):
        path = tmp_path / "mini.fta"
        write_fta(small_log, path)
        loaded = read_fta(path)
        assert loaded.name == "mini"
        assert loaded.n_nodes == 2
        assert loaded.procs_per_node == 4
        assert np.allclose(sorted(loaded.durations), sorted(small_log.durations))

    def test_roundtrip_synthetic_lanl(self, tmp_path):
        log = synthesize_lanl_like_log(cluster=19, years=0.3, seed=1)
        path = tmp_path / "lanl.fta"
        write_fta(log, path)
        loaded = read_fta(path)
        assert loaded.durations.size == log.durations.size
        assert np.allclose(
            np.sort(loaded.durations), np.sort(log.durations), rtol=1e-4
        )

    def test_empirical_from_reloaded_log(self, tmp_path, small_log):
        from repro.traces.logs import empirical_from_log

        path = tmp_path / "mini.fta"
        write_fta(small_log, path)
        d = empirical_from_log(read_fta(path))
        assert d.sf(100.0) == pytest.approx(3 / 5)


class TestValidation:
    def test_rejects_wrong_header(self, tmp_path):
        p = tmp_path / "bad.fta"
        p.write_text("not an fta file\n")
        with pytest.raises(ValueError):
            read_fta(p)

    def test_rejects_malformed_row(self, tmp_path):
        p = tmp_path / "bad.fta"
        p.write_text("# repro-fta v1\n# nodes: 1\n0\t1.0\n")
        with pytest.raises(ValueError):
            read_fta(p)

    def test_rejects_negative_interval(self, tmp_path):
        p = tmp_path / "bad.fta"
        p.write_text("# repro-fta v1\n# nodes: 1\n0\t5.0\t1.0\n")
        with pytest.raises(ValueError):
            read_fta(p)

    def test_rejects_empty(self, tmp_path):
        p = tmp_path / "bad.fta"
        p.write_text("# repro-fta v1\n# nodes: 1\n")
        with pytest.raises(ValueError):
            read_fta(p)
