"""Waste-breakdown experiment driver."""

from __future__ import annotations

import pytest

from repro.experiments import SMOKE
from repro.experiments.waste import run_waste_breakdown


@pytest.fixture(scope="module")
def rows():
    return run_waste_breakdown(scale=SMOKE)


def test_three_policies(rows):
    assert [r.policy for r in rows] == ["Young", "OptExp", "DPNextFailure"]


def test_breakdown_sums_to_makespan(rows):
    for r in rows:
        f = r.as_fractions()
        assert sum(f.values()) == pytest.approx(1.0)
        assert all(v >= 0 for v in f.values())


def test_work_is_largest_component(rows):
    for r in rows:
        assert r.work > r.checkpointing
        assert r.work > r.lost + r.outage
