"""Scenario runner + degradation metric + table rendering."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import degradation_from_best, format_degradation_table, format_series
from repro.analysis.degradation import DegradationStats
from repro.cluster.models import ConstantOverhead, Platform
from repro.distributions import Exponential
from repro.policies import OptExp, Young
from repro.simulation.runner import LOWER_BOUND, PERIOD_LB, run_scenarios
from repro.units import DAY, HOUR


@pytest.fixture(scope="module")
def scenario():
    platform = Platform(
        p=4,
        dist=Exponential.from_mtbf(12 * HOUR),
        downtime=60.0,
        overhead=ConstantOverhead(600.0),
    )
    return run_scenarios(
        [Young(), OptExp()],
        platform,
        work_time=DAY,
        n_traces=5,
        horizon=200 * DAY,
        seed=1,
        period_lb_factors=[0.5, 1.0, 2.0],
    )


class TestRunner:
    def test_all_policies_present(self, scenario):
        assert set(scenario.makespans) == {"Young", "OptExp", LOWER_BOUND, PERIOD_LB}

    def test_shapes(self, scenario):
        for spans in scenario.makespans.values():
            assert spans.shape == (5,)
            assert np.all(np.isfinite(spans))

    def test_lower_bound_is_lowest(self, scenario):
        lb = scenario.makespans[LOWER_BOUND]
        for name, spans in scenario.makespans.items():
            if name != LOWER_BOUND:
                assert np.all(lb <= spans + 1e-6)

    def test_makespan_exceeds_work(self, scenario):
        for name, spans in scenario.makespans.items():
            if name != LOWER_BOUND:
                assert np.all(spans >= DAY)

    def test_reproducible(self):
        platform = Platform(
            p=2,
            dist=Exponential.from_mtbf(12 * HOUR),
            downtime=60.0,
            overhead=ConstantOverhead(600.0),
        )
        kw = dict(
            work_time=DAY,
            n_traces=3,
            horizon=100 * DAY,
            seed=9,
            include_period_lb=False,
        )
        a = run_scenarios([Young()], platform, **kw)
        b = run_scenarios([Young()], platform, **kw)
        assert np.array_equal(a.makespans["Young"], b.makespans["Young"])

    def test_details_recorded(self, scenario):
        assert len(scenario.details["Young"]) == 5
        assert all(d.completed for d in scenario.details["Young"])

    def test_node_granularity_traces(self):
        """With 4-processor nodes the runner generates node-level traces
        (num_nodes units) and the platform MTBF accounts for it."""
        platform = Platform(
            p=16,
            dist=Exponential.from_mtbf(10 * DAY),
            downtime=60.0,
            overhead=ConstantOverhead(600.0),
            procs_per_node=4,
        )
        assert platform.num_nodes == 4
        res = run_scenarios(
            [Young()],
            platform,
            work_time=DAY,
            n_traces=2,
            horizon=100 * DAY,
            seed=3,
            include_period_lb=False,
        )
        assert np.all(np.isfinite(res.makespans["Young"]))


class TestDegradation:
    def test_basic_metric(self):
        spans = {
            "A": np.array([100.0, 200.0]),
            "B": np.array([110.0, 180.0]),
            LOWER_BOUND: np.array([90.0, 150.0]),
        }
        stats = degradation_from_best(spans)
        assert stats["A"].avg == pytest.approx((1.0 + 200 / 180) / 2)
        assert stats["B"].avg == pytest.approx((1.1 + 1.0) / 2)
        assert stats[LOWER_BOUND].avg < 1.0

    def test_nan_handling(self):
        spans = {
            "A": np.array([100.0, np.nan]),
            "B": np.array([120.0, 100.0]),
        }
        stats = degradation_from_best(spans)
        assert stats["A"].n_valid == 1
        assert stats["A"].avg == pytest.approx(1.0)
        assert stats["B"].n_valid == 2

    def test_all_nan_policy(self):
        spans = {
            "A": np.array([np.nan, np.nan]),
            "B": np.array([120.0, 100.0]),
        }
        stats = degradation_from_best(spans)
        assert math.isnan(stats["A"].avg)
        assert stats["A"].n_valid == 0

    def test_best_policy_degradation_is_one_when_always_best(self):
        spans = {
            "best": np.array([100.0, 100.0]),
            "worse": np.array([150.0, 130.0]),
        }
        stats = degradation_from_best(spans)
        assert stats["best"].avg == pytest.approx(1.0)
        assert stats["best"].std == pytest.approx(0.0)

    def test_requires_contenders(self):
        with pytest.raises(ValueError):
            degradation_from_best({LOWER_BOUND: np.array([1.0])})

    def test_scenario_degradations(self, scenario):
        stats = degradation_from_best(scenario.makespans)
        assert stats[LOWER_BOUND].avg <= 1.0 + 1e-9
        for name in ("Young", "OptExp", PERIOD_LB):
            assert stats[name].avg >= 1.0 - 1e-9


class TestFormatting:
    def test_degradation_table(self):
        stats = {
            "Young": DegradationStats(1.0421, 0.003, 10),
            "Liu": DegradationStats(math.nan, math.nan, 0),
        }
        text = format_degradation_table(stats, title="Table X")
        assert "Table X" in text
        assert "1.04210" in text
        assert "--" in text  # NaN rendering

    def test_series(self):
        text = format_series(
            "p", [128, 256], {"Young": [1.01, 1.02], "DPNextFailure": [1.0, 1.0]}
        )
        assert "p" in text and "Young" in text
        assert "256" in text
        assert "1.0200" in text
