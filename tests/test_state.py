"""Platform survival state: product structure, compression, lattice."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import PlatformState, SurvivalTable
from repro.distributions import Exponential, Weibull
from repro.units import DAY, HOUR, YEAR


@pytest.fixture
def weibull():
    return Weibull.from_mtbf(125 * YEAR, 0.7)


class TestPlatformState:
    def test_log_psuc_is_sum_over_processors(self, weibull):
        taus = np.array([HOUR, DAY, 10 * DAY])
        st = PlatformState(taus, weibull)
        x = 4 * HOUR
        expected = sum(float(weibull.log_psuc(x, t)) for t in taus)
        assert st.log_psuc(x) == pytest.approx(expected, rel=1e-12)

    def test_psuc_exponential_matches_macro_processor(self):
        lam = 1 / DAY
        d = Exponential(lam)
        p = 50
        st = PlatformState(np.full(p, 123.0), d)
        x = HOUR
        assert st.psuc(x) == pytest.approx(np.exp(-p * lam * x), rel=1e-10)

    def test_advance_shifts_ages(self, weibull):
        st = PlatformState([DAY, 2 * DAY], weibull)
        adv = st.advanced(HOUR)
        assert np.allclose(adv.taus, [DAY + HOUR, 2 * DAY + HOUR])

    def test_advance_equivalent_to_argument(self, weibull):
        st = PlatformState([DAY, 2 * DAY], weibull)
        assert st.log_psuc(HOUR, advance=DAY) == pytest.approx(
            st.advanced(DAY).log_psuc(HOUR), rel=1e-12
        )

    def test_vector_x(self, weibull):
        st = PlatformState([DAY], weibull)
        xs = np.array([HOUR, 2 * HOUR])
        out = st.log_psuc(xs)
        assert out.shape == (2,)
        assert out[1] < out[0]

    def test_rejects_negative_ages(self, weibull):
        with pytest.raises(ValueError):
            PlatformState([-1.0], weibull)

    def test_num_processors_counts_weights(self, weibull):
        st = PlatformState([1.0, 2.0], weibull, weights=np.array([3.0, 7.0]))
        assert st.num_processors == 10


class TestCompression:
    def test_small_state_returned_unchanged(self, weibull):
        st = PlatformState(np.arange(1.0, 50.0), weibull)
        c = st.compress(nexact=10, napprox=100)
        assert c.taus.size == 49

    def test_compressed_counts_preserved(self, weibull):
        rng = np.random.default_rng(0)
        taus = rng.uniform(0, 2 * YEAR, size=2000)
        c = PlatformState(taus, weibull).compress(nexact=10, napprox=50)
        assert c.num_processors == 2000
        assert c.taus.size <= 10 + 50

    def test_exact_smallest_kept(self, weibull):
        rng = np.random.default_rng(1)
        taus = rng.uniform(0, YEAR, size=500)
        c = PlatformState(taus, weibull).compress(nexact=5, napprox=20)
        smallest = np.sort(taus)[:5]
        assert np.allclose(np.sort(c.taus)[:5], smallest)

    def test_section33_accuracy(self, weibull):
        """The paper reports < 0.2% relative error on the success
        probability of an MTBF-long chunk for 45208 processors; check
        the same order of accuracy at a few thousand."""
        rng = np.random.default_rng(2)
        p = 4096
        taus = rng.uniform(0, 2 * YEAR, size=p)
        exact = PlatformState(taus, weibull)
        approx = exact.compress(10, 100)
        platform_mtbf = 125 * YEAR / p
        for frac in (1.0, 0.5, 0.125):
            pe = float(exact.psuc(frac * platform_mtbf))
            pa = float(approx.psuc(frac * platform_mtbf))
            assert abs(pa - pe) / pe < 0.005

    def test_compress_twice_rejected(self, weibull):
        rng = np.random.default_rng(3)
        st = PlatformState(rng.uniform(0, YEAR, 500), weibull).compress(5, 20)
        with pytest.raises(ValueError):
            st.compress(5, 20)

    def test_identical_ages_collapse(self, weibull):
        st = PlatformState(np.full(1000, DAY), weibull).compress(10, 100)
        assert st.num_processors == 1000
        assert st.taus.size <= 11


class TestSurvivalTable:
    def test_lattice_matches_direct_evaluation(self, weibull):
        st = PlatformState([DAY, 3 * DAY, YEAR], weibull)
        u, c = 500.0, 600.0
        table = SurvivalTable.build(st, u, c, na=10, nb=5)
        for a in (0, 3, 10):
            for b in (0, 2, 5):
                direct = st.log_psuc(a * u + b * c)
                assert table.m2[a, b] - table.m2[0, 0] == pytest.approx(
                    direct, rel=1e-9, abs=1e-12
                )

    def test_log_psuc_lookup(self, weibull):
        st = PlatformState([DAY], weibull)
        u, c = 500.0, 600.0
        table = SurvivalTable.build(st, u, c, na=8, nb=8)
        # survive i=2 quanta + 1 checkpoint from advance (a=1, b=1)
        expected = st.log_psuc(2 * u + c, advance=u + c)
        assert table.log_psuc(1, 1, 2) == pytest.approx(expected, rel=1e-10)

    def test_floor_prevents_nan(self):
        """Ages beyond an Empirical support give -inf log-survival; the
        floor keeps DP arithmetic finite."""
        from repro.distributions import Empirical

        d = Empirical([10.0, 20.0, 30.0])
        st = PlatformState([5.0], d)
        table = SurvivalTable.build(st, 10.0, 10.0, na=5, nb=5)
        assert np.all(np.isfinite(table.m2))

    def test_rejects_bad_args(self, weibull):
        st = PlatformState([0.0], weibull)
        with pytest.raises(ValueError):
            SurvivalTable.build(st, -1.0, 600.0, 5, 5)
