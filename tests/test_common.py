"""Experiment plumbing: distributions-by-name, policy sets, NaN paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.models import ConstantOverhead, Platform
from repro.distributions import Exponential, Weibull
from repro.experiments import SMOKE
from repro.experiments.common import (
    default_parallel_policies,
    logbased_policies,
    make_distribution,
    single_proc_policies,
)
from repro.simulation.runner import run_scenarios
from repro.units import DAY, YEAR


class TestMakeDistribution:
    def test_exponential(self):
        d = make_distribution("exponential", DAY)
        assert isinstance(d, Exponential)
        assert d.mean() == pytest.approx(DAY)

    def test_weibull(self):
        d = make_distribution("weibull", DAY, 0.5)
        assert isinstance(d, Weibull)
        assert d.k == 0.5
        assert d.mean() == pytest.approx(DAY)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_distribution("zipf", DAY)


class TestPolicySets:
    def test_parallel_set_matches_paper(self):
        names = {p.name for p in default_parallel_policies(SMOKE, True)}
        assert names == {
            "Young",
            "DalyLow",
            "DalyHigh",
            "Liu",
            "Bouguerra",
            "OptExp",
            "DPNextFailure",
            "DPMakespan",
        }

    def test_weibull_set_drops_dpmakespan(self):
        names = {p.name for p in default_parallel_policies(SMOKE, False)}
        assert "DPMakespan" not in names

    def test_logbased_set(self):
        names = {p.name for p in logbased_policies(SMOKE)}
        assert names == {"Young", "DalyLow", "DalyHigh", "OptExp", "DPNextFailure"}

    def test_single_proc_has_all_ten_minus_bounds(self):
        assert len(single_proc_policies(SMOKE)) == 8


class TestInfeasiblePolicyPath:
    def test_infeasible_policy_records_nan(self):
        """An infeasible policy must record NaN makespans, not crash the
        scenario (the paper's Liu curves are incomplete this way)."""
        from repro.policies import Young
        from repro.policies.base import Policy, PolicyInfeasibleError

        class AlwaysInfeasible(Policy):
            name = "Broken"

            def setup(self, ctx):
                raise PolicyInfeasibleError("cannot schedule")

            def next_chunk(self, remaining, ctx):  # pragma: no cover
                raise AssertionError

        dist = Weibull.from_mtbf(30 * DAY, 0.7)
        platform = Platform(
            p=4, dist=dist, downtime=60.0, overhead=ConstantOverhead(600.0)
        )
        res = run_scenarios(
            [AlwaysInfeasible(), Young()],
            platform,
            work_time=2 * DAY,
            n_traces=2,
            horizon=400 * DAY,
            seed=0,
            include_period_lb=False,
            include_lower_bound=False,
        )
        assert np.all(np.isnan(res.makespans["Broken"]))
        assert np.all(np.isfinite(res.makespans["Young"]))
