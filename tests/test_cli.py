"""CLI: argument parsing and end-to-end subcommands.

Every subcommand now prints exactly one JSON envelope on stdout (human
text goes to stderr), so these tests parse stdout instead of grepping
it.  The envelope schema itself is covered by ``test_json_contract``.
"""

from __future__ import annotations

import argparse
import json

import pytest

from repro.cli import build_parser, main, parse_duration
from repro.units import DAY, HOUR, MINUTE, WEEK, YEAR


def _envelope(capsys):
    """Parse the single JSON envelope a subcommand printed."""
    captured = capsys.readouterr()
    return json.loads(captured.out), captured.err


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("600", 600.0),
            ("600s", 600.0),
            ("5m", 5 * MINUTE),
            ("1.5h", 1.5 * HOUR),
            ("20d", 20 * DAY),
            ("2w", 2 * WEEK),
            ("125y", 125 * YEAR),
            (" 1d ", DAY),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_duration(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", ["", "abc", "-5d", "0", "1q"])
    def test_invalid(self, text):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_duration(text)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.mtbf == DAY
        assert args.work == 20 * DAY

    def test_run_flags_default_to_none(self):
        # spec-based subcommands must distinguish "flag given" from
        # "default" so --spec files are not clobbered by defaults
        args = build_parser().parse_args(["run"])
        assert args.mtbf is None
        assert args.work is None
        assert args.policies is None

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestEndToEnd:
    def test_plan(self, capsys):
        assert main(["plan", "--mtbf", "1d", "--work", "20d"]) == 0
        env, _ = _envelope(capsys)
        assert env["ok"] is True
        assert env["data"]["num_chunks"] == 177

    def test_mtbf(self, capsys):
        assert main(["mtbf", "--p", "1024"]) == 0
        env, err = _envelope(capsys)
        data = env["data"]
        assert data["platform_mtbf_single_rejuvenation"] > \
            data["platform_mtbf_all_rejuvenation"]
        assert "single-rejuvenation" in err

    def test_simulate_periodic(self, capsys):
        rc = main(
            [
                "simulate",
                "--policy",
                "period:2h",
                "--traces",
                "2",
                "--work",
                "2d",
                "--mtbf",
                "1d",
                "--dist",
                "exponential",
            ]
        )
        assert rc == 0
        env, err = _envelope(capsys)
        assert env["data"]["summary"]["n_traces"] == 2
        assert len(env["data"]["traces"]) == 2
        assert "mean makespan" in err

    def test_simulate_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--policy", "nope"])

    def test_experiment_fig1_chart(self, capsys):
        assert main(["experiment", "fig1", "--chart"]) == 0
        env, err = _envelope(capsys)
        assert "with rejuvenation" in env["data"]["series"]
        assert "with rejuvenation" in err

    def test_experiment_table4_smoke(self, capsys):
        assert main(["experiment", "table4", "--scale", "smoke"]) == 0
        env, err = _envelope(capsys)
        assert "DPNextFailure" in env["data"]["table"]
        assert "DPNextFailure" in err


class TestScenarioSubcommands:
    _ARGS = ["--work", "2h", "--mtbf", "4h", "--traces", "2",
             "--policies", "young,dalylow"]

    def test_run(self, capsys):
        assert main(["run", *self._ARGS]) == 0
        env, _ = _envelope(capsys)
        data = env["data"]
        assert len(data["signature"]) == 40
        assert set(data["result"]["makespans"]) == {
            "Young", "DalyLow", "LowerBound"
        }
        assert data["spec"]["policies"] == ["young", "dalylow"]

    def test_run_signature_stable_across_spellings(self, capsys):
        # period:2h and period:7200 canonicalize to one signature
        assert main(["run", "--work", "2h", "--mtbf", "4h", "--traces", "1",
                     "--policies", "period:2h"]) == 0
        sig_a = _envelope(capsys)[0]["data"]["signature"]
        assert main(["run", "--work", "2h", "--mtbf", "4h", "--traces", "1",
                     "--policies", "period:7200"]) == 0
        sig_b = _envelope(capsys)[0]["data"]["signature"]
        assert sig_a == sig_b

    def test_run_spec_file_with_overrides(self, capsys, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "work": 7200.0, "mtbf": 14400.0, "n_traces": 2,
            "policies": ["young"],
        }))
        assert main(["run", "--spec", str(spec),
                     "--override", "n_traces=1"]) == 0
        env, _ = _envelope(capsys)
        assert env["data"]["spec"]["n_traces"] == 1
        assert env["data"]["spec"]["work"] == 7200.0

    def test_run_bad_spec_is_error_envelope(self, capsys):
        assert main(["run", "--override", "mtbf=-1"]) == 2
        env, _ = _envelope(capsys)
        assert env["ok"] is False
        assert env["error"]["type"] == "SpecError"

    def test_compare(self, capsys):
        assert main(["compare", *self._ARGS]) == 0
        env, err = _envelope(capsys)
        data = env["data"]
        assert data["best"] in ("Young", "DalyLow")
        assert set(data["policies"]) == {"Young", "DalyLow", "LowerBound"}
        for entry in data["policies"].values():
            assert "mean_makespan" in entry
            assert "degradation" in entry
        assert "degradation from best" in err

    def test_benchmark(self, capsys):
        assert main(["benchmark", *self._ARGS]) == 0
        env, _ = _envelope(capsys)
        assert env["data"]["cold_seconds"] >= 0
        assert env["data"]["warm_seconds"] >= 0
