"""CLI: argument parsing and end-to-end subcommands."""

from __future__ import annotations

import argparse

import pytest

from repro.cli import build_parser, main, parse_duration
from repro.units import DAY, HOUR, MINUTE, WEEK, YEAR


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("600", 600.0),
            ("600s", 600.0),
            ("5m", 5 * MINUTE),
            ("1.5h", 1.5 * HOUR),
            ("20d", 20 * DAY),
            ("2w", 2 * WEEK),
            ("125y", 125 * YEAR),
            (" 1d ", DAY),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_duration(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", ["", "abc", "-5d", "0", "1q"])
    def test_invalid(self, text):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_duration(text)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.mtbf == DAY
        assert args.work == 20 * DAY

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestEndToEnd:
    def test_plan(self, capsys):
        assert main(["plan", "--mtbf", "1d", "--work", "20d"]) == 0
        out = capsys.readouterr().out
        assert "optimal chunks   : 177" in out

    def test_mtbf(self, capsys):
        assert main(["mtbf", "--p", "1024"]) == 0
        out = capsys.readouterr().out
        assert "single-rejuvenation" in out

    def test_simulate_periodic(self, capsys):
        rc = main(
            [
                "simulate",
                "--policy",
                "period:2h",
                "--traces",
                "2",
                "--work",
                "2d",
                "--mtbf",
                "1d",
                "--dist",
                "exponential",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean makespan" in out

    def test_simulate_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--policy", "nope"])

    def test_experiment_fig1_chart(self, capsys):
        assert main(["experiment", "fig1", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "with rejuvenation" in out

    def test_experiment_table4_smoke(self, capsys):
        assert main(["experiment", "table4", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "DPNextFailure" in out
