"""MinOfIID: the all-rejuvenation platform failure law."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Exponential, Weibull
from repro.distributions.minimum import MinOfIID
from repro.units import DAY


class TestAgainstClosedForms:
    def test_exponential_min_is_scaled_exponential(self):
        base = Exponential(1.0 / DAY)
        m = MinOfIID(base, 10)
        ref = Exponential(10.0 / DAY)
        ts = np.geomspace(10.0, DAY, 20)
        assert np.allclose(m.sf(ts), ref.sf(ts), rtol=1e-12)
        assert m.mean() == pytest.approx(DAY / 10, rel=1e-6)

    def test_weibull_min_is_scaled_weibull(self):
        base = Weibull.from_mtbf(DAY, 0.7)
        p = 16
        m = MinOfIID(base, p)
        ref = base.rejuvenated_platform(p)
        ts = np.geomspace(1.0, DAY, 20)
        assert np.allclose(m.sf(ts), ref.sf(ts), rtol=1e-10)
        assert m.mean() == pytest.approx(ref.mean(), rel=1e-3)


class TestProperties:
    def test_quantile_roundtrip(self):
        m = MinOfIID(Weibull.from_mtbf(DAY, 0.7), 8)
        for q in (0.1, 0.5, 0.9):
            assert m.cdf(m.quantile(q)) == pytest.approx(q, rel=1e-8)

    def test_hazard_scales_linearly(self):
        base = Weibull.from_mtbf(DAY, 0.7)
        m = MinOfIID(base, 5)
        ts = np.geomspace(60.0, DAY, 10)
        assert np.allclose(m.hazard(ts), 5 * base.hazard(ts))

    def test_sampling_mean(self):
        m = MinOfIID(Weibull.from_mtbf(DAY, 0.7), 4)
        rng = np.random.default_rng(0)
        xs = m.sample(rng, size=20_000)
        assert np.mean(xs) == pytest.approx(m.mean(), rel=0.05)

    def test_pdf_integrates_to_one(self):
        m = MinOfIID(Weibull.from_mtbf(DAY, 1.3), 6)
        ts = np.linspace(0.0, float(m.quantile(1 - 1e-8)), 20_001)
        from scipy.integrate import simpson

        assert simpson(m.pdf(ts), x=ts) == pytest.approx(1.0, abs=1e-4)

    def test_p_one_is_identity(self):
        base = Weibull.from_mtbf(DAY, 0.7)
        m = MinOfIID(base, 1)
        ts = np.geomspace(1.0, DAY, 10)
        assert np.allclose(m.sf(ts), base.sf(ts))

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            MinOfIID(Exponential(1.0), 0)
