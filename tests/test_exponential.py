"""Exponential distribution: memorylessness and Lemma 1 closed forms."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.distributions import Exponential
from repro.units import DAY, HOUR


class TestConstruction:
    def test_from_mtbf(self):
        d = Exponential.from_mtbf(DAY)
        assert d.lam == pytest.approx(1.0 / DAY)
        assert d.mean() == pytest.approx(DAY)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            Exponential(0.0)
        with pytest.raises(ValueError):
            Exponential(-1.0)


class TestMemorylessness:
    def test_psuc_independent_of_age(self):
        d = Exponential(1.0 / DAY)
        x = 3 * HOUR
        p0 = float(d.psuc(x, 0.0))
        for tau in (HOUR, DAY, 10 * DAY):
            assert float(d.psuc(x, tau)) == pytest.approx(p0, rel=1e-12)

    def test_hazard_constant(self):
        d = Exponential(2.5e-5)
        h = d.hazard(np.array([0.0, 100.0, 1e6]))
        assert np.allclose(h, 2.5e-5)

    def test_conditional_sampling_same_law(self):
        d = Exponential(1.0 / HOUR)
        rng = np.random.default_rng(0)
        fresh = d.sample(rng, size=30_000)
        aged = d.sample_conditional(rng, 5 * HOUR, size=30_000)
        assert np.mean(aged) == pytest.approx(np.mean(fresh), rel=0.05)


class TestLemma1:
    def test_tlost_closed_form_matches_numeric(self):
        d = Exponential(1.0 / DAY)
        x = 5 * HOUR
        closed = d.expected_tlost(x)
        # generic Simpson implementation from the base class
        from repro.distributions.base import FailureDistribution

        numeric = FailureDistribution.expected_tlost(d, x, 0.0)
        assert closed == pytest.approx(numeric, rel=1e-5)

    def test_tlost_small_window_limit(self):
        d = Exponential(1e-9)
        # lam*x -> 0: expected loss tends to x/2 (uniform failure point)
        assert d.expected_tlost(100.0) == pytest.approx(50.0, rel=1e-3)

    def test_tlost_below_half_window(self):
        # memoryless => conditional failure time within the window is
        # biased early, so E[Tlost] < x/2
        d = Exponential(1.0 / HOUR)
        x = 3 * HOUR
        assert d.expected_tlost(x) < x / 2

    def test_quantile_closed_form(self):
        d = Exponential(1.0 / DAY)
        assert d.quantile(0.5) == pytest.approx(math.log(2) * DAY, rel=1e-12)

    def test_logsf_linear(self):
        d = Exponential(3e-4)
        ts = np.array([0.0, 1e3, 1e5])
        assert np.allclose(d.logsf(ts), -3e-4 * ts)
