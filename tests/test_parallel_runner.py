"""Parallel scenario runner: determinism, infeasibility recording,
execution configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.models import ConstantOverhead, Platform
from repro.distributions import Exponential, Weibull
from repro.policies import DPMakespanPolicy, DPNextFailurePolicy, Liu, OptExp, Young
from repro.simulation.parallel import (
    ExecutionConfig,
    ParallelRunner,
    get_default_execution,
    resolve_jobs,
    set_default_execution,
)
from repro.simulation.runner import LOWER_BOUND, PERIOD_LB, run_scenarios
from repro.units import DAY, HOUR


def _platform(dist):
    return Platform(p=4, dist=dist, downtime=60.0, overhead=ConstantOverhead(600.0))


def _run(policies, platform, **kw):
    base = dict(
        work_time=DAY,
        n_traces=6,
        horizon=200 * DAY,
        seed=7,
        period_lb_factors=[0.5, 1.0, 2.0],
    )
    base.update(kw)
    return run_scenarios(policies, platform, **base)


class TestDeterminism:
    def test_parallel_bit_identical_to_serial(self):
        """The acceptance gate: fixed seed, jobs=4 vs jobs=1, identical
        per-trace makespans for every policy including the DP ones."""
        platform = _platform(Weibull.from_mtbf(12 * HOUR, 0.7))
        policies = lambda: [Young(), OptExp(), DPNextFailurePolicy(n_grid=32)]
        serial = _run(policies(), platform, jobs=1)
        parallel = _run(policies(), platform, jobs=4)
        assert set(serial.makespans) == set(parallel.makespans)
        for name in serial.makespans:
            assert np.array_equal(
                serial.makespans[name], parallel.makespans[name], equal_nan=True
            ), name
        assert serial.best_period == parallel.best_period

    def test_batch_size_does_not_change_results(self):
        platform = _platform(Exponential.from_mtbf(12 * HOUR))
        a = _run([Young()], platform, jobs=1, batch_size=1)
        b = _run([Young()], platform, jobs=1, batch_size=4)
        assert np.array_equal(a.makespans["Young"], b.makespans["Young"])

    def test_no_cache_does_not_change_results(self):
        platform = _platform(Weibull.from_mtbf(12 * HOUR, 0.7))
        a = _run([DPMakespanPolicy(n_grid=48)], platform, jobs=1, use_cache=True)
        b = _run([DPMakespanPolicy(n_grid=48)], platform, jobs=1, use_cache=False)
        assert np.array_equal(
            a.makespans["DPMakespan"], b.makespans["DPMakespan"], equal_nan=True
        )

    def test_period_lb_winner_matches_serial(self):
        platform = _platform(Exponential.from_mtbf(12 * HOUR))
        serial = _run([Young()], platform, jobs=1)
        parallel = _run([Young()], platform, jobs=3)
        assert serial.best_period == parallel.best_period
        assert np.array_equal(
            serial.makespans[PERIOD_LB], parallel.makespans[PERIOD_LB]
        )


class TestResultStructure:
    def test_all_entries_present(self):
        platform = _platform(Exponential.from_mtbf(12 * HOUR))
        res = _run([Young(), OptExp()], platform)
        assert set(res.makespans) == {"Young", "OptExp", LOWER_BOUND, PERIOD_LB}
        for spans in res.makespans.values():
            assert spans.shape == (6,)

    def test_details_in_trace_order(self):
        platform = _platform(Exponential.from_mtbf(12 * HOUR))
        res = _run([Young()], platform, jobs=2)
        dets = res.details["Young"]
        assert len(dets) == 6
        assert [d.makespan for d in dets] == list(res.makespans["Young"])

    def test_timing_and_jobs_recorded(self):
        platform = _platform(Exponential.from_mtbf(12 * HOUR))
        res = _run([Young()], platform, jobs=2)
        assert res.n_jobs == 2
        assert res.elapsed > 0

    def test_cache_counters_surface(self):
        from repro.core.cache import clear_cache

        clear_cache()
        platform = _platform(Weibull.from_mtbf(12 * HOUR, 0.7))
        res = _run(
            [DPMakespanPolicy(n_grid=48)],
            platform,
            jobs=1,
            include_period_lb=False,
        )
        # one DP solve, then one hit per remaining trace
        assert res.cache_misses >= 1
        assert res.cache_hits >= res.makespans["DPMakespan"].size - 1


class TestInfeasibleRecording:
    def test_liu_infeasible_recorded_not_swallowed(self):
        """Liu is infeasible on large decreasing-hazard platforms: the
        runner must record which traces failed, identically on both
        execution paths, instead of silently leaving NaN."""
        platform = Platform(
            p=64,
            dist=Weibull.from_mtbf(30 * DAY, 0.3),
            downtime=60.0,
            overhead=ConstantOverhead(600.0),
        )
        kw = dict(
            work_time=0.5 * DAY,
            n_traces=3,
            horizon=60 * DAY,
            seed=3,
            include_period_lb=False,
            max_makespan=50 * 0.5 * DAY,
        )
        serial = run_scenarios([Liu(), Young()], platform, jobs=1, **kw)
        assert "Liu" in serial.infeasible
        assert serial.infeasible["Liu"] == [0, 1, 2]
        assert np.all(np.isnan(serial.makespans["Liu"]))
        assert "Young" not in serial.infeasible

        parallel = run_scenarios([Liu(), Young()], platform, jobs=2, **kw)
        assert parallel.infeasible == serial.infeasible

    def test_feasible_scenario_has_empty_infeasible(self):
        platform = _platform(Exponential.from_mtbf(12 * HOUR))
        res = _run([Young()], platform, include_period_lb=False)
        assert res.infeasible == {}


class TestExecutionConfig:
    def test_default_roundtrip(self):
        original = get_default_execution()
        try:
            set_default_execution(jobs=3, use_cache=False)
            cfg = get_default_execution()
            assert cfg.jobs == 3 and cfg.use_cache is False
            runner = ParallelRunner()
            assert runner.jobs == 3 and runner.use_cache is False
        finally:
            set_default_execution(
                jobs=original.jobs,
                use_cache=original.use_cache,
            )

    def test_resolve_jobs(self):
        import os

        assert resolve_jobs(1) == 1
        assert resolve_jobs(5) == 5
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(-1) == (os.cpu_count() or 1)

    def test_explicit_args_override_default(self):
        original = get_default_execution()
        try:
            set_default_execution(jobs=4, use_cache=False)
            runner = ParallelRunner(jobs=1, use_cache=True)
            assert runner.jobs == 1 and runner.use_cache is True
        finally:
            set_default_execution(
                jobs=original.jobs,
                use_cache=original.use_cache,
            )

    def test_config_dataclass_defaults(self):
        cfg = ExecutionConfig()
        assert cfg.jobs == 1 and cfg.use_cache is True and cfg.batch_size is None
        assert cfg.use_memo is True and cfg.use_shm is True

    def test_memo_shm_defaults_roundtrip(self):
        original = get_default_execution()
        try:
            set_default_execution(use_memo=False, use_shm=False)
            runner = ParallelRunner()
            assert runner.use_memo is False and runner.use_shm is False
            runner = ParallelRunner(use_memo=True, use_shm=True)
            assert runner.use_memo is True and runner.use_shm is True
        finally:
            set_default_execution(
                use_memo=original.use_memo,
                use_shm=original.use_shm,
            )


class TestReplanMemo:
    """Cross-trace replan memo: identical results with the memo on or
    off, serial or parallel, and counters surfaced in the result."""

    def _dp_run(self, **kw):
        from repro.core.cache import clear_cache, clear_replan_memo

        clear_cache()
        clear_replan_memo()
        platform = _platform(Weibull.from_mtbf(12 * HOUR, 0.7))
        base = dict(
            work_time=0.25 * DAY,
            n_traces=6,
            horizon=200 * DAY,
            seed=7,
            include_lower_bound=False,
            include_period_lb=False,
        )
        base.update(kw)
        return run_scenarios(
            [DPNextFailurePolicy(n_grid=24)], platform, **base
        )

    def test_memo_on_off_identical_serial(self):
        on = self._dp_run(jobs=1, use_memo=True)
        off = self._dp_run(jobs=1, use_memo=False)
        assert np.array_equal(
            on.makespans["DPNextFailure"], off.makespans["DPNextFailure"]
        )

    def test_memo_serial_parallel_identical_with_counters(self):
        serial = self._dp_run(jobs=1, use_memo=True)
        parallel = self._dp_run(jobs=2, use_memo=True)
        assert np.array_equal(
            serial.makespans["DPNextFailure"],
            parallel.makespans["DPNextFailure"],
        )
        # every replan consults the memo; at least the cross-trace
        # fresh-platform plan hits on both execution paths
        assert serial.memo_misses >= 1 and serial.memo_hits >= 1
        assert parallel.memo_misses >= 1
        assert parallel.memo_hits + parallel.memo_misses > 0

    def test_memo_off_reports_zero_hits(self):
        res = self._dp_run(jobs=1, use_memo=False)
        assert res.memo_hits == 0
        # disabled memo still counts solves as misses
        assert res.memo_misses >= 1


class TestSharedMemory:
    """Shared-memory trace publication: bit-identical to regeneration,
    robust to publish/attach failures."""

    def _run_shm(self, **kw):
        platform = _platform(Weibull.from_mtbf(12 * HOUR, 0.7))
        base = dict(
            work_time=0.25 * DAY,
            n_traces=6,
            horizon=200 * DAY,
            seed=11,
            include_lower_bound=True,
            include_period_lb=False,
        )
        base.update(kw)
        return run_scenarios([Young(), OptExp()], platform, **base)

    def test_shm_on_off_identical(self):
        on = self._run_shm(jobs=2, use_shm=True)
        off = self._run_shm(jobs=2, use_shm=False)
        serial = self._run_shm(jobs=1)
        for name in serial.makespans:
            assert np.array_equal(on.makespans[name], serial.makespans[name]), name
            assert np.array_equal(off.makespans[name], serial.makespans[name]), name

    def test_publish_failure_falls_back(self, monkeypatch):
        import repro.simulation.shm as shm_mod

        def boom(*a, **kw):
            raise OSError("no shared memory here")

        monkeypatch.setattr(shm_mod, "publish_scenario", boom)
        res = self._run_shm(jobs=2, use_shm=True)
        serial = self._run_shm(jobs=1)
        for name in serial.makespans:
            assert np.array_equal(res.makespans[name], serial.makespans[name]), name

    def test_attach_failure_falls_back(self, monkeypatch):
        # Workers are forked, so they inherit the monkeypatched module
        # attribute; _task_traces must swallow the failure and
        # regenerate from the determinism anchor.
        import repro.simulation.shm as shm_mod

        def boom(layout):
            raise OSError("attach refused")

        monkeypatch.setattr(shm_mod, "attach_scenario", boom)
        res = self._run_shm(jobs=2, use_shm=True)
        serial = self._run_shm(jobs=1)
        for name in serial.makespans:
            assert np.array_equal(res.makespans[name], serial.makespans[name]), name

    def test_publish_attach_roundtrip(self):
        from repro.simulation import shm as shm_mod
        from repro.simulation.batch import TraceEnsemble
        from repro.simulation.parallel import _job_trace

        platform = _platform(Weibull.from_mtbf(12 * HOUR, 0.7))
        horizon = 50 * DAY
        traces = [_job_trace(platform, horizon, seed=3, index=i) for i in range(4)]
        ensemble = TraceEnsemble(traces, platform.recovery, 0.0)
        pub = shm_mod.publish_scenario(
            traces,
            ensemble,
            n_units=platform.num_nodes,
            downtime=platform.downtime,
            horizon=horizon,
            recovery=platform.recovery,
            t0=0.0,
        )
        try:
            with shm_mod.attach_scenario(pub.layout) as scenario:
                for i, tr in enumerate(traces):
                    got = scenario.job_traces(i)
                    assert np.array_equal(got.times, tr.times)
                    assert np.array_equal(got.units, tr.units)
                    assert got.n_units == tr.n_units
                    assert got.downtime == tr.downtime
                    assert got.horizon == tr.horizon
                # Row-slices of the global ensemble vs an ensemble
                # compiled from just those traces: identical up to the
                # narrower padding width, inert +inf/carry padding after.
                sub = scenario.ensemble_rows([1, 3])
                full = TraceEnsemble([traces[1], traces[3]], platform.recovery, 0.0)
                w = full.fail.shape[1]
                assert np.array_equal(sub.t_start, full.t_start)
                assert np.array_equal(sub.fail[:, :w], full.fail)
                assert np.array_equal(sub.resume[:, :w], full.resume)
                assert np.array_equal(sub.cumfail[:, :w], full.cumfail)
                assert np.all(np.isinf(sub.fail[:, w:]))
                assert np.array_equal(
                    sub.cumfail[:, w:],
                    np.broadcast_to(
                        sub.cumfail[:, w - 1 : w], sub.cumfail[:, w:].shape
                    ),
                )
        finally:
            pub.close()

    def test_publish_empty_raises(self):
        from repro.simulation import shm as shm_mod

        with pytest.raises(ValueError):
            shm_mod.publish_scenario(
                [], None, n_units=1, downtime=0.0, horizon=1.0,
                recovery=0.0, t0=0.0,
            )

    def test_attach_closes_segment_on_corrupt_layout(self, monkeypatch):
        """A layout the segment cannot satisfy (bad dtype/offset) must
        not leak the attachment: __init__ closes before propagating."""
        from repro.simulation import shm as shm_mod

        class FakeSegment:
            buf = memoryview(bytearray(8))
            closed = False

            def close(self):
                FakeSegment.closed = True

        monkeypatch.setattr(
            shm_mod, "_attach_segment", lambda name: FakeSegment()
        )
        bad_spec = shm_mod._ArraySpec(
            offset=0, shape=(1000,), dtype="float64"  # 8000 B > 8 B buffer
        )
        layout = shm_mod.ScenarioLayout(
            shm_name="bogus",
            specs={"times": bad_spec},
            n_units=1,
            downtime=0.0,
            horizon=1.0,
            recovery=0.0,
            t0=0.0,
            has_ensemble=False,
        )
        with pytest.raises(Exception):
            shm_mod.attach_scenario(layout)
        assert FakeSegment.closed


class TestDiskCacheTier:
    """Persistent L2 disk tier under the runner: counters surfaced,
    bit-identity with the tier on or off, and the worker memo-delta
    merge that lets a later run in the same process fork warm."""

    def _dp_run(self, **kw):
        from repro.core.cache import clear_cache, clear_replan_memo

        clear_cache()
        clear_replan_memo()
        platform = _platform(Weibull.from_mtbf(12 * HOUR, 0.7))
        base = dict(
            work_time=0.25 * DAY,
            n_traces=6,
            horizon=200 * DAY,
            seed=7,
            include_lower_bound=False,
            include_period_lb=False,
        )
        base.update(kw)
        return run_scenarios(
            [DPNextFailurePolicy(n_grid=24)], platform, **base
        )

    def test_disk_warm_run_bit_identical(self):
        """Second run with cleared L1 caches is served from disk and
        produces the same makespans bit-for-bit."""
        cold = self._dp_run(jobs=1)
        assert cold.disk_misses >= 1  # every solve persisted
        warm = self._dp_run(jobs=1)  # _dp_run cleared L1 again
        assert np.array_equal(
            cold.makespans["DPNextFailure"], warm.makespans["DPNextFailure"]
        )
        assert warm.disk_hits >= 1

    def test_disk_tier_off_bit_identical_and_uncounted(self):
        on = self._dp_run(jobs=1, use_disk_cache=True)
        off = self._dp_run(jobs=1, use_disk_cache=False)
        assert np.array_equal(
            on.makespans["DPNextFailure"], off.makespans["DPNextFailure"]
        )
        assert off.disk_hits == 0 and off.disk_misses == 0

    def test_counters_consistent_serial(self):
        res = self._dp_run(jobs=1)
        # serial misses are already unique, so the deduplicated count
        # is defined to equal the summed one
        assert res.memo_unique_misses == res.memo_misses
        assert res.disk_evictions == 0

    def test_parallel_unique_misses_not_above_summed(self):
        res = self._dp_run(jobs=2, use_disk_cache=False)
        assert 1 <= res.memo_unique_misses <= res.memo_misses

    def test_memo_delta_merge_warms_parent(self):
        """Workers ship their memo entries back at unit exit, so a
        later run in the same process forks warm and mostly hits."""
        first = self._dp_run(jobs=2, use_disk_cache=False)
        assert first.memo_misses >= 1

        from repro.core.cache import clear_cache

        clear_cache()  # keep the replan memo, drop only the DP tables
        second = run_scenarios(
            [DPNextFailurePolicy(n_grid=24)],
            _platform(Weibull.from_mtbf(12 * HOUR, 0.7)),
            work_time=0.25 * DAY,
            n_traces=6,
            horizon=200 * DAY,
            seed=7,
            include_lower_bound=False,
            include_period_lb=False,
            jobs=2,
            use_disk_cache=False,
        )
        assert np.array_equal(
            first.makespans["DPNextFailure"],
            second.makespans["DPNextFailure"],
        )
        # every replan the first run paid for is now a memo hit
        assert second.memo_hits >= first.memo_unique_misses
        assert second.memo_misses == 0
