"""Parallel scenario runner: determinism, infeasibility recording,
execution configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.models import ConstantOverhead, Platform
from repro.distributions import Exponential, Weibull
from repro.policies import DPMakespanPolicy, DPNextFailurePolicy, Liu, OptExp, Young
from repro.simulation.parallel import (
    ExecutionConfig,
    ParallelRunner,
    get_default_execution,
    resolve_jobs,
    set_default_execution,
)
from repro.simulation.runner import LOWER_BOUND, PERIOD_LB, run_scenarios
from repro.units import DAY, HOUR


def _platform(dist):
    return Platform(p=4, dist=dist, downtime=60.0, overhead=ConstantOverhead(600.0))


def _run(policies, platform, **kw):
    base = dict(
        work_time=DAY,
        n_traces=6,
        horizon=200 * DAY,
        seed=7,
        period_lb_factors=[0.5, 1.0, 2.0],
    )
    base.update(kw)
    return run_scenarios(policies, platform, **base)


class TestDeterminism:
    def test_parallel_bit_identical_to_serial(self):
        """The acceptance gate: fixed seed, jobs=4 vs jobs=1, identical
        per-trace makespans for every policy including the DP ones."""
        platform = _platform(Weibull.from_mtbf(12 * HOUR, 0.7))
        policies = lambda: [Young(), OptExp(), DPNextFailurePolicy(n_grid=32)]
        serial = _run(policies(), platform, jobs=1)
        parallel = _run(policies(), platform, jobs=4)
        assert set(serial.makespans) == set(parallel.makespans)
        for name in serial.makespans:
            assert np.array_equal(
                serial.makespans[name], parallel.makespans[name], equal_nan=True
            ), name
        assert serial.best_period == parallel.best_period

    def test_batch_size_does_not_change_results(self):
        platform = _platform(Exponential.from_mtbf(12 * HOUR))
        a = _run([Young()], platform, jobs=1, batch_size=1)
        b = _run([Young()], platform, jobs=1, batch_size=4)
        assert np.array_equal(a.makespans["Young"], b.makespans["Young"])

    def test_no_cache_does_not_change_results(self):
        platform = _platform(Weibull.from_mtbf(12 * HOUR, 0.7))
        a = _run([DPMakespanPolicy(n_grid=48)], platform, jobs=1, use_cache=True)
        b = _run([DPMakespanPolicy(n_grid=48)], platform, jobs=1, use_cache=False)
        assert np.array_equal(
            a.makespans["DPMakespan"], b.makespans["DPMakespan"], equal_nan=True
        )

    def test_period_lb_winner_matches_serial(self):
        platform = _platform(Exponential.from_mtbf(12 * HOUR))
        serial = _run([Young()], platform, jobs=1)
        parallel = _run([Young()], platform, jobs=3)
        assert serial.best_period == parallel.best_period
        assert np.array_equal(
            serial.makespans[PERIOD_LB], parallel.makespans[PERIOD_LB]
        )


class TestResultStructure:
    def test_all_entries_present(self):
        platform = _platform(Exponential.from_mtbf(12 * HOUR))
        res = _run([Young(), OptExp()], platform)
        assert set(res.makespans) == {"Young", "OptExp", LOWER_BOUND, PERIOD_LB}
        for spans in res.makespans.values():
            assert spans.shape == (6,)

    def test_details_in_trace_order(self):
        platform = _platform(Exponential.from_mtbf(12 * HOUR))
        res = _run([Young()], platform, jobs=2)
        dets = res.details["Young"]
        assert len(dets) == 6
        assert [d.makespan for d in dets] == list(res.makespans["Young"])

    def test_timing_and_jobs_recorded(self):
        platform = _platform(Exponential.from_mtbf(12 * HOUR))
        res = _run([Young()], platform, jobs=2)
        assert res.n_jobs == 2
        assert res.elapsed > 0

    def test_cache_counters_surface(self):
        from repro.core.cache import clear_cache

        clear_cache()
        platform = _platform(Weibull.from_mtbf(12 * HOUR, 0.7))
        res = _run(
            [DPMakespanPolicy(n_grid=48)],
            platform,
            jobs=1,
            include_period_lb=False,
        )
        # one DP solve, then one hit per remaining trace
        assert res.cache_misses >= 1
        assert res.cache_hits >= res.makespans["DPMakespan"].size - 1


class TestInfeasibleRecording:
    def test_liu_infeasible_recorded_not_swallowed(self):
        """Liu is infeasible on large decreasing-hazard platforms: the
        runner must record which traces failed, identically on both
        execution paths, instead of silently leaving NaN."""
        platform = Platform(
            p=64,
            dist=Weibull.from_mtbf(30 * DAY, 0.3),
            downtime=60.0,
            overhead=ConstantOverhead(600.0),
        )
        kw = dict(
            work_time=0.5 * DAY,
            n_traces=3,
            horizon=60 * DAY,
            seed=3,
            include_period_lb=False,
            max_makespan=50 * 0.5 * DAY,
        )
        serial = run_scenarios([Liu(), Young()], platform, jobs=1, **kw)
        assert "Liu" in serial.infeasible
        assert serial.infeasible["Liu"] == [0, 1, 2]
        assert np.all(np.isnan(serial.makespans["Liu"]))
        assert "Young" not in serial.infeasible

        parallel = run_scenarios([Liu(), Young()], platform, jobs=2, **kw)
        assert parallel.infeasible == serial.infeasible

    def test_feasible_scenario_has_empty_infeasible(self):
        platform = _platform(Exponential.from_mtbf(12 * HOUR))
        res = _run([Young()], platform, include_period_lb=False)
        assert res.infeasible == {}


class TestExecutionConfig:
    def test_default_roundtrip(self):
        original = get_default_execution()
        try:
            set_default_execution(jobs=3, use_cache=False)
            cfg = get_default_execution()
            assert cfg.jobs == 3 and cfg.use_cache is False
            runner = ParallelRunner()
            assert runner.jobs == 3 and runner.use_cache is False
        finally:
            set_default_execution(
                jobs=original.jobs,
                use_cache=original.use_cache,
            )

    def test_resolve_jobs(self):
        import os

        assert resolve_jobs(1) == 1
        assert resolve_jobs(5) == 5
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(-1) == (os.cpu_count() or 1)

    def test_explicit_args_override_default(self):
        original = get_default_execution()
        try:
            set_default_execution(jobs=4, use_cache=False)
            runner = ParallelRunner(jobs=1, use_cache=True)
            assert runner.jobs == 1 and runner.use_cache is True
        finally:
            set_default_execution(
                jobs=original.jobs,
                use_cache=original.use_cache,
            )

    def test_config_dataclass_defaults(self):
        cfg = ExecutionConfig()
        assert cfg.jobs == 1 and cfg.use_cache is True and cfg.batch_size is None
