"""DPMakespan (Algorithm 1) against Theorem 1 and sanity invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dp_makespan import dp_makespan, expected_trec_general
from repro.core.theory import expected_makespan_optimal, expected_trec
from repro.distributions import Exponential, Weibull
from repro.units import DAY, HOUR


class TestTrecGeneral:
    def test_matches_exponential_closed_form(self):
        lam, d, r = 1 / DAY, 60.0, 600.0
        assert expected_trec_general(Exponential(lam), d, r) == pytest.approx(
            expected_trec(lam, d, r), rel=1e-4
        )

    def test_weibull_finite(self):
        dist = Weibull.from_mtbf(DAY, 0.7)
        trec = expected_trec_general(dist, 60.0, 600.0)
        assert trec > 660.0  # at least D + R
        assert np.isfinite(trec)


class TestAgainstTheorem1:
    @pytest.mark.parametrize("mtbf_hours", [2, 8, 24])
    def test_exponential_value_matches(self, mtbf_hours):
        lam = 1 / (mtbf_hours * HOUR)
        work, c, d, r = 6 * HOUR, 600.0, 60.0, 600.0
        res = dp_makespan(work, c, d, r, Exponential(lam), u=300.0)
        theory = expected_makespan_optimal(lam, work, c, d, r)
        # quantization: DP is an upper bound within a few percent
        assert res.expected_makespan >= theory.expected_makespan * (1 - 1e-9)
        assert res.expected_makespan == pytest.approx(
            theory.expected_makespan, rel=0.03
        )

    def test_first_chunk_near_optimal(self):
        lam = 1 / (2 * HOUR)
        work, c, d, r = 6 * HOUR, 600.0, 60.0, 600.0
        res = dp_makespan(work, c, d, r, Exponential(lam), u=300.0)
        theory = expected_makespan_optimal(lam, work, c, d, r)
        assert res.first_chunk == pytest.approx(theory.chunk_size, abs=2 * 300.0)

    def test_refining_quantum_improves_value(self):
        lam = 1 / (4 * HOUR)
        work, c, d, r = 6 * HOUR, 600.0, 60.0, 600.0
        coarse = dp_makespan(work, c, d, r, Exponential(lam), u=1200.0)
        fine = dp_makespan(work, c, d, r, Exponential(lam), u=300.0)
        assert fine.expected_makespan <= coarse.expected_makespan * (1 + 1e-9)


class TestInvariants:
    def test_value_exceeds_failure_free_time(self):
        dist = Weibull.from_mtbf(DAY, 0.7)
        work, c = 6 * HOUR, 600.0
        res = dp_makespan(work, c, 60.0, 600.0, dist, u=600.0)
        assert res.expected_makespan > work + c

    def test_reliable_limit(self):
        dist = Exponential(1e-12)
        work, c = 6 * HOUR, 600.0
        res = dp_makespan(work, c, 60.0, 600.0, dist, u=600.0)
        # near-zero failure rate: one chunk + one checkpoint
        assert res.first_chunk == pytest.approx(work)
        assert res.expected_makespan == pytest.approx(work + c, rel=1e-3)

    def test_weibull_age_zero_vs_aged_start(self):
        """For k<1, starting with an aged processor (tau0 > 0) can only
        help: the expected makespan must not increase."""
        dist = Weibull.from_mtbf(DAY, 0.7)
        work, c, d, r = 4 * HOUR, 600.0, 60.0, 600.0
        fresh = dp_makespan(work, c, d, r, dist, u=600.0, tau0=0.0)
        aged = dp_makespan(work, c, d, r, dist, u=600.0, tau0=2 * DAY)
        assert aged.expected_makespan <= fresh.expected_makespan * (1 + 1e-9)

    def test_rejects_bad_quantum(self):
        with pytest.raises(ValueError):
            dp_makespan(HOUR, 600.0, 60.0, 600.0, Exponential(1.0), u=-1.0)


class TestPolicyQueries:
    def test_chunk_for_start_state(self):
        dist = Exponential(1 / (4 * HOUR))
        res = dp_makespan(6 * HOUR, 600.0, 60.0, 600.0, dist, u=600.0)
        assert res.chunk_for(6 * HOUR, 0.0, failed_before=False) == pytest.approx(
            res.first_chunk
        )

    def test_chunk_for_zero_work(self):
        dist = Exponential(1 / (4 * HOUR))
        res = dp_makespan(6 * HOUR, 600.0, 60.0, 600.0, dist, u=600.0)
        assert res.chunk_for(0.0, 0.0, failed_before=False) == 0.0

    def test_chunk_for_post_failure(self):
        dist = Weibull.from_mtbf(DAY, 0.7)
        res = dp_makespan(6 * HOUR, 600.0, 60.0, 600.0, dist, u=600.0)
        w = res.chunk_for(3 * HOUR, 600.0, failed_before=True)
        assert 0 < w <= 3 * HOUR

    def test_memoryless_chunks_independent_of_plane(self):
        """For Exponential failures the pre- and post-failure policies
        must coincide (memorylessness)."""
        dist = Exponential(1 / (4 * HOUR))
        res = dp_makespan(6 * HOUR, 600.0, 60.0, 600.0, dist, u=600.0)
        for remaining in (HOUR, 3 * HOUR, 6 * HOUR):
            pre = res.chunk_for(remaining, 0.0, failed_before=False)
            post = res.chunk_for(remaining, 600.0, failed_before=True)
            assert pre == pytest.approx(post)


class TestVectorizedSweep:
    """The blocked 2-D ``(y, i)`` sweep must build tables identical to
    the ``y``-at-a-time reference loop — same float ops elementwise,
    same first-minimum tie-breaking."""

    @pytest.mark.parametrize(
        "dist",
        [
            Exponential(1 / (10 * HOUR)),
            Weibull.from_mtbf(10 * HOUR, 0.7),
            Weibull.from_mtbf(5 * HOUR, 0.5),
        ],
        ids=["exp", "weibull07", "weibull05"],
    )
    @pytest.mark.parametrize("tau0", [0.0, 1800.0])
    def test_tables_identical(self, dist, tau0):
        work, checkpoint, downtime, recovery = 20 * HOUR, 600.0, 60.0, 600.0
        u = max(checkpoint, work / 48)
        vec = dp_makespan(
            work, checkpoint, downtime, recovery, dist, u, tau0, vectorized=True
        )
        loop = dp_makespan(
            work, checkpoint, downtime, recovery, dist, u, tau0, vectorized=False
        )
        assert vec.expected_makespan == loop.expected_makespan
        assert vec.first_chunk == loop.first_chunk
        assert np.array_equal(vec._v_pre, loop._v_pre)
        assert np.array_equal(vec._c_pre, loop._c_pre)
        assert np.array_equal(vec._v_post, loop._v_post)
        assert np.array_equal(vec._c_post, loop._c_post)

    def test_small_block_size_still_identical(self, monkeypatch):
        """Blocking must not change results at any block boundary."""
        import importlib

        # repro.core re-exports the function under the same name, so a
        # plain ``import ... as`` would grab the function, not the module
        mod = importlib.import_module("repro.core.dp_makespan")

        dist = Weibull.from_mtbf(10 * HOUR, 0.7)
        reference = dp_makespan(
            10 * HOUR, 600.0, 60.0, 600.0, dist, 1500.0, vectorized=False
        )
        monkeypatch.setattr(mod, "_Y_BLOCK_ELEMS", 7)
        blocked = dp_makespan(
            10 * HOUR, 600.0, 60.0, 600.0, dist, 1500.0, vectorized=True
        )
        assert np.array_equal(blocked._v_pre, reference._v_pre)
        assert np.array_equal(blocked._c_pre, reference._c_pre)
        assert np.array_equal(blocked._v_post, reference._v_post)
        assert np.array_equal(blocked._c_post, reference._c_post)
