"""Work models, overhead models, platform, presets."""

from __future__ import annotations

import pytest

from repro.cluster import (
    AmdahlLaw,
    ConstantOverhead,
    EmbarrassinglyParallel,
    EXASCALE,
    NumericalKernel,
    PETASCALE,
    Platform,
    ProportionalOverhead,
    SINGLE_PROC,
    scaled_petascale,
)
from repro.distributions import Exponential, Weibull
from repro.units import DAY, YEAR


class TestWorkModels:
    def test_embarrassingly_parallel(self):
        wm = EmbarrassinglyParallel(1000.0)
        assert wm.time(1) == 1000.0
        assert wm.time(10) == 100.0
        assert wm.speedup(10) == pytest.approx(10.0)

    def test_amdahl_asymptote(self):
        wm = AmdahlLaw(1000.0, gamma=0.01)
        assert wm.time(1) == pytest.approx(1010.0)
        # speedup bounded by 1/gamma
        assert wm.speedup(10**6) < 1 / 0.01 * 1.02

    def test_amdahl_validates_gamma(self):
        with pytest.raises(ValueError):
            AmdahlLaw(1000.0, gamma=1.5)

    def test_numerical_kernel(self):
        wm = NumericalKernel(8000.0, gamma=1.0)
        assert wm.time(4) == pytest.approx(8000.0 / 4 + 8000.0 ** (2 / 3) / 2)

    def test_kernel_speedup_below_linear(self):
        wm = NumericalKernel(1e9, gamma=1.0)
        assert wm.speedup(1024) < 1024

    def test_rejects_p_zero(self):
        with pytest.raises(ValueError):
            EmbarrassinglyParallel(10.0).time(0)


class TestOverheads:
    def test_constant(self):
        oh = ConstantOverhead(600.0)
        assert oh.checkpoint(1) == oh.checkpoint(10**6) == 600.0
        assert oh.recovery(42) == 600.0

    def test_proportional(self):
        oh = ProportionalOverhead(600.0, 45_208)
        assert oh.checkpoint(45_208) == pytest.approx(600.0)
        assert oh.checkpoint(11_302) == pytest.approx(2400.0)


class TestPlatform:
    def test_mtbf_accounting(self):
        plat = Platform(
            p=100,
            dist=Exponential.from_mtbf(100 * DAY),
            downtime=60.0,
            overhead=ConstantOverhead(600.0),
        )
        assert plat.processor_mtbf == pytest.approx(100 * DAY + 60.0)
        assert plat.platform_mtbf == pytest.approx((100 * DAY + 60.0) / 100)

    def test_node_granularity(self):
        plat = Platform(
            p=100,
            dist=Exponential.from_mtbf(100 * DAY),
            downtime=60.0,
            overhead=ConstantOverhead(600.0),
            procs_per_node=4,
        )
        assert plat.num_nodes == 25
        assert plat.platform_mtbf == pytest.approx((100 * DAY + 60.0) / 25)

    def test_validation(self):
        with pytest.raises(ValueError):
            Platform(
                p=0,
                dist=Exponential(1.0),
                downtime=60.0,
                overhead=ConstantOverhead(1.0),
            )


class TestPresets:
    def test_table1_values(self):
        assert SINGLE_PROC.ptotal == 1
        assert PETASCALE.ptotal == 45_208
        assert EXASCALE.ptotal == 2**20
        assert PETASCALE.processor_mtbf == pytest.approx(125 * YEAR)
        assert EXASCALE.processor_mtbf == pytest.approx(1250 * YEAR)
        assert PETASCALE.overhead_seconds == 600.0
        assert PETASCALE.downtime == 60.0

    def test_full_platform_job_durations(self):
        """~8 days on full Petascale, ~3.5 days on full Exascale."""
        assert PETASCALE.work / PETASCALE.ptotal == pytest.approx(
            8 * DAY, rel=0.05
        )
        assert EXASCALE.work / EXASCALE.ptotal == pytest.approx(
            3.5 * DAY, rel=0.15
        )

    def test_scaling_preserves_ratios(self):
        s = scaled_petascale(1024)
        # platform MTBF at full machine unchanged
        assert s.platform_mtbf == pytest.approx(PETASCALE.platform_mtbf)
        # full-machine job duration unchanged
        assert s.work / s.ptotal == pytest.approx(
            PETASCALE.work / PETASCALE.ptotal
        )
        # age-freshness ratio unchanged
        assert s.start_offset / s.processor_mtbf == pytest.approx(
            PETASCALE.start_offset / PETASCALE.processor_mtbf
        )

    def test_with_mtbf(self):
        alt = PETASCALE.with_mtbf(500 * YEAR)
        assert alt.processor_mtbf == pytest.approx(500 * YEAR)
        assert alt.ptotal == PETASCALE.ptotal

    def test_scaling_ratio(self):
        assert PETASCALE.scaling_ratio == 1.0
        s = scaled_petascale(512)
        assert s.scaling_ratio == pytest.approx(45_208 / 512)
        # re-scaling keeps the original reference
        s2 = s.scale(128)
        assert s2.scaling_ratio == pytest.approx(45_208 / 128)


class TestGammaRescaling:
    def test_amdahl_crossover_fraction_preserved(self):
        """The platform fraction where gamma*W overtakes W/p must be the
        same on the paper's machine and on a scaled one."""
        from repro.experiments.scaling import make_work_model

        gamma = 1e-4
        paper = make_work_model("amdahl", PETASCALE, gamma=gamma)
        scaled = make_work_model("amdahl", scaled_petascale(512), gamma=gamma)
        f_paper = (1 / paper.gamma) / PETASCALE.ptotal
        f_scaled = (1 / scaled.gamma) / 512
        assert f_scaled == pytest.approx(f_paper, rel=1e-9)

    def test_kernel_crossover_fraction_preserved(self):
        from repro.experiments.scaling import make_work_model

        gamma = 1.0
        paper = make_work_model("kernel", PETASCALE, gamma=gamma)
        s = scaled_petascale(512)
        scaled = make_work_model("kernel", s, gamma=gamma)
        # crossover p* = W^{2/3} / gamma^2
        f_paper = PETASCALE.work ** (2 / 3) / paper.gamma**2 / PETASCALE.ptotal
        f_scaled = s.work ** (2 / 3) / scaled.gamma**2 / s.ptotal
        assert f_scaled == pytest.approx(f_paper, rel=1e-9)

    def test_unscaled_preset_keeps_gamma(self):
        from repro.experiments.scaling import make_work_model

        wm = make_work_model("amdahl", PETASCALE, gamma=1e-6)
        assert wm.gamma == pytest.approx(1e-6)
