"""Synthetic LANL-like logs and the empirical distribution built on them."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import fit_weibull_mle
from repro.traces.logs import empirical_from_log, synthesize_lanl_like_log
from repro.units import HOUR, YEAR


@pytest.fixture(scope="module")
def log19():
    return synthesize_lanl_like_log(cluster=19, years=2.0, seed=0)


class TestSynthesis:
    def test_metadata(self, log19):
        assert log19.procs_per_node == 4
        assert log19.n_nodes >= 1000
        assert log19.name == "lanl-like-19"

    def test_durations_positive_with_floor(self, log19):
        assert np.all(log19.durations >= 30.0)

    def test_enough_events_per_node(self, log19):
        # each node accumulates >= 2 years of uptime
        assert log19.durations.sum() >= log19.n_nodes * 2.0 * YEAR

    def test_weibull_shape_in_lanl_range(self):
        """The bulk should fit a Weibull shape in the range Schroeder &
        Gibson report (0.33-0.49), modulo the short-interval mixture."""
        log = synthesize_lanl_like_log(cluster=19, years=4.0, seed=3)
        _, k = fit_weibull_mle(log.durations)
        assert 0.25 < k < 0.6

    def test_clusters_differ(self):
        a = synthesize_lanl_like_log(18, years=1.0, seed=0)
        b = synthesize_lanl_like_log(19, years=1.0, seed=0)
        assert a.durations.size != b.durations.size or not np.array_equal(
            a.durations[:100], b.durations[:100]
        )

    def test_reproducible(self):
        a = synthesize_lanl_like_log(19, years=1.0, seed=5)
        b = synthesize_lanl_like_log(19, years=1.0, seed=5)
        assert np.array_equal(a.durations, b.durations)

    def test_unknown_cluster_rejected(self):
        with pytest.raises(ValueError):
            synthesize_lanl_like_log(cluster=7)


class TestEmpiricalFromLog:
    def test_distribution_mean_matches_log(self, log19):
        d = empirical_from_log(log19)
        assert d.mean() == pytest.approx(float(np.mean(log19.durations)))

    def test_decreasing_hazard_signature(self, log19):
        """Heavy-tailed availability: conditional survival of a fixed
        window must improve with age (the property DPNextFailure exploits
        in Figure 7)."""
        d = empirical_from_log(log19)
        x = 6 * HOUR
        p_young = float(d.psuc(x, 0.0))
        p_old = float(d.psuc(x, 30 * 24 * HOUR))
        assert p_old > p_young

    def test_short_interval_mass(self, log19):
        """The repeat-failure mixture leaves visible mass below 6 hours."""
        frac_short = float(np.mean(log19.durations < 6 * HOUR))
        assert 0.05 < frac_short < 0.6
