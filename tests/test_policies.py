"""Checkpointing policies: period formulas and adaptive behavior."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.theory import optimal_num_chunks
from repro.distributions import Exponential, Weibull
from repro.policies import (
    Bouguerra,
    DalyHigh,
    DalyLow,
    DPMakespanPolicy,
    DPNextFailurePolicy,
    Liu,
    OptExp,
    PolicyInfeasibleError,
    Young,
)
from repro.simulation import simulate_job
from repro.simulation.engine import JobContext
from repro.traces.generation import PlatformTraces
from repro.units import DAY, HOUR, YEAR


def make_ctx(
    dist,
    n_units=1,
    checkpoint=600.0,
    recovery=600.0,
    downtime=60.0,
    work_time=8 * DAY,
    ages=None,
):
    mtbf = (dist.mean() + downtime) / n_units
    ages = np.zeros(n_units) if ages is None else np.asarray(ages, dtype=float)
    return JobContext(
        checkpoint=checkpoint,
        recovery=recovery,
        downtime=downtime,
        dist=dist,
        work_time=work_time,
        n_units=n_units,
        platform_mtbf=mtbf,
        t0=0.0,
        time=float(ages.max()),
        _lifetime_start=float(ages.max()) - ages,
    )


class TestPeriodFormulas:
    def test_young(self):
        ctx = make_ctx(Exponential.from_mtbf(DAY))
        pol = Young()
        pol.setup(ctx)
        assert pol.period == pytest.approx(
            math.sqrt(2 * 600.0 * ctx.platform_mtbf)
        )

    def test_dalylow_adds_d_and_r(self):
        ctx = make_ctx(Exponential.from_mtbf(DAY))
        y, d = Young(), DalyLow()
        y.setup(ctx)
        d.setup(ctx)
        assert d.period > y.period

    def test_dalyhigh_formula(self):
        ctx = make_ctx(Exponential.from_mtbf(DAY))
        pol = DalyHigh()
        pol.setup(ctx)
        c, m = 600.0, ctx.platform_mtbf
        ratio = c / (2 * m)
        expected = (
            math.sqrt(2 * c * m) * (1 + math.sqrt(ratio) / 3 + ratio / 9) - c
        )
        assert pol.period == pytest.approx(expected)

    def test_dalyhigh_saturates_at_mtbf(self):
        # C >= 2M triggers Daly's w = M fallback (platform MTBF 240+60)
        ctx = make_ctx(Exponential.from_mtbf(240.0), checkpoint=600.0)
        pol = DalyHigh()
        pol.setup(ctx)
        assert pol.period == pytest.approx(ctx.platform_mtbf)

    def test_optexp_matches_proposition5(self):
        dist = Exponential.from_mtbf(125 * YEAR)
        ctx = make_ctx(dist, n_units=1024, work_time=8 * DAY)
        pol = OptExp()
        pol.setup(ctx)
        lam = 1.0 / ctx.platform_mtbf
        k = optimal_num_chunks(lam, 8 * DAY, 600.0)
        assert pol.period == pytest.approx(8 * DAY / k)

    def test_periodic_chunk_clamped_to_remaining(self):
        ctx = make_ctx(Exponential.from_mtbf(DAY))
        pol = Young()
        pol.setup(ctx)
        assert pol.next_chunk(10.0, ctx) == 10.0


class TestBouguerra:
    def test_exponential_close_to_young_order(self):
        """Under Exponential failures the renewal model is exact, so the
        period must land near the Young/Daly optimum."""
        ctx = make_ctx(Exponential.from_mtbf(DAY))
        b, y = Bouguerra(), Young()
        b.setup(ctx)
        y.setup(ctx)
        assert 0.5 * y.period < b.period < 2.0 * y.period

    def test_weibull_overcheckpoints(self):
        """k < 1 + rejuvenation assumption => far-too-short periods."""
        dist = Weibull.from_mtbf(125 * YEAR, 0.7)
        ctx = make_ctx(dist, n_units=1024, work_time=8 * DAY)
        b, y = Bouguerra(), Young()
        b.setup(ctx)
        y.setup(ctx)
        assert b.period < 0.5 * y.period

    def test_shorter_for_smaller_k(self):
        periods = []
        for k in (0.9, 0.6, 0.3):
            dist = Weibull.from_mtbf(125 * YEAR, k)
            ctx = make_ctx(dist, n_units=1024, work_time=8 * DAY)
            b = Bouguerra()
            b.setup(ctx)
            periods.append(b.period)
        assert periods[0] > periods[1] > periods[2]


class TestLiu:
    def test_exponential_is_periodic_young(self):
        """Constant hazard: the frequency function gives the Young period."""
        ctx = make_ctx(Exponential.from_mtbf(DAY), work_time=DAY)
        pol = Liu()
        pol.setup(ctx)
        chunks = pol._chunks[1:-1]
        expected = math.sqrt(2 * 600.0 * DAY)
        # interior chunks periodic at sqrt(2 C / h) - C spacing
        assert np.allclose(chunks, chunks[0], rtol=1e-3)
        assert chunks[0] == pytest.approx(expected - 600.0, rel=0.02)

    def test_weibull_small_k_large_platform_infeasible(self):
        """The paper's reported pathology: dates closer than C."""
        dist = Weibull.from_mtbf(125 * YEAR, 0.5)
        ctx = make_ctx(dist, n_units=45_208, work_time=8 * DAY)
        with pytest.raises(PolicyInfeasibleError):
            Liu().setup(ctx)

    def test_weibull_chunks_grow_over_time(self):
        """Decreasing hazard => later checkpoints farther apart."""
        dist = Weibull.from_mtbf(10 * DAY, 0.7)
        ctx = make_ctx(dist, work_time=2 * DAY)
        pol = Liu()
        pol.setup(ctx)
        chunks = pol._chunks
        assert chunks[-2] > chunks[1]


class TestDPNextFailurePolicy:
    def test_replans_after_failure(self):
        dist = Weibull.from_mtbf(DAY, 0.7)
        pol = DPNextFailurePolicy(n_grid=24)
        ctx = make_ctx(dist, work_time=6 * HOUR)
        pol.setup(ctx)
        w1 = pol.next_chunk(6 * HOUR, ctx)
        assert len(pol._queue) > 0
        pol.on_failure(ctx)
        assert len(pol._queue) == 0

    def test_truncation_limits_planning_horizon(self):
        dist = Weibull.from_mtbf(HOUR, 0.7)  # tiny MTBF, huge work
        pol = DPNextFailurePolicy(n_grid=24, truncation=2.0)
        ctx = make_ctx(dist, work_time=100 * DAY)
        pol.setup(ctx)
        pol.next_chunk(100 * DAY, ctx)
        planned = sum(pol._queue)
        assert planned <= 2.0 * ctx.platform_mtbf

    def test_chunks_positive_and_bounded(self):
        dist = Weibull.from_mtbf(DAY, 0.7)
        pol = DPNextFailurePolicy(n_grid=24)
        ctx = make_ctx(dist, work_time=6 * HOUR)
        pol.setup(ctx)
        rem = 6 * HOUR
        while rem > 1e-6:
            w = pol.next_chunk(rem, ctx)
            assert 0 < w <= rem + 1e-9
            rem -= w

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            DPNextFailurePolicy(n_grid=1)


class TestDPMakespanPolicy:
    def test_exponential_chunks_near_optexp(self):
        dist = Exponential.from_mtbf(4 * HOUR)
        pol = DPMakespanPolicy(n_grid=96)
        ctx = make_ctx(dist, work_time=12 * HOUR, checkpoint=600.0)
        pol.setup(ctx)
        w = pol.next_chunk(12 * HOUR, ctx)
        lam = 1.0 / ctx.platform_mtbf
        k = optimal_num_chunks(lam, 12 * HOUR, 600.0)
        assert w == pytest.approx(12 * HOUR / k, abs=2 * 600.0)

    def test_cache_reused_across_setups(self):
        dist = Exponential.from_mtbf(4 * HOUR)
        pol = DPMakespanPolicy(n_grid=48)
        ctx = make_ctx(dist, work_time=6 * HOUR)
        pol.setup(ctx)
        first = pol._result
        pol.setup(ctx)
        assert pol._result is first

    def test_simulation_runs_to_completion(self):
        dist = Weibull.from_mtbf(DAY, 0.7)
        traces = PlatformTraces(
            [np.array([5 * HOUR])], horizon=1e9, downtime=60.0
        ).for_job(1)
        res = simulate_job(
            DPMakespanPolicy(n_grid=48),
            6 * HOUR,
            traces,
            600.0,
            600.0,
            dist,
            platform_mtbf=DAY,
        )
        assert res.completed
        assert res.n_failures == 1
