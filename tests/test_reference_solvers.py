"""Reference solvers, and the DPs verified against them."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dp_makespan import dp_makespan
from repro.core.dp_nextfailure import dp_next_failure
from repro.core.reference import (
    brute_force_makespan,
    brute_force_next_failure,
    enumerate_chunkings,
    expected_makespan_of_chunks,
)
from repro.core.state import PlatformState
from repro.core.theory import expected_makespan_optimal
from repro.distributions import Deterministic, Exponential, Weibull
from repro.units import DAY, HOUR


class TestEnumeration:
    def test_counts(self):
        assert len(list(enumerate_chunkings(1, 10.0))) == 1
        assert len(list(enumerate_chunkings(5, 10.0))) == 16

    def test_all_cover_work(self):
        for chunks in enumerate_chunkings(6, 10.0):
            assert sum(chunks) == pytest.approx(60.0)
            assert all(c > 0 for c in chunks)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            next(enumerate_chunkings(0, 10.0))


class TestMakespanReference:
    def test_single_chunk_formula(self):
        """One chunk: E[T] = (1/lam + Trec)(e^{lam(W+C)} - 1)."""
        lam, w, c, d, r = 1 / HOUR, 2 * HOUR, 600.0, 60.0, 600.0
        from repro.core.theory import expected_trec

        direct = (1 / lam + expected_trec(lam, d, r)) * (
            np.expm1(lam * (w + c))
        )
        assert expected_makespan_of_chunks([w], lam, c, d, r) == pytest.approx(direct)

    def test_brute_force_agrees_with_theorem1_shape(self):
        """The enumerated optimum must use (near-)equal chunks and match
        Theorem 1's value when K* chunks fit the grid."""
        lam, c, d, r = 1 / (4 * HOUR), 600.0, 60.0, 600.0
        n, u = 8, 1800.0
        best_val, best_chunks = brute_force_makespan(n, u, lam, c, d, r)
        theory = expected_makespan_optimal(lam, n * u, c, d, r)
        if n % theory.num_chunks == 0:
            assert best_val == pytest.approx(theory.expected_makespan, rel=1e-12)
        assert np.ptp(best_chunks) <= u + 1e-9  # equal-ish chunks

    def test_dp_makespan_matches_brute_force(self):
        lam, c, d, r = 1 / (3 * HOUR), 600.0, 60.0, 600.0
        n, u = 10, 1200.0
        res = dp_makespan(n * u, c, d, r, Exponential(lam), u=u)
        # the DP quantizes C to the grid and integrates E[Tlost] by
        # trapezoid; compare against the reference at the same quantized
        # C with a tolerance covering the quadrature error
        c_q = max(1, round(c / u)) * u
        best_q, best_chunks = brute_force_makespan(n, u, lam, c_q, d, r)
        assert res.expected_makespan == pytest.approx(best_q, rel=5e-3)
        # decision-level agreement: the DP's chunk sequence is one of
        # the enumerated optima (memoryless => multiset is what matters)
        dp_chunks = []
        remaining = n * u
        while remaining > 1e-9:
            w = res.chunk_for(remaining, 0.0, failed_before=False)
            dp_chunks.append(w)
            remaining -= w
        assert sorted(dp_chunks) == pytest.approx(sorted(best_chunks))


class TestNextFailureReference:
    def test_dp_matches_brute_force_weibull(self):
        dist = Weibull.from_mtbf(5 * HOUR, 0.6)
        state = PlatformState([HOUR], dist)
        n, u, c = 10, 900.0, 600.0
        best_val, _ = brute_force_next_failure(n, u, c, state)
        res = dp_next_failure(n * u, c, dist, u=u, tau=HOUR)
        assert res.expected_work == pytest.approx(best_val, rel=1e-9)


class TestDeterministicDistribution:
    def test_survival_step(self):
        d = Deterministic(100.0)
        assert d.sf(50.0) == 1.0
        assert d.sf(100.0) == 1.0
        assert d.sf(100.1) == 0.0

    def test_tlost_exact(self):
        d = Deterministic(100.0)
        assert d.expected_tlost(60.0, tau=50.0) == pytest.approx(50.0)
        assert d.expected_tlost(30.0, tau=50.0) == 0.0

    def test_engine_with_deterministic_failures(self):
        """Failures exactly every 1000 s (+downtime): a 400-s-chunk
        policy with C=100 fits one attempt per window."""
        from repro.policies.base import PeriodicPolicy
        from repro.simulation import simulate_job
        from repro.traces.generation import generate_platform_traces

        d = Deterministic(1000.0)
        tr = generate_platform_traces(d, 1, 50_000.0, downtime=50.0, seed=0).for_job(1)
        res = simulate_job(PeriodicPolicy(400.0), 1600.0, tr, 100.0, 80.0, d)
        assert res.completed
        # failures at 1000, 2050, 3100, ...
        assert res.n_failures >= 1

    def test_dp_next_failure_stops_before_the_cliff(self):
        """With a known failure at t=1000 and C=100, planning more than
        900 s of work in one chunk is worthless; the DP must keep the
        pre-cliff chunk+checkpoint within the window."""
        d = Deterministic(1000.0)
        res = dp_next_failure(1800.0, 100.0, d, u=100.0, tau=0.0)
        assert res.first_chunk + 100.0 <= 1000.0 + 1e-9
        assert res.expected_work >= 800.0  # at least the window's worth
