"""Discrete-event engine semantics on hand-crafted failure traces.

Every scenario here is worked out by hand; these tests pin down the
engine's timing rules (chunk + checkpoint atomicity, downtime, cascading
outages, recovery restarts, lower bound).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.distributions import Exponential
from repro.policies.base import PeriodicPolicy, Policy
from repro.simulation import simulate_job, simulate_lower_bound
from repro.traces.generation import PlatformTraces

DIST = Exponential(1.0)  # engines are trace-driven; dist is for policies only


def make_traces(per_unit, downtime=50.0, horizon=1e9):
    return PlatformTraces(
        [np.asarray(t, dtype=float) for t in per_unit],
        horizon=horizon,
        downtime=downtime,
    ).for_job(len(per_unit))


class TestFailureFree:
    def test_makespan_is_chunks_plus_checkpoints(self):
        tr = make_traces([[]])
        res = simulate_job(PeriodicPolicy(250.0), 1000.0, tr, 100.0, 80.0, DIST)
        assert res.makespan == pytest.approx(4 * (250 + 100))
        assert res.n_failures == 0
        assert res.n_checkpoints == 4
        assert res.completed

    def test_remainder_chunk(self):
        tr = make_traces([[]])
        res = simulate_job(PeriodicPolicy(300.0), 1000.0, tr, 100.0, 80.0, DIST)
        # chunks 300, 300, 300, 100
        assert res.makespan == pytest.approx(1000 + 4 * 100)
        assert res.chunk_min == pytest.approx(100.0)
        assert res.chunk_max == pytest.approx(300.0)

    def test_single_chunk(self):
        tr = make_traces([[]])
        res = simulate_job(PeriodicPolicy(5000.0), 1000.0, tr, 100.0, 80.0, DIST)
        assert res.makespan == pytest.approx(1100.0)
        assert res.n_attempts == 1


class TestSingleFailure:
    def test_failure_mid_chunk(self):
        # attempt [0, 600); failure at 300; downtime 50; recovery 80;
        # retry [430, 1030)
        tr = make_traces([[300.0]], downtime=50.0)
        res = simulate_job(PeriodicPolicy(500.0), 500.0, tr, 100.0, 80.0, DIST)
        assert res.makespan == pytest.approx(1030.0)
        assert res.n_failures == 1
        assert res.n_attempts == 2

    def test_failure_during_checkpoint_loses_chunk(self):
        # chunk [0,200), checkpoint [200,300); failure at 250 discards it
        tr = make_traces([[250.0]], downtime=50.0)
        res = simulate_job(PeriodicPolicy(500.0), 200.0, tr, 100.0, 80.0, DIST)
        # resume at 250+50+80 = 380; redo [380, 680)
        assert res.makespan == pytest.approx(680.0)
        assert res.n_failures == 1

    def test_failure_exactly_at_attempt_end_succeeds(self):
        # attempt ends exactly when the failure strikes: checkpoint done
        tr = make_traces([[300.0]], downtime=50.0)
        res = simulate_job(PeriodicPolicy(200.0), 200.0, tr, 100.0, 80.0, DIST)
        assert res.makespan == pytest.approx(300.0)
        assert res.n_failures == 0

    def test_work_after_failure_preserves_checkpointed_progress(self):
        # period 200, C=100: chunk1 [0,300) ok; chunk2 [300,600) hit at 400
        tr = make_traces([[400.0]], downtime=50.0)
        res = simulate_job(PeriodicPolicy(200.0), 400.0, tr, 100.0, 80.0, DIST)
        # resume 400+130=530, redo chunk2 [530, 830)
        assert res.makespan == pytest.approx(830.0)
        assert res.n_checkpoints == 2


class TestCascadesAndRecovery:
    def test_cascading_failure_extends_outage(self):
        # unit0 fails at 300 (down until 350); unit1 fails at 320 (down
        # until 370); recovery [370, 450); retry [450, 1050)
        tr = make_traces([[300.0], [320.0]], downtime=50.0)
        res = simulate_job(PeriodicPolicy(500.0), 500.0, tr, 100.0, 80.0, DIST)
        assert res.makespan == pytest.approx(1050.0)
        assert res.n_failures == 2

    def test_failure_during_recovery_restarts_it(self):
        # unit0 fails at 300 -> avail 350, recovery [350, 430); unit1
        # fails at 360 -> avail 410, recovery [410, 490); retry [490,1090)
        tr = make_traces([[300.0], [360.0]], downtime=50.0)
        res = simulate_job(PeriodicPolicy(500.0), 500.0, tr, 100.0, 80.0, DIST)
        assert res.makespan == pytest.approx(1090.0)
        assert res.n_failures == 2

    def test_own_downtime_event_skipped(self):
        # second event of unit0 at 120 < 100 + D=50: inside its own
        # downtime, must be ignored
        tr = make_traces([[100.0, 120.0]], downtime=50.0)
        res = simulate_job(PeriodicPolicy(500.0), 300.0, tr, 100.0, 80.0, DIST)
        # fail at 100, resume at 230, run [230, 630)
        assert res.makespan == pytest.approx(630.0)
        assert res.n_failures == 1

    def test_job_start_waits_for_downtime(self):
        # unit fails at 90 with D=50; job submitted at t0=100 waits
        # until 140
        tr = make_traces([[90.0]], downtime=50.0)
        res = simulate_job(
            PeriodicPolicy(500.0), 300.0, tr, 100.0, 80.0, DIST, t0=100.0
        )
        assert res.makespan == pytest.approx(40.0 + 400.0)


class TestLowerBound:
    def test_checkpoints_just_in_time(self):
        # failures at 500 and 1300; C=100, D=50, R=80
        tr = make_traces([[500.0, 1300.0]], downtime=50.0)
        res = simulate_lower_bound(1000.0, tr, 100.0, 80.0)
        # [0,400) work, ckpt [400,500), fail; resume 630; finish at 1230
        assert res.makespan == pytest.approx(1230.0)
        assert res.n_failures == 1

    def test_no_failure_no_checkpoint(self):
        tr = make_traces([[]])
        res = simulate_lower_bound(1000.0, tr, 100.0, 80.0)
        assert res.makespan == pytest.approx(1000.0)
        assert res.n_checkpoints == 0

    def test_window_shorter_than_checkpoint_yields_no_work(self):
        # failures at 50 and 1000: first window (50) < C (100): no work
        tr = make_traces([[50.0, 1000.0]], downtime=50.0)
        res = simulate_lower_bound(500.0, tr, 100.0, 80.0)
        # resume at 180; finish 180+500 = 680 (before 1000)
        assert res.makespan == pytest.approx(680.0)

    def test_lower_bound_beats_any_policy(self):
        from repro.traces import generate_platform_traces

        dist = Exponential(1 / 3600.0)
        for seed in range(5):
            tr = generate_platform_traces(dist, 2, 2e5, downtime=50.0, seed=seed).for_job(2)
            lb = simulate_lower_bound(10_000.0, tr, 100.0, 80.0)
            for period in (500.0, 2000.0, 10_000.0):
                res = simulate_job(
                    PeriodicPolicy(period), 10_000.0, tr, 100.0, 80.0, dist
                )
                assert lb.makespan <= res.makespan + 1e-6


class AgeRecorder(Policy):
    name = "AgeRecorder"

    def __init__(self, period):
        self.period = period
        self.snapshots = []

    def next_chunk(self, remaining, ctx):
        self.snapshots.append((ctx.time, ctx.ages.copy()))
        return min(self.period, remaining)


class TestContext:
    def test_ages_reflect_failures(self):
        tr = make_traces([[300.0], []], downtime=50.0)
        pol = AgeRecorder(500.0)
        simulate_job(pol, 500.0, tr, 100.0, 80.0, DIST)
        # first decision at t=0: both ages 0
        t_first, ages_first = pol.snapshots[0]
        assert ages_first[0] == 0.0 and ages_first[1] == 0.0
        # decision after recovery (t=430): unit0 age=80 (since 350),
        # unit1 age=430
        t_second, ages_second = pol.snapshots[1]
        assert t_second == pytest.approx(430.0)
        assert ages_second[0] == pytest.approx(80.0)
        assert ages_second[1] == pytest.approx(430.0)

    def test_nonpositive_chunk_rejected(self):
        class BadPolicy(Policy):
            name = "Bad"

            def next_chunk(self, remaining, ctx):
                return 0.0

        tr = make_traces([[]])
        with pytest.raises(ValueError):
            simulate_job(BadPolicy(), 100.0, tr, 10.0, 10.0, DIST)

    def test_max_makespan_abort(self):
        tr = make_traces([np.arange(100.0, 1e6, 150.0)], downtime=50.0)
        res = simulate_job(
            PeriodicPolicy(1000.0),
            10_000.0,
            tr,
            100.0,
            80.0,
            DIST,
            max_makespan=5_000.0,
        )
        assert not res.completed
        assert math.isinf(res.makespan)


class TestResultAccounting:
    def test_overhead_and_waste(self):
        tr = make_traces([[300.0]], downtime=50.0)
        res = simulate_job(PeriodicPolicy(500.0), 500.0, tr, 100.0, 80.0, DIST)
        assert res.overhead == pytest.approx(res.makespan - 500.0)
        assert 0 < res.waste_fraction < 1

    def test_checkpoint_count_excludes_failed_attempts(self):
        tr = make_traces([[300.0]], downtime=50.0)
        res = simulate_job(PeriodicPolicy(500.0), 500.0, tr, 100.0, 80.0, DIST)
        assert res.n_checkpoints == 1
        assert res.n_attempts == 2

    def test_waste_breakdown_values(self):
        # fail at 300 during [0, 600): 300 lost; outage 300->430 (130)
        tr = make_traces([[300.0]], downtime=50.0)
        res = simulate_job(PeriodicPolicy(500.0), 500.0, tr, 100.0, 80.0, DIST)
        assert res.time_lost == pytest.approx(300.0)
        assert res.time_outage == pytest.approx(130.0)
        assert res.time_waiting == 0.0

    def test_exact_accounting_identity(self):
        """makespan = work + C*checkpoints + lost + outage + waiting."""
        from repro.distributions import Weibull
        from repro.traces import generate_platform_traces

        dist = Weibull.from_mtbf(3600.0, 0.7)
        for seed in range(6):
            tr = generate_platform_traces(dist, 3, 3e5, downtime=50.0, seed=seed).for_job(3)
            res = simulate_job(
                PeriodicPolicy(1500.0), 20_000.0, tr, 100.0, 80.0, dist
            )
            reconstructed = (
                res.work_time
                + res.n_checkpoints * 100.0
                + res.time_lost
                + res.time_outage
                + res.time_waiting
            )
            assert res.makespan == pytest.approx(reconstructed, rel=1e-9)

    def test_lower_bound_accounting_identity(self):
        from repro.distributions import Weibull
        from repro.traces import generate_platform_traces

        dist = Weibull.from_mtbf(1800.0, 0.7)
        for seed in range(6):
            tr = generate_platform_traces(dist, 2, 3e5, downtime=50.0, seed=seed).for_job(2)
            res = simulate_lower_bound(10_000.0, tr, 100.0, 80.0)
            reconstructed = (
                res.work_time
                + res.n_checkpoints * 100.0
                + res.time_lost
                + res.time_outage
                + res.time_waiting
            )
            assert res.makespan == pytest.approx(reconstructed, rel=1e-9)
