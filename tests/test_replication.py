"""Replication extension: engine semantics and crossover behavior."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Exponential, Weibull
from repro.policies import OptExp
from repro.policies.base import PeriodicPolicy
from repro.simulation.engine import simulate_job
from repro.simulation.replication import (
    simulate_independent_replication,
    simulate_synchronized_replication,
    split_traces,
)
from repro.traces.generation import PlatformTraces, generate_platform_traces
from repro.units import DAY, HOUR

DIST = Exponential(1.0)


def make_platform(per_unit, downtime=50.0):
    return PlatformTraces(
        [np.asarray(t, dtype=float) for t in per_unit],
        horizon=1e9,
        downtime=downtime,
    )


class TestSplit:
    def test_disjoint_halves(self):
        pt = generate_platform_traces(Exponential(1 / HOUR), 6, DAY, seed=0)
        a, b = split_traces(pt, 3)
        assert a.n_units == b.n_units == 3
        assert not np.array_equal(a.times, b.times)
        # half B's first unit is platform unit 3
        assert np.array_equal(b.times[b.units == 0], pt.per_unit[3])

    def test_requires_enough_units(self):
        pt = generate_platform_traces(Exponential(1 / HOUR), 4, DAY, seed=0)
        with pytest.raises(ValueError):
            split_traces(pt, 3)


class TestSynchronizedDeterministic:
    def test_no_failures_same_as_single(self):
        pt = make_platform([[], []])
        res = simulate_synchronized_replication(
            PeriodicPolicy(250.0), 1000.0, pt, 1, 100.0, 80.0, DIST
        )
        assert res.makespan == pytest.approx(4 * 350.0)
        assert res.n_failures == 0

    def test_one_half_fails_chunk_still_commits(self):
        # half A fails at 300 during chunk [0, 600); half B survives.
        # chunk commits at 600; A ready at 300+50+80=430 < 600.
        pt = make_platform([[300.0], []])
        res = simulate_synchronized_replication(
            PeriodicPolicy(500.0), 500.0, pt, 1, 100.0, 80.0, DIST
        )
        assert res.makespan == pytest.approx(600.0)
        assert res.n_failures == 1
        assert res.n_checkpoints == 1

    def test_late_failure_delays_next_chunk(self):
        # chunk [0,350): A fails at 340 -> ready 340+50+80=470 > 350;
        # chunk commits (B survived) but chunk 2 starts at 470.
        pt = make_platform([[340.0], []])
        res = simulate_synchronized_replication(
            PeriodicPolicy(250.0), 500.0, pt, 1, 100.0, 80.0, DIST
        )
        # chunk2 [470, 820)
        assert res.makespan == pytest.approx(820.0)

    def test_both_halves_fail_chunk_lost(self):
        pt = make_platform([[300.0], [200.0]])
        res = simulate_synchronized_replication(
            PeriodicPolicy(500.0), 500.0, pt, 1, 100.0, 80.0, DIST
        )
        # A ready 430, B ready 330; retry at 430, done 1030
        assert res.makespan == pytest.approx(1030.0)
        assert res.n_failures == 2

    def test_synchronized_beats_unreplicated_under_heavy_failures(self):
        """With a failure striking the single half's every other chunk,
        the replica masks most losses."""
        dist = Weibull.from_mtbf(3 * HOUR, 0.7)
        wins = 0
        for seed in range(8):
            pt = generate_platform_traces(dist, 2, 2000 * HOUR, downtime=60.0, seed=seed)
            single = simulate_job(
                PeriodicPolicy(1800.0),
                12 * HOUR,
                pt.for_job(1),
                600.0,
                600.0,
                dist,
            )
            repl = simulate_synchronized_replication(
                PeriodicPolicy(1800.0), 12 * HOUR, pt, 1, 600.0, 600.0, dist
            )
            if repl.makespan <= single.makespan:
                wins += 1
        assert wins >= 5


class TestIndependent:
    def test_winner_is_min(self):
        pt = make_platform([[300.0], []])
        res = simulate_independent_replication(
            lambda: PeriodicPolicy(500.0), 500.0, pt, 1, 100.0, 80.0, DIST
        )
        # half B never fails: 600; half A: 1030
        assert res.makespan == pytest.approx(600.0)
        assert res.n_failures == 1  # aggregated across replicas

    def test_never_worse_than_single_half(self):
        dist = Weibull.from_mtbf(6 * HOUR, 0.7)
        for seed in range(5):
            pt = generate_platform_traces(dist, 2, 4000 * HOUR, downtime=60.0, seed=seed)
            single = simulate_job(
                OptExp(), 12 * HOUR, pt.for_job(1), 600.0, 600.0, dist,
                platform_mtbf=6 * HOUR,
            )
            repl = simulate_independent_replication(
                OptExp, 12 * HOUR, pt, 1, 600.0, 600.0, dist,
                platform_mtbf=6 * HOUR,
            )
            assert repl.makespan <= single.makespan + 1e-6


class TestCrossover:
    def test_replication_loses_when_failures_rare(self):
        """Reliable platform: paying 2x compute for redundancy loses."""
        from repro.experiments.config import SMOKE
        from repro.experiments.replication import run_replication_experiment
        from repro.cluster.presets import PETASCALE

        points = run_replication_experiment(
            scale=SMOKE,
            mtbf_factors=(1.0,),
            preset=PETASCALE.scale(32),
        )
        pt = points[0]
        assert pt.full < pt.independent
        assert pt.full < pt.synchronized
