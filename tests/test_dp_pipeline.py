"""Fast adaptive-policy pipeline: batched survival kernels, the
vectorized DP paths, and the cross-trace replan memo.

Everything here is an identity gate: the vectorized kernels must equal
the scalar reference paths bit-for-bit (``expected_work_of_schedule``
is the documented exception — telescoping reassociates the sum), and a
replan-memo hit must return the bit-identical result of the cold solve
it stands in for.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cache import (
    cached_replan,
    clear_replan_memo,
    configure_replan_memo,
    get_replan_memo,
    quantize_ages,
    replan_memo_stats,
)
from repro.core.dp_nextfailure import (
    _chunk_cap,
    dp_next_failure_parallel,
    expected_work_of_schedule,
)
from repro.core.state import PlatformState, SurvivalTable
from repro.distributions import Empirical, Exponential, Gamma, LogNormal, Weibull
from repro.units import DAY, HOUR

DISTRIBUTIONS = [
    Exponential(1.0 / DAY),
    Weibull.from_mtbf(10 * DAY, 0.7),
    Gamma(2.0, DAY),
    LogNormal(10.0, 1.2),
    Empirical(np.geomspace(300.0, 40 * DAY, 57)),
]


@pytest.fixture(autouse=True)
def fresh_memo():
    """Each test starts from an empty, enabled replan memo."""
    clear_replan_memo()
    configure_replan_memo(enabled=True)
    yield
    clear_replan_memo()
    configure_replan_memo(enabled=True)


class TestBatchedKernels:
    """``log_survival`` (array) vs ``logsf`` (scalar): same bits."""

    @pytest.mark.parametrize(
        "dist", DISTRIBUTIONS, ids=lambda d: type(d).__name__
    )
    def test_elementwise_identity(self, dist):
        t = np.concatenate([
            [0.0, 1e-9, 300.0, HOUR, DAY, 40 * DAY, 1e9],
            np.geomspace(1.0, 100 * DAY, 40),
        ])
        batched = dist.log_survival(t)
        scalar = np.array([float(dist.logsf(x)) for x in t])
        assert batched.shape == t.shape
        assert np.array_equal(batched, scalar)

    @pytest.mark.parametrize(
        "dist", DISTRIBUTIONS, ids=lambda d: type(d).__name__
    )
    def test_negative_times_survive(self, dist):
        out = dist.log_survival(np.array([-5.0, 0.0]))
        assert out[0] == out[1] == 0.0


class TestVectorizedDP:
    """Vectorized vs scalar DP plumbing: same bits."""

    def _state(self, seed=0, compress=False):
        rng = np.random.default_rng(seed)
        ages = rng.uniform(0.0, 5 * DAY, size=16)
        st = PlatformState(ages, Weibull.from_mtbf(10 * DAY, 0.7))
        return st.compress(4, 12) if compress else st

    @pytest.mark.parametrize("compress", [False, True])
    def test_survival_table_identity(self, compress):
        st = self._state(compress=compress)
        fast = SurvivalTable.build(st, u=600.0, c=120.0, na=20, nb=6)
        slow = SurvivalTable.build(
            st, u=600.0, c=120.0, na=20, nb=6, vectorized=False
        )
        assert np.array_equal(fast.m2, slow.m2)

    @pytest.mark.parametrize("x0", [1, 5, 64, 1000])
    def test_chunk_cap_identity(self, x0):
        st = self._state(seed=x0)
        fast = _chunk_cap(st, checkpoint=600.0, x0=x0)
        slow = _chunk_cap(st, checkpoint=600.0, x0=x0, vectorized=False)
        assert fast == slow

    @pytest.mark.parametrize("seed", range(4))
    def test_dp_next_failure_parallel_identity(self, seed):
        st = self._state(seed=seed, compress=True)
        fast = dp_next_failure_parallel(8 * HOUR, 600.0, st, u=1200.0)
        slow = dp_next_failure_parallel(
            8 * HOUR, 600.0, st, u=1200.0, vectorized=False
        )
        assert np.array_equal(fast.chunks, slow.chunks)
        assert fast.expected_work == slow.expected_work

    def test_expected_work_telescoping(self):
        st = self._state(seed=7)
        chunks = np.array([1800.0, 3600.0, 600.0, 7200.0])
        fast = expected_work_of_schedule(chunks, 600.0, st)
        slow = expected_work_of_schedule(chunks, 600.0, st, vectorized=False)
        # Documented exception: telescoping reassociates the float sum.
        assert fast == pytest.approx(slow, rel=1e-12)

    def test_expected_work_empty_schedule(self):
        st = self._state()
        assert expected_work_of_schedule([], 600.0, st) == 0.0
        assert expected_work_of_schedule([], 600.0, st, vectorized=False) == 0.0


class TestQuantizeAges:
    def test_snaps_to_lattice(self):
        ages = np.array([0.0, 149.0, 150.0, 151.0, 299.0, 1234.5])
        out = quantize_ages(ages, 100.0)
        assert np.array_equal(out, np.round(ages / 100.0) * 100.0)
        assert np.all(np.abs(out - ages) <= 50.0)

    def test_zero_resolution_is_identity(self):
        ages = np.array([0.0, 17.3, 123.456])
        assert np.array_equal(quantize_ages(ages, 0.0), ages)
        assert np.array_equal(quantize_ages(ages, -1.0), ages)


class TestReplanMemo:
    """A memo hit must be bit-identical to the cold solve it replaces,
    for arbitrary (quantized, compressed) platform states."""

    @pytest.mark.parametrize("seed", range(6))
    def test_hit_is_bit_identical_to_cold_solve(self, seed):
        rng = np.random.default_rng(seed)
        dist = Weibull.from_mtbf(rng.uniform(5, 20) * DAY, 0.7)
        u = float(rng.uniform(300.0, 2000.0))
        horizon = u * int(rng.integers(8, 40))
        checkpoint = float(rng.uniform(60.0, 900.0))
        nexact, napprox = 4, 16
        ages = quantize_ages(
            rng.uniform(0.0, 10 * DAY, size=int(rng.integers(2, 32))), u
        )

        def solve():
            state = PlatformState(ages, dist).compress(nexact, napprox)
            return dp_next_failure_parallel(horizon, checkpoint, state, u)

        cold = cached_replan(
            horizon, checkpoint, dist, ages, u, nexact, napprox, True, solve
        )
        hit = cached_replan(
            horizon, checkpoint, dist, ages, u, nexact, napprox, True, solve
        )
        assert hit is cold  # same object: trivially bit-identical
        # and the object equals an independent cold solve bit-for-bit
        fresh = solve()
        assert np.array_equal(hit.chunks, fresh.chunks)
        assert hit.expected_work == fresh.expected_work
        stats = replan_memo_stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_key_separates_parameters(self):
        dist = Exponential(1.0 / DAY)
        ages = np.zeros(4)

        def solve():
            state = PlatformState(ages, dist)
            return dp_next_failure_parallel(4 * HOUR, 600.0, state, 600.0)

        base = (4 * HOUR, 600.0, dist, ages, 600.0, 10, 100, True)
        cached_replan(*base, solve)
        # any parameter change is a miss, not a wrong hit
        cached_replan(8 * HOUR, *base[1:], solve)
        cached_replan(base[0], 300.0, *base[2:], solve)
        cached_replan(*base[:5], 5, *base[6:], solve)
        cached_replan(*base[:7], False, solve)
        stats = replan_memo_stats()
        assert stats.hits == 0 and stats.misses == 5

    def test_disabled_memo_always_solves(self):
        configure_replan_memo(enabled=False)
        calls = []
        dist = Exponential(1.0 / DAY)
        ages = np.zeros(2)

        def solve():
            calls.append(1)
            state = PlatformState(ages, dist)
            return dp_next_failure_parallel(2 * HOUR, 600.0, state, 600.0)

        for _ in range(3):
            cached_replan(2 * HOUR, 600.0, dist, ages, 600.0, 10, 100, True, solve)
        assert len(calls) == 3
        assert replan_memo_stats().misses == 3

    def test_configure_maxsize_validation(self):
        with pytest.raises(ValueError):
            configure_replan_memo(maxsize=0)
        configure_replan_memo(maxsize=8)
        assert get_replan_memo().maxsize == 8
        configure_replan_memo(maxsize=4096)


class TestPolicyMemoEquivalence:
    """DPNextFailurePolicy with the memo on/off follows identical
    trajectories (quantization is applied unconditionally)."""

    def _run(self, **policy_kw):
        from repro.cluster.models import ConstantOverhead, Platform
        from repro.policies.dp import DPNextFailurePolicy
        from repro.simulation.runner import run_scenarios

        platform = Platform(
            p=4,
            dist=Weibull.from_mtbf(10 * DAY, 0.7),
            downtime=60.0,
            overhead=ConstantOverhead(600.0),
        )
        clear_replan_memo()
        return run_scenarios(
            [DPNextFailurePolicy(n_grid=16, **policy_kw)],
            platform,
            2 * HOUR,
            n_traces=4,
            horizon=100 * DAY,
            seed=5,
            include_lower_bound=False,
            include_period_lb=False,
            jobs=1,
        )

    def test_memo_on_off_identical(self):
        on = self._run(use_memo=True)
        off = self._run(use_memo=False)
        assert np.array_equal(
            on.makespans["DPNextFailure"], off.makespans["DPNextFailure"]
        )
        assert on.memo_hits + on.memo_misses > 0
        assert off.memo_hits == 0

    def test_vectorized_on_off_identical(self):
        fast = self._run(vectorized=True, use_memo=False)
        slow = self._run(vectorized=False, use_memo=False)
        assert np.array_equal(
            fast.makespans["DPNextFailure"], slow.makespans["DPNextFailure"]
        )

    def test_memo_quant_validation(self):
        from repro.policies.dp import DPNextFailurePolicy

        with pytest.raises(ValueError):
            DPNextFailurePolicy(memo_quant=-0.5)
