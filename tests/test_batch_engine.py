"""Bit-identity of the vectorized batch replay engine.

The batch engine (:mod:`repro.simulation.batch`) promises results
**bit-identical** to the scalar engine for every static-schedule policy
— not approximately equal.  These tests enforce that promise across
hand-crafted edge traces (cascades, dead events, submissions inside a
downtime window) and randomized Exponential/Weibull ensembles, for the
whole periodic family, Liu's restarting schedule (including per-trace
exhaustion), the ``max_makespan`` abort path and the LowerBound.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.distributions import Exponential, Weibull
from repro.policies.base import (
    PeriodicPolicy,
    Policy,
    PolicyInfeasibleError,
    StaticSchedule,
)
from repro.policies.bouguerra import Bouguerra
from repro.policies.classical import DalyHigh, DalyLow, OptExp, Young
from repro.policies.liu import Liu
from repro.simulation.batch import (
    TraceEnsemble,
    simulate_job_batch,
    simulate_lower_bound_batch,
    simulate_policy_ensemble,
)
from repro.simulation.engine import JobContext, simulate_job, simulate_lower_bound
from repro.traces.generation import PlatformTraces, generate_platform_traces

HOUR = 3600.0
DIST = Exponential(1.0 / (18 * HOUR))

RESULT_FIELDS = (
    "makespan",
    "work_time",
    "n_failures",
    "n_checkpoints",
    "n_attempts",
    "chunk_min",
    "chunk_max",
    "completed",
    "time_lost",
    "time_outage",
    "time_waiting",
)


def assert_same_result(batch, scalar, label=""):
    """Field-by-field exact equality (NaN chunk stats compare equal)."""
    if batch is None or scalar is None:
        assert batch is scalar, f"{label}: {batch!r} != {scalar!r}"
        return
    for f in RESULT_FIELDS:
        x, y = getattr(batch, f), getattr(scalar, f)
        if (
            isinstance(x, float)
            and isinstance(y, float)
            and math.isnan(x)
            and math.isnan(y)
        ):
            continue
        assert x == y, f"{label}: field {f}: batch {x!r} != scalar {y!r}"


def make_traces(per_unit, downtime=50.0, horizon=1e9):
    return PlatformTraces(
        [np.asarray(t, dtype=float) for t in per_unit],
        horizon=horizon,
        downtime=downtime,
    ).for_job(len(per_unit))


def check_policy(policy, work, traces, checkpoint, recovery, dist, **kw):
    """Run both engines over the trace list and demand bit-identity."""
    batch = simulate_policy_ensemble(
        policy, work, traces, checkpoint, recovery, dist, **kw
    )
    scalar_kw = {k: v for k, v in kw.items() if k != "ensemble"}
    for i, tr in enumerate(traces):
        try:
            ref = simulate_job(
                policy, work, tr, checkpoint, recovery, dist, **scalar_kw
            )
        except PolicyInfeasibleError:
            ref = None
        assert_same_result(batch[i], ref, label=f"trace {i}")
    return batch


class RestartingChunks(Policy):
    """Scalar twin of Liu's replay semantics with an arbitrary finite
    schedule — exercises the restarting-chunks mode and exhaustion."""

    name = "RestartingChunks"

    def __init__(self, chunks):
        self._chunks = [float(c) for c in chunks]
        self._idx = 0

    def setup(self, ctx):
        self._idx = 0

    def on_failure(self, ctx):
        self._idx = 0

    def next_chunk(self, remaining, ctx):
        if self._idx >= len(self._chunks):
            raise PolicyInfeasibleError("schedule exhausted")
        w = self._chunks[self._idx]
        self._idx += 1
        return min(w, remaining)

    def static_schedule(self, ctx):
        return StaticSchedule(chunks=np.asarray(self._chunks))


class TestStaticScheduleContract:
    def test_exactly_one_of_period_or_chunks(self):
        with pytest.raises(ValueError):
            StaticSchedule()
        with pytest.raises(ValueError):
            StaticSchedule(period=1.0, chunks=np.asarray([1.0]))
        with pytest.raises(ValueError):
            StaticSchedule(period=0.0)
        with pytest.raises(ValueError):
            StaticSchedule(chunks=np.asarray([1.0, -2.0]))

    def test_periodic_family_declares_schedules(self):
        ctx = JobContext(
            checkpoint=600.0,
            recovery=300.0,
            downtime=60.0,
            dist=DIST,
            work_time=10 * HOUR,
            n_units=4,
            platform_mtbf=DIST.mean() / 4,
            t0=0.0,
        )
        for pol in [Young(), DalyLow(), DalyHigh(), OptExp(), Bouguerra()]:
            pol.setup(ctx)
            sched = pol.static_schedule(ctx)
            assert sched is not None and sched.period is not None
            assert sched.period > 0
        liu = Liu()
        liu.setup(ctx)
        sched = liu.static_schedule(ctx)
        assert sched is not None and sched.chunks is not None

    def test_unbound_context_rejects_age_queries(self):
        ctx = JobContext(
            checkpoint=1.0,
            recovery=1.0,
            downtime=1.0,
            dist=DIST,
            work_time=1.0,
            n_units=1,
            platform_mtbf=1.0,
            t0=0.0,
        )
        with pytest.raises(ValueError):
            _ = ctx.ages
        with pytest.raises(ValueError):
            _ = ctx.age

    def test_dynamic_policy_returns_none_from_batch(self):
        class Adaptive(Policy):
            name = "Adaptive"

            def next_chunk(self, remaining, ctx):
                return remaining

        traces = [make_traces([[500.0], []])]
        out = simulate_job_batch(
            Adaptive(), 1000.0, traces, 100.0, 80.0, DIST
        )
        assert out is None
        # ... and the dispatcher falls back to the scalar engine
        check_policy(Adaptive(), 1000.0, traces, 100.0, 80.0, DIST)


class TestHandCraftedTraces:
    CASES = [
        make_traces([[300.0]]),  # failure mid-chunk
        make_traces([[590.0]]),  # failure during the checkpoint
        make_traces([[620.0]]),  # failure during the recovery window
        make_traces([[100.0, 130.0, 400.0], [135.0]]),  # cascading outage
        make_traces([[100.0, 120.0, 130.0]]),  # dead events (own downtime)
        make_traces([[100.0], [149.0, 400.0]]),  # recovery interrupted
        make_traces([[0.0, 200.0]]),  # event exactly at t0 = 0 skipped
        make_traces([[], []]),  # failure-free
    ]

    @pytest.mark.parametrize("period", [250.0, 500.0, 5000.0])
    def test_periodic_bit_identity(self, period):
        for t0 in (0.0, 110.0):  # 110 lands inside downtime windows
            check_policy(
                PeriodicPolicy(period),
                1000.0,
                self.CASES,
                100.0,
                80.0,
                DIST,
                t0=t0,
            )

    def test_zero_recovery_cascade_boundary(self):
        # with R = 0 an event exactly at t_prev + D is absorbed by the
        # cascade clause, not split into a new outage window
        traces = [make_traces([[100.0, 150.0]], downtime=50.0)]
        check_policy(PeriodicPolicy(300.0), 1000.0, traces, 50.0, 0.0, DIST)

    def test_lower_bound_bit_identity(self):
        for t0 in (0.0, 110.0):
            ens = TraceEnsemble(self.CASES, 80.0, t0)
            batch = simulate_lower_bound_batch(1000.0, ens, 100.0)
            for i, tr in enumerate(self.CASES):
                ref = simulate_lower_bound(1000.0, tr, 100.0, 80.0, t0=t0)
                assert_same_result(batch[i], ref, label=f"LB trace {i}")

    def test_restarting_schedule_and_exhaustion(self):
        # second trace exhausts the two-chunk schedule (failure-free but
        # the schedule only covers 600s of the 1000s job)
        pol = RestartingChunks([400.0, 200.0])
        traces = [make_traces([[300.0]]), make_traces([[]])]
        batch = check_policy(pol, 1000.0, traces, 100.0, 80.0, DIST)
        assert batch[1] is None  # exhausted == scalar raise

    def test_max_makespan_abort(self):
        # abort beats completion when the final attempt overshoots
        traces = [make_traces([[300.0]]), make_traces([[]])]
        for cap in (500.0, 1199.0, 1200.0, 1e9):
            check_policy(
                PeriodicPolicy(1000.0),
                1000.0,
                traces,
                100.0,
                80.0,
                DIST,
                max_makespan=cap,
            )


class TestRandomizedEnsembles:
    @pytest.mark.parametrize(
        "dist",
        [
            Exponential(1.0 / (18 * HOUR)),
            Weibull.from_mtbf(18 * HOUR, 0.7),
            Weibull.from_mtbf(6 * HOUR, 0.5),
        ],
        ids=["exp", "weibull07", "weibull05"],
    )
    @pytest.mark.parametrize("n_units", [1, 4, 16])
    def test_policy_family_bit_identity(self, dist, n_units):
        traces = [
            generate_platform_traces(
                dist,
                n_units,
                40 * 24 * HOUR,
                downtime=60.0,
                seed=np.random.SeedSequence([97, n_units, i]),
            ).for_job(n_units)
            for i in range(10)
        ]
        work, checkpoint, recovery = 30 * HOUR, 600.0, 300.0
        mtbf = dist.mean() / n_units
        for t0 in (0.0, 5000.0):
            ens = TraceEnsemble(traces, recovery, t0)
            for pol in [
                Young(),
                DalyLow(),
                DalyHigh(),
                OptExp(),
                Bouguerra(),
                Liu(),
                PeriodicPolicy(2 * HOUR),
            ]:
                check_policy(
                    pol,
                    work,
                    traces,
                    checkpoint,
                    recovery,
                    dist,
                    t0=t0,
                    platform_mtbf=mtbf,
                    ensemble=ens,
                )
            batch = simulate_lower_bound_batch(work, ens, checkpoint)
            for i, tr in enumerate(traces):
                ref = simulate_lower_bound(
                    work, tr, checkpoint, recovery, t0=t0
                )
                assert_same_result(batch[i], ref, label=f"LB trace {i}")

    def test_setup_infeasibility_matches_scalar(self):
        # Liu on a large sub-hourly-MTBF Weibull platform: setup raises,
        # so every trace is infeasible on both paths
        dist = Weibull.from_mtbf(0.2 * HOUR, 0.5)
        traces = [
            generate_platform_traces(
                dist,
                16,
                10 * 24 * HOUR,
                downtime=60.0,
                seed=np.random.SeedSequence([3, i]),
            ).for_job(16)
            for i in range(3)
        ]
        out = check_policy(
            Liu(),
            10 * HOUR,
            traces,
            600.0,
            300.0,
            dist,
            platform_mtbf=dist.mean() / 16,
        )
        assert out == [None, None, None]

    def test_precompiled_ensemble_matches_fresh(self):
        dist = Weibull.from_mtbf(18 * HOUR, 0.7)
        traces = [
            generate_platform_traces(
                dist,
                4,
                40 * 24 * HOUR,
                downtime=60.0,
                seed=np.random.SeedSequence([13, i]),
            ).for_job(4)
            for i in range(6)
        ]
        ens = TraceEnsemble(traces, 300.0, 0.0)
        mtbf = dist.mean() / 4
        for pol in (Young(), PeriodicPolicy(HOUR)):
            shared = simulate_job_batch(
                pol,
                20 * HOUR,
                traces,
                600.0,
                300.0,
                dist,
                platform_mtbf=mtbf,
                ensemble=ens,
            )
            fresh = simulate_job_batch(
                pol,
                20 * HOUR,
                traces,
                600.0,
                300.0,
                dist,
                platform_mtbf=mtbf,
            )
            for a, b in zip(shared, fresh):
                assert_same_result(a, b)


class TestRunnerDispatch:
    def test_run_scenarios_batch_equals_scalar(self):
        from repro.cluster.models import ConstantOverhead, Platform
        from repro.simulation.runner import run_scenarios

        dist = Weibull.from_mtbf(12 * HOUR, 0.7)
        platform = Platform(
            p=8, dist=dist, downtime=60.0, overhead=ConstantOverhead(600.0)
        )
        policies = [Young(), OptExp(), Liu()]
        kw = dict(
            platform=platform,
            work_time=20 * HOUR,
            n_traces=6,
            horizon=30 * 24 * HOUR,
            seed=5,
            include_period_lb=True,
            period_lb_traces=3,
        )
        a = run_scenarios(policies, use_batch=True, **kw)
        b = run_scenarios(policies, use_batch=False, **kw)
        assert a.best_period == b.best_period
        assert a.infeasible == b.infeasible
        for name in b.makespans:
            assert np.array_equal(
                a.makespans[name], b.makespans[name], equal_nan=True
            ), name
        for name in b.details:
            for da, db in zip(a.details[name], b.details[name]):
                assert_same_result(da, db, label=name)
