"""Optimal-enrollment extension driver."""

from __future__ import annotations

import pytest

from repro.experiments import SMOKE
from repro.experiments.enrollment import run_optimal_enrollment


@pytest.fixture(scope="module")
def reliable():
    return run_optimal_enrollment(scale=SMOKE, dist_kind="exponential")


class TestStructure:
    def test_profiles_and_sweep(self, reliable):
        assert len(reliable.p_values) >= 3
        for vals in reliable.makespans.values():
            assert len(vals) == len(reliable.p_values)
            assert all(v > 0 for v in vals)

    def test_best_p_in_sweep(self, reliable):
        for p in reliable.best_p.values():
            assert p in reliable.p_values


class TestShape:
    def test_embarrassing_prefers_full_platform_when_reliable(self, reliable):
        assert reliable.best_p["W/p"] == reliable.p_values[-1]
        assert not reliable.speedup_exhausted("W/p")

    def test_amdahl_heavy_profile_saturates(self, reliable):
        """gamma=1e-4 Amdahl: the sequential term dominates long before
        the whole platform; extra processors buy almost nothing."""
        vals = reliable.makespans["W/p + 1e-4 W"]
        assert vals[-1] > 0.5 * vals[-3]  # nearly flat at the top end

    def test_unreliable_platform_moves_optimum_inward(self):
        """With a 30x less reliable platform the communication-bound
        kernel profile should stop scaling before the full machine."""
        res = run_optimal_enrollment(
            scale=SMOKE,
            dist_kind="weibull",
            mtbf_factor=1.0 / 30.0,
            overhead="constant",
        )
        heavy = "W/p + 1e-4 W"
        assert res.best_p[heavy] < res.p_values[-1]
