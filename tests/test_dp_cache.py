"""DP table cache: hits, key separation, bounds, the no-cache escape
hatch, and distribution cache keys."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cache import (
    DPTableCache,
    cache_stats,
    cached_dp_makespan,
    cached_dp_next_failure_parallel,
    clear_cache,
    configure_cache,
    get_cache,
)
from repro.core.dp_makespan import dp_makespan
from repro.core.state import PlatformState
from repro.distributions import Empirical, Exponential, Gamma, Weibull
from repro.distributions.minimum import MinOfIID
from repro.units import DAY, HOUR


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test starts from an empty, enabled global cache."""
    clear_cache()
    configure_cache(enabled=True)
    yield
    clear_cache()
    configure_cache(enabled=True)


class TestDPTableCache:
    def test_hit_returns_same_object(self):
        cache = DPTableCache()
        a = cache.get_or_compute(("k",), lambda: object())
        b = cache.get_or_compute(("k",), lambda: object())
        assert a is b
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = DPTableCache(maxsize=2)
        cache.get_or_compute(1, lambda: "a")
        cache.get_or_compute(2, lambda: "b")
        cache.get_or_compute(1, lambda: "a")  # refresh 1
        cache.get_or_compute(3, lambda: "c")  # evicts 2
        assert len(cache) == 2
        calls = []
        cache.get_or_compute(2, lambda: calls.append(1) or "b2")
        assert calls  # 2 was recomputed
        cache.get_or_compute(3, lambda: (_ for _ in ()).throw(AssertionError))

    def test_disabled_always_computes(self):
        cache = DPTableCache(enabled=False)
        calls = []
        for _ in range(3):
            cache.get_or_compute("k", lambda: calls.append(1) or len(calls))
        assert len(calls) == 3
        assert cache.hits == 0 and cache.misses == 3
        assert len(cache) == 0

    def test_clear_resets(self):
        cache = DPTableCache()
        cache.get_or_compute(1, lambda: "a")
        cache.get_or_compute(1, lambda: "a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 0 and cache.stats().misses == 0

    def test_stats_hit_rate(self):
        cache = DPTableCache()
        cache.get_or_compute(1, lambda: "a")
        cache.get_or_compute(1, lambda: "a")
        s = cache.stats()
        assert s.lookups == 2 and s.hit_rate == pytest.approx(0.5)

    def test_len_takes_the_table_lock(self, monkeypatch):
        """len() reads the table under the same lock writers hold, so a
        concurrent eviction can never be observed mid-mutation."""
        cache = DPTableCache()
        cache.get_or_compute(1, lambda: "a")
        observed = []
        original = dict.__len__

        class Spy(dict):
            def __len__(self):
                observed.append(cache._lock.locked())
                return original(self)

        cache._data = Spy(cache._data)
        assert len(cache) == 1
        assert observed == [True]


class TestCachedDPMakespan:
    def test_second_call_hits(self):
        dist = Weibull.from_mtbf(DAY, 0.7)
        kw = dict(work=12 * HOUR, checkpoint=600.0, downtime=60.0,
                  recovery=600.0, dist=dist, u=3600.0)
        a = cached_dp_makespan(**kw)
        before = cache_stats()
        b = cached_dp_makespan(**kw)
        after = cache_stats()
        assert b is a
        assert after.hits == before.hits + 1

    def test_matches_uncached_solver(self):
        dist = Exponential.from_mtbf(DAY)
        kw = dict(work=12 * HOUR, checkpoint=600.0, downtime=60.0,
                  recovery=600.0, dist=dist, u=3600.0)
        cached = cached_dp_makespan(**kw)
        direct = dp_makespan(**kw)
        assert cached.expected_makespan == direct.expected_makespan
        assert cached.first_chunk == direct.first_chunk

    def test_no_key_collision_across_distributions(self):
        """Same (W, C, D, R, u) but different failure laws — including
        two Empirical datasets with equal n and near-equal mean — must
        resolve to different tables."""
        rng = np.random.default_rng(0)
        samples_a = rng.exponential(DAY, size=500)
        samples_b = np.sort(samples_a)[::-1].copy()
        samples_b[0] *= 1.0000001  # same n, nearly identical summary
        dists = [
            Exponential.from_mtbf(DAY),
            Weibull.from_mtbf(DAY, 0.7),
            Weibull.from_mtbf(DAY, 0.9999),
            Gamma.from_mtbf(DAY, 0.6),
            Empirical(samples_a),
            Empirical(samples_b),
        ]
        keys = {d.cache_key() for d in dists}
        assert len(keys) == len(dists)
        kw = dict(work=6 * HOUR, checkpoint=600.0, downtime=60.0,
                  recovery=600.0, u=3600.0)
        results = [cached_dp_makespan(dist=d, **kw) for d in dists]
        assert cache_stats().misses == len(dists)  # no spurious hits
        assert len({id(r) for r in results}) == len(results)

    def test_min_of_iid_key_includes_p(self):
        base = Weibull.from_mtbf(DAY, 0.7)
        assert MinOfIID(base, 4).cache_key() != MinOfIID(base, 8).cache_key()
        assert MinOfIID(base, 4).cache_key() != base.cache_key()

    def test_parameter_changes_miss(self):
        dist = Exponential.from_mtbf(DAY)
        kw = dict(work=6 * HOUR, checkpoint=600.0, downtime=60.0,
                  recovery=600.0, dist=dist, u=3600.0)
        cached_dp_makespan(**kw)
        cached_dp_makespan(**{**kw, "checkpoint": 300.0})
        cached_dp_makespan(**{**kw, "u": 1800.0})
        assert cache_stats().misses == 3
        assert cache_stats().hits == 0


class TestCachedDPNextFailure:
    def test_identical_state_hits(self):
        dist = Weibull.from_mtbf(DAY, 0.7)
        state = PlatformState(np.zeros(4), dist)
        a = cached_dp_next_failure_parallel(6 * HOUR, 600.0, state, 900.0)
        b = cached_dp_next_failure_parallel(
            6 * HOUR, 600.0, PlatformState(np.zeros(4), dist), 900.0
        )
        assert b is a
        assert cache_stats().hits == 1

    def test_different_ages_miss(self):
        dist = Weibull.from_mtbf(DAY, 0.7)
        cached_dp_next_failure_parallel(
            6 * HOUR, 600.0, PlatformState(np.zeros(4), dist), 900.0
        )
        cached_dp_next_failure_parallel(
            6 * HOUR, 600.0, PlatformState(np.full(4, 60.0), dist), 900.0
        )
        assert cache_stats().misses == 2 and cache_stats().hits == 0


class TestEscapeHatch:
    def test_configure_disable_enable(self):
        dist = Exponential.from_mtbf(DAY)
        kw = dict(work=6 * HOUR, checkpoint=600.0, downtime=60.0,
                  recovery=600.0, dist=dist, u=3600.0)
        configure_cache(enabled=False)
        a = cached_dp_makespan(**kw)
        b = cached_dp_makespan(**kw)
        assert a is not b  # recomputed every call
        assert cache_stats().hits == 0
        configure_cache(enabled=True)
        c = cached_dp_makespan(**kw)
        d = cached_dp_makespan(**kw)
        assert d is c

    def test_no_cache_flag_reaches_runner_counters(self):
        """use_cache=False on run_scenarios: every DP solve is a miss."""
        from repro.cluster.models import ConstantOverhead, Platform
        from repro.policies import DPMakespanPolicy
        from repro.simulation.runner import run_scenarios

        platform = Platform(
            p=2,
            dist=Weibull.from_mtbf(12 * HOUR, 0.7),
            downtime=60.0,
            overhead=ConstantOverhead(600.0),
        )
        res = run_scenarios(
            [DPMakespanPolicy(n_grid=48)],
            platform,
            work_time=DAY,
            n_traces=3,
            horizon=100 * DAY,
            seed=1,
            include_period_lb=False,
            jobs=1,
            use_cache=False,
        )
        assert res.cache_hits == 0
        assert res.cache_misses >= 3  # one uncached solve per trace

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            DPTableCache(maxsize=0)
        with pytest.raises(ValueError):
            configure_cache(maxsize=0)

    def test_configure_maxsize(self):
        original = get_cache().maxsize
        try:
            configure_cache(maxsize=7)
            assert get_cache().maxsize == 7
        finally:
            configure_cache(maxsize=original)
