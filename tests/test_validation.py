"""KS goodness-of-fit machinery and ASCII charts."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.plotting import ascii_chart
from repro.analysis.validation import (
    empirical_cdf,
    ks_pvalue,
    ks_statistic,
    ks_test,
    qq_points,
)
from repro.distributions import Exponential, Weibull
from repro.units import DAY, HOUR


class TestKSStatistic:
    def test_perfect_fit_small_statistic(self):
        d = Exponential(1.0 / HOUR)
        rng = np.random.default_rng(0)
        xs = d.sample(rng, size=5000)
        stat = ks_statistic(xs, d)
        assert stat < 0.03  # ~1.63/sqrt(n) at 1% level

    def test_wrong_law_large_statistic(self):
        rng = np.random.default_rng(1)
        xs = Weibull.from_mtbf(HOUR, 0.4).sample(rng, size=5000)
        stat = ks_statistic(xs, Exponential(1.0 / HOUR))
        assert stat > 0.1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ks_statistic([], Exponential(1.0))


class TestKSPValue:
    def test_known_reference_value(self):
        # Kolmogorov distribution: P(sqrt(n) D > 1.3581) ~ 0.05
        n = 10_000
        d = 1.3581 / math.sqrt(n)
        assert ks_pvalue(d, n) == pytest.approx(0.05, abs=0.01)

    def test_bounds(self):
        assert ks_pvalue(0.0, 100) == 1.0
        assert ks_pvalue(1.0, 100) < 1e-10

    def test_agrees_with_scipy(self):
        from scipy.stats import kstest

        d = Exponential(1.0)
        rng = np.random.default_rng(2)
        xs = d.sample(rng, size=2000)
        ours = ks_pvalue(ks_statistic(xs, d), len(xs))
        ref = kstest(xs, lambda t: np.asarray(d.cdf(t))).pvalue
        assert ours == pytest.approx(ref, abs=0.03)


class TestKSTest:
    def test_accepts_correct_law(self):
        d = Weibull.from_mtbf(DAY, 0.7)
        rng = np.random.default_rng(3)
        assert ks_test(d.sample(rng, size=3000), d)

    def test_rejects_wrong_law(self):
        rng = np.random.default_rng(4)
        xs = Weibull.from_mtbf(DAY, 0.4).sample(rng, size=3000)
        assert not ks_test(xs, Exponential(1.0 / DAY))

    def test_trace_generator_samples_the_right_law(self):
        """End-to-end: inter-failure gaps in a generated trace (minus
        downtime) follow the input distribution."""
        from repro.traces import generate_failure_times

        d = Weibull.from_mtbf(HOUR, 0.7)
        rng = np.random.default_rng(5)
        times = generate_failure_times(d, 4000 * HOUR, rng, downtime=60.0)
        gaps = np.diff(times) - 60.0
        assert ks_test(gaps, d)


class TestHelpers:
    def test_empirical_cdf(self):
        f = empirical_cdf([1.0, 2.0, 3.0, 4.0], [0.5, 2.0, 10.0])
        assert np.allclose(f, [0.0, 0.5, 1.0])

    def test_qq_points_identity_for_good_fit(self):
        d = Exponential(1.0)
        rng = np.random.default_rng(6)
        theo, emp = qq_points(d.sample(rng, size=20_000), d, n_points=20)
        # interior quantiles line up
        assert np.allclose(theo[2:-2], emp[2:-2], rtol=0.1)


class TestAsciiChart:
    def test_renders_markers_and_legend(self):
        text = ascii_chart(
            [1, 2, 3],
            {"young": [1.0, 1.1, 1.3], "dp": [1.0, 1.0, 1.05]},
            width=40,
            height=10,
            title="demo",
        )
        assert "demo" in text
        assert "o=young" in text and "x=dp" in text
        assert "o" in text.splitlines()[2]

    def test_nan_points_skipped(self):
        text = ascii_chart([1, 2], {"liu": [1.2, float("nan")]}, width=20, height=5)
        assert "o" in text

    def test_logy(self):
        text = ascii_chart(
            [1, 2], {"s": [1.0, 1000.0]}, width=20, height=5, logy=True
        )
        assert "1000" in text

    def test_validates_input(self):
        with pytest.raises(ValueError):
            ascii_chart([], {})
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"s": [1.0]})
        with pytest.raises(ValueError):
            ascii_chart([1], {"s": [-1.0]}, logy=True)
