"""Hypothesis property tests for the engine and core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dp_nextfailure import dp_next_failure, expected_work_of_schedule
from repro.core.state import PlatformState
from repro.distributions import Exponential, Weibull
from repro.policies.base import PeriodicPolicy
from repro.simulation import simulate_job, simulate_lower_bound
from repro.traces.generation import generate_platform_traces


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    period=st.floats(min_value=100.0, max_value=20_000.0),
    mtbf=st.floats(min_value=1800.0, max_value=200_000.0),
    k=st.floats(min_value=0.4, max_value=1.6),
)
def test_engine_invariants_hold_on_random_traces(seed, period, mtbf, k):
    """On arbitrary Weibull traces: the job completes, the makespan is at
    least the failure-free time plus checkpoints, and the omniscient
    lower bound is never beaten."""
    dist = Weibull.from_mtbf(mtbf, k)
    work, c, r, d = 20_000.0, 300.0, 200.0, 50.0
    horizon = 100 * work
    tr = generate_platform_traces(dist, 2, horizon, downtime=d, seed=seed).for_job(2)
    res = simulate_job(PeriodicPolicy(period), work, tr, c, r, dist)
    assert res.completed
    # tolerate work/period landing a hair above an integer (the engine
    # rightly skips a residual chunk of ~1e-10 work)
    n_chunks = int(np.ceil(work / period * (1 - 1e-12)))
    assert res.makespan >= work + n_chunks * c - 1e-6
    lb = simulate_lower_bound(work, tr, c, r)
    assert lb.makespan <= res.makespan + 1e-6
    assert lb.n_failures <= res.n_failures


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    period=st.floats(min_value=100.0, max_value=20_000.0),
)
def test_makespan_monotone_in_work(seed, period):
    """More work can never finish sooner on the same trace."""
    dist = Exponential(1 / 30_000.0)
    tr = generate_platform_traces(dist, 1, 5e6, downtime=50.0, seed=seed).for_job(1)
    small = simulate_job(PeriodicPolicy(period), 10_000.0, tr, 300.0, 200.0, dist)
    large = simulate_job(PeriodicPolicy(period), 20_000.0, tr, 300.0, 200.0, dist)
    assert large.makespan >= small.makespan - 1e-9


@settings(max_examples=25, deadline=None)
@given(
    mtbf=st.floats(min_value=3600.0, max_value=400_000.0),
    k=st.floats(min_value=0.4, max_value=1.8),
    tau=st.floats(min_value=0.0, max_value=200_000.0),
    n=st.integers(min_value=2, max_value=12),
)
def test_dp_schedule_beats_uniform_splits(mtbf, k, tau, n):
    """The DP schedule's expected work dominates every uniform split of
    the same work on the same grid."""
    dist = Weibull.from_mtbf(mtbf, k)
    work, c = 18_000.0, 600.0
    u = work / 30
    state = PlatformState([tau], dist)
    res = dp_next_failure(work, c, dist, u=u, tau=tau)
    for parts in {1, 2, 3, 5, 6, 10, 15, 30} & set(range(1, n + 20)):
        uniform = [work / parts] * parts
        # only grid-feasible splits are a fair comparison
        if abs((work / parts) / u - round((work / parts) / u)) > 1e-9:
            continue
        assert res.expected_work >= expected_work_of_schedule(
            uniform, c, state
        ) * (1 - 1e-9)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    n_units=st.integers(min_value=1, max_value=6),
)
def test_failure_counts_consistent(seed, n_units):
    """Every failure the engine counts exists in the trace window."""
    dist = Exponential(1 / 5_000.0)
    tr = generate_platform_traces(dist, n_units, 4e5, downtime=50.0, seed=seed).for_job(
        n_units
    )
    res = simulate_job(PeriodicPolicy(2_000.0), 30_000.0, tr, 300.0, 200.0, dist)
    in_window = int(np.sum(tr.times <= res.makespan + 1.0))
    assert res.n_failures <= in_window


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_lower_bound_optimal_vs_oracle_periods(seed):
    """LowerBound dominates even the best period chosen in hindsight."""
    dist = Weibull.from_mtbf(20_000.0, 0.7)
    tr = generate_platform_traces(dist, 1, 5e6, downtime=50.0, seed=seed).for_job(1)
    lb = simulate_lower_bound(50_000.0, tr, 300.0, 200.0)
    best = min(
        simulate_job(PeriodicPolicy(p), 50_000.0, tr, 300.0, 200.0, dist).makespan
        for p in (1_000.0, 3_000.0, 10_000.0, 50_000.0)
    )
    assert lb.makespan <= best + 1e-6
