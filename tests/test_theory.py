"""Theorem 1 / Proposition 5 closed forms."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theory import (
    _psi,
    expected_makespan_optimal,
    expected_tlost_exponential,
    expected_trec,
    optimal_num_chunks,
    optimal_num_chunks_parallel,
)
from repro.units import DAY, HOUR


class TestTlost:
    def test_matches_lemma1_direct_formula(self):
        lam, x = 1 / DAY, 4 * HOUR
        expected = 1 / lam - x / (math.exp(lam * x) - 1)
        assert expected_tlost_exponential(lam, x) == pytest.approx(expected)

    def test_zero_window(self):
        assert expected_tlost_exponential(1.0, 0.0) == 0.0

    def test_small_window_half(self):
        assert expected_tlost_exponential(1e-12, 10.0) == pytest.approx(5.0)


class TestTrec:
    def test_consistency_with_proposition1(self):
        """E[Trec] = D + R + ((1-Psuc(R))/Psuc(R)) (D + E[Tlost(R)])."""
        lam, d, r = 1 / DAY, 60.0, 600.0
        psuc = math.exp(-lam * r)
        direct = d + r + (1 - psuc) / psuc * (d + expected_tlost_exponential(lam, r))
        assert expected_trec(lam, d, r) == pytest.approx(direct, rel=1e-12)

    def test_reduces_to_d_plus_r_for_reliable_recovery(self):
        assert expected_trec(1e-12, 60.0, 600.0) == pytest.approx(660.0, rel=1e-6)


class TestOptimalChunks:
    def test_is_local_minimum_of_psi(self):
        lam, work, c = 1 / DAY, 20 * DAY, 600.0
        k = optimal_num_chunks(lam, work, c)
        val = _psi(k, lam, work, c)
        assert val <= _psi(k + 1, lam, work, c)
        if k > 1:
            assert val <= _psi(k - 1, lam, work, c)

    def test_beats_exhaustive_search(self):
        lam, work, c = 1 / HOUR, 10 * HOUR, 300.0
        k = optimal_num_chunks(lam, work, c)
        best = min(range(1, 200), key=lambda kk: _psi(kk, lam, work, c))
        assert k == best

    def test_single_chunk_for_tiny_work(self):
        assert optimal_num_chunks(1 / DAY, 10.0, 600.0) == 1

    def test_more_failures_more_chunks(self):
        work, c = 20 * DAY, 600.0
        k_rare = optimal_num_chunks(1 / (7 * DAY), work, c)
        k_freq = optimal_num_chunks(1 / HOUR, work, c)
        assert k_freq > k_rare

    def test_daly_first_order_limit(self):
        """For lam*C -> 0, the optimal chunk approaches sqrt(2 C / lam)."""
        lam, c = 1 / (1000 * DAY), 600.0
        work = 2000 * DAY
        k = optimal_num_chunks(lam, work, c)
        chunk = work / k
        assert chunk == pytest.approx(math.sqrt(2 * c / lam), rel=0.02)

    @settings(max_examples=50, deadline=None)
    @given(
        mtbf=st.floats(min_value=1800.0, max_value=30 * DAY),
        work=st.floats(min_value=HOUR, max_value=100 * DAY),
        c=st.floats(min_value=10.0, max_value=3600.0),
    )
    def test_property_neighbors_never_better(self, mtbf, work, c):
        lam = 1.0 / mtbf
        k = optimal_num_chunks(lam, work, c)
        assert k >= 1
        for kk in (k - 1, k + 1):
            if kk >= 1:
                assert _psi(k, lam, work, c) <= _psi(kk, lam, work, c) * (1 + 1e-12)


class TestExpectedMakespan:
    def test_formula_shape(self):
        lam, work, c, d, r = 1 / DAY, 20 * DAY, 600.0, 60.0, 600.0
        plan = expected_makespan_optimal(lam, work, c, d, r)
        k = plan.num_chunks
        expected = (
            k * math.exp(lam * r) * (1 / lam + d) * (math.exp(lam * (work / k + c)) - 1)
        )
        assert plan.expected_makespan == pytest.approx(expected)
        assert plan.chunk_size == pytest.approx(work / k)

    def test_makespan_exceeds_work_plus_overheads(self):
        lam, work, c, d, r = 1 / DAY, 20 * DAY, 600.0, 60.0, 600.0
        plan = expected_makespan_optimal(lam, work, c, d, r)
        assert plan.expected_makespan > work + plan.num_chunks * c

    def test_reliable_limit_is_work_plus_checkpoints(self):
        lam = 1e-12
        plan = expected_makespan_optimal(lam, DAY, 600.0, 60.0, 600.0)
        assert plan.num_chunks == 1
        assert plan.expected_makespan == pytest.approx(DAY + 600.0, rel=1e-4)


class TestParallel:
    def test_macro_processor_reduction(self):
        lam, p = 1 / (125 * 365 * DAY), 1024
        work_p, c_p = 8 * DAY, 600.0
        assert optimal_num_chunks_parallel(lam, p, work_p, c_p) == optimal_num_chunks(
            p * lam, work_p, c_p
        )

    def test_more_processors_shorter_chunks(self):
        lam = 1 / (125 * 365 * DAY)
        work = 1000 * 365 * DAY
        k_small = optimal_num_chunks_parallel(lam, 1024, work / 1024, 600.0)
        k_big = optimal_num_chunks_parallel(lam, 16384, work / 16384, 600.0)
        chunk_small = work / 1024 / k_small
        chunk_big = work / 16384 / k_big
        assert chunk_big < chunk_small
