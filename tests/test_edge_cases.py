"""Edge cases across modules: tiny workloads, extreme parameters,
degenerate configurations."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import dp_next_failure, expected_makespan_optimal
from repro.core.dp_makespan import dp_makespan
from repro.distributions import Deterministic, Exponential, Weibull
from repro.policies.base import PeriodicPolicy
from repro.simulation import simulate_job, simulate_lower_bound
from repro.traces.generation import PlatformTraces
from repro.units import DAY, HOUR


class TestTinyWork:
    def test_work_smaller_than_quantum(self):
        r = dp_next_failure(10.0, 600.0, Exponential(1 / DAY), u=600.0)
        assert r.chunks.size == 1
        assert r.chunks[0] == pytest.approx(600.0)  # rounded up to 1 quantum

    def test_single_quantum_makespan(self):
        res = dp_makespan(600.0, 600.0, 60.0, 600.0, Exponential(1 / DAY), u=600.0)
        assert res.first_chunk == pytest.approx(600.0)
        assert res.expected_makespan > 1200.0

    def test_zero_work_theorem(self):
        plan = expected_makespan_optimal(1 / DAY, 0.0, 600.0, 60.0, 600.0)
        assert plan.num_chunks == 1

    def test_simulator_tiny_job(self):
        tr = PlatformTraces([np.array([])], 1e9, 50.0).for_job(1)
        res = simulate_job(
            PeriodicPolicy(1000.0), 1.0, tr, 100.0, 80.0, Exponential(1.0)
        )
        assert res.makespan == pytest.approx(101.0)


class TestExtremeFailureRates:
    def test_near_certain_failure_job_still_terminates(self):
        """Deterministic failures every 500 s with C=100: only chunks
        under 400 s can ever commit; the job must still finish."""
        d = Deterministic(500.0)
        times = np.cumsum(np.full(200, 500.0 + 50.0))
        tr = PlatformTraces([times], 1e9, 50.0).for_job(1)
        res = simulate_job(PeriodicPolicy(300.0), 1200.0, tr, 100.0, 80.0, d)
        assert res.completed
        assert res.n_failures >= 1

    def test_chunk_longer_than_every_window_never_finishes(self):
        """A period too long for any failure-free window hits the
        max_makespan guard instead of looping forever."""
        d = Deterministic(500.0)
        times = np.cumsum(np.full(2000, 550.0))
        tr = PlatformTraces([times], 1e9, 50.0).for_job(1)
        res = simulate_job(
            PeriodicPolicy(450.0),  # 450 + 100 = 550 > every window
            1200.0,
            tr,
            100.0,
            80.0,
            d,
            max_makespan=100_000.0,
        )
        assert not res.completed
        assert math.isinf(res.makespan)

    def test_lower_bound_survives_dense_failures(self):
        times = np.cumsum(np.full(5000, 130.0))
        tr = PlatformTraces([times], 1e9, 50.0).for_job(1)
        res = simulate_lower_bound(100.0, tr, 100.0, 80.0)
        assert res.completed


class TestWeibullExtremes:
    @pytest.mark.parametrize("k", [0.1, 0.15])
    def test_heavy_tail_dp_is_finite(self, k):
        d = Weibull.from_mtbf(DAY, k)
        r = dp_next_failure(6 * HOUR, 600.0, d, u=900.0, tau=HOUR)
        assert np.isfinite(r.expected_work)
        assert r.expected_work > 0

    def test_nextfailure_splits_even_at_tiny_hazard(self):
        """A characteristic of the NextFailure objective: checkpoints
        only cost failure *exposure* (not makespan), while splitting
        earns partial credit on failure — so it checkpoints more than
        the makespan optimum even when failures are unlikely.  (This is
        why the paper's Tables 2-3 show DPNextFailure slightly behind
        the optimum at the one-week MTBF.)"""
        d = Weibull.from_mtbf(DAY, 0.3)
        r = dp_next_failure(6 * HOUR, 600.0, d, u=900.0, tau=1000 * DAY)
        assert float(d.psuc(6 * HOUR + 600.0, 1000 * DAY)) > 0.99
        assert r.chunks.size > 2  # splits despite near-certain survival

    def test_nextfailure_chunks_decrease_along_schedule(self):
        """Later chunks carry more accumulated exposure, so the optimal
        NextFailure schedule is non-increasing (for non-increasing or
        flat hazards after the planning point)."""
        for d, tau in (
            (Weibull.from_mtbf(DAY, 0.3), 1000 * DAY),
            (Weibull.from_mtbf(10 * DAY, 3.0), 0.0),
            (Exponential(1 / DAY), 0.0),
        ):
            r = dp_next_failure(6 * HOUR, 600.0, d, u=900.0, tau=tau)
            assert np.all(np.diff(r.chunks) <= 1e-9)


class TestNumericalRobustness:
    def test_dp_with_huge_mtbf_no_overflow(self):
        d = Exponential(1e-12)
        r = dp_next_failure(DAY, 600.0, d, u=3600.0)
        assert np.isfinite(r.expected_work)
        assert r.expected_work == pytest.approx(DAY, rel=1e-3)

    def test_theorem1_extreme_rates(self):
        for mtbf in (1e2, 1e10):
            plan = expected_makespan_optimal(1 / mtbf, DAY, 600.0, 60.0, 600.0)
            assert np.isfinite(plan.expected_makespan)
            assert plan.expected_makespan >= DAY

    def test_periodic_policy_validates(self):
        with pytest.raises(ValueError):
            PeriodicPolicy(0.0)
