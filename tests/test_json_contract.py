"""The CLI JSON contract: stdout is always one valid envelope.

Parametrized over every subcommand (including failure paths): stdout
must parse as a single JSON document and satisfy the documented
envelope schema (``docs/service.md``).  The one exemption —
``repro lint --format sarif`` — must still be a single valid JSON
document, just a SARIF one.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.cli import main
from repro.service.envelope import (
    SCHEMA,
    envelope,
    error_envelope,
    from_jsonable,
    jsonable,
    validate_envelope,
)

_TINY = ["--work", "2h", "--mtbf", "4h", "--traces", "1",
         "--policies", "young"]

# absolute so the cases survive the per-test chdir into tmp_path
_UNITS_PY = str(Path(__file__).resolve().parent.parent
                / "src" / "repro" / "units.py")

# (argv, expected exit code) — every subcommand that can run without a
# daemon, plus representative failure paths.
_CASES = [
    (["plan"], 0),
    (["plan", "--work", "1h", "--mtbf", "1d"], 0),
    (["mtbf", "--p", "64"], 0),
    (["simulate", "--traces", "1", "--work", "2h", "--mtbf", "4h",
      "--policy", "young"], 0),
    (["experiment", "fig1"], 0),
    (["lint", _UNITS_PY], 0),
    (["lint", "--list-rules"], 0),
    (["run", *_TINY], 0),
    (["compare", *_TINY, "--policies", "young,dalylow"], 0),
    (["benchmark", *_TINY], 0),
    (["store"], 0),
    (["store", "--wipe-solves"], 0),
    (["store", "--wipe"], 0),
    (["sweep", *_TINY, "--grid", "checkpoint=5m,10m"], 0),
    (["sweep", *_TINY, "--grid", "checkpoint=5m", "--no-sweep-plan"], 0),
    # failure paths: still exactly one envelope on stdout
    (["run", "--override", "mtbf=-1"], 2),
    (["run", "--override", "nosuchfield=1"], 2),
    (["sweep", *_TINY, "--grid", "nosuchfield=1"], 2),
    (["sweep", *_TINY, "--grid", "checkpoint=5m", "--submit",
      "--endpoint", "http://127.0.0.1:1"], 2),
    (["submit", *_TINY, "--endpoint", "http://127.0.0.1:1"], 2),
    (["status", "job-000001", "--endpoint", "http://127.0.0.1:1"], 2),
    (["result", "job-000001", "--endpoint", "http://127.0.0.1:1"], 2),
]


@pytest.mark.parametrize(
    "argv,expected",
    _CASES,
    ids=[" ".join(c[0][:2]) + f"#{i}" for i, c in enumerate(_CASES)],
)
def test_stdout_is_one_valid_envelope(argv, expected, capsys, tmp_path,
                                      monkeypatch):
    monkeypatch.chdir(tmp_path)  # store/cache paths land in tmp
    monkeypatch.setenv("PYTHONPATH", "")
    rc = main(argv)
    out = capsys.readouterr().out
    env = json.loads(out)  # must parse as ONE document
    assert validate_envelope(env) == []
    assert env["schema"] == SCHEMA
    assert rc == expected
    assert env["exit_code"] == expected
    assert env["ok"] is (expected == 0)
    if expected != 0:
        assert env["error"]["type"]
        assert env["error"]["message"]


def test_sarif_exemption_is_still_valid_json(capsys):
    assert main(["lint", _UNITS_PY, "--format", "sarif"]) == 0
    doc = json.loads(capsys.readouterr().out)
    # a SARIF document, not an envelope
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["tool"]["driver"]["name"] == "reprolint"


def test_store_envelope_reports_solvecache(capsys, tmp_path, monkeypatch):
    """`repro store` surfaces the persistent solve-cache tier: entry
    counts, byte usage and lifetime hit counters, plus the wipe knobs."""
    monkeypatch.chdir(tmp_path)
    rc = main(["store"])
    env = json.loads(capsys.readouterr().out)
    assert rc == 0
    solvecache = env["data"]["solvecache"]
    assert {"root", "entries", "bytes", "max_bytes", "kinds",
            "lifetime"} <= set(solvecache)
    assert {"hits", "misses", "stores", "evictions",
            "hit_rate"} <= set(solvecache["lifetime"])

    rc = main(["store", "--wipe-solves"])
    env = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert env["data"]["wiped_solves"] == 0  # empty tier: nothing to drop
    assert "wiped" not in env["data"]  # result store untouched


def test_lint_findings_exit_one_with_envelope(capsys, tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")  # missing future import, R1 random
    rc = main(["lint", str(bad), "--no-cache"])
    env = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert env["ok"] is False
    assert env["exit_code"] == 1
    assert env["data"]["diagnostics"]


class TestEnvelopeHelpers:
    def test_envelope_shape(self):
        env = envelope("x", {"a": 1})
        assert validate_envelope(env) == []
        assert env["command"] == "x"

    def test_error_envelope_shape(self):
        env = error_envelope("x", "ValueError", "boom")
        assert validate_envelope(env) == []
        assert env["exit_code"] == 2
        assert env["error"] == {"type": "ValueError", "message": "boom"}

    @pytest.mark.parametrize(
        "mutation",
        [
            lambda e: e.pop("schema"),
            lambda e: e.update(schema="other/v9"),
            lambda e: e.update(ok="yes"),
            lambda e: e.update(ok=False),  # ok false but error None
            lambda e: e.update(exit_code=1),  # ok true but nonzero
            lambda e: e.update(error={"type": "X"}),  # ok true with error
        ],
    )
    def test_validate_rejects(self, mutation):
        env = envelope("x", {})
        mutation(env)
        assert validate_envelope(env) != []

    def test_nonfinite_floats_round_trip(self):
        values = {"nan": math.nan, "inf": math.inf, "ninf": -math.inf,
                  "plain": 0.1}
        encoded = jsonable(values)
        assert encoded["nan"] == "NaN"
        assert encoded["inf"] == "Infinity"
        # strict JSON: the encoded form survives json.dumps(allow_nan=False)
        text = json.dumps(encoded, allow_nan=False)
        decoded = from_jsonable(json.loads(text))
        assert math.isnan(decoded["nan"])
        assert decoded["inf"] == math.inf
        assert decoded["ninf"] == -math.inf
        assert decoded["plain"] == 0.1
