"""Failure trace generation: semantics, coherence, reproducibility."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Exponential, Weibull
from repro.traces import (
    PlatformTraces,
    generate_failure_times,
    generate_platform_traces,
    generate_rejuvenated_platform_traces,
)
from repro.units import DAY, HOUR


class TestSingleTrace:
    def test_within_horizon_and_sorted(self):
        rng = np.random.default_rng(0)
        t = generate_failure_times(Exponential(1 / HOUR), 2 * DAY, rng, downtime=60.0)
        assert np.all(t <= 2 * DAY)
        assert np.all(np.diff(t) > 0)

    def test_gaps_include_downtime(self):
        rng = np.random.default_rng(1)
        t = generate_failure_times(Exponential(1 / 100.0), 50_000.0, rng, downtime=30.0)
        assert np.all(np.diff(t) >= 30.0)

    def test_failure_count_matches_renewal_rate(self):
        rng = np.random.default_rng(2)
        horizon, mtbf, d = 500 * HOUR, HOUR, 0.0
        t = generate_failure_times(Exponential(1 / mtbf), horizon, rng, downtime=d)
        assert len(t) == pytest.approx(horizon / mtbf, rel=0.15)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            generate_failure_times(Exponential(1.0), 0.0, np.random.default_rng(0))

    @settings(max_examples=25, deadline=None)
    @given(
        mtbf=st.floats(min_value=10.0, max_value=1e5),
        seed=st.integers(min_value=0, max_value=2**31),
        k=st.floats(min_value=0.3, max_value=2.0),
    )
    def test_property_trace_valid_for_weibull(self, mtbf, seed, k):
        rng = np.random.default_rng(seed)
        horizon = 20 * mtbf
        t = generate_failure_times(
            Weibull.from_mtbf(mtbf, k), horizon, rng, downtime=mtbf / 100
        )
        assert np.all(t > 0)
        assert np.all(t <= horizon)
        assert np.all(np.diff(t) >= mtbf / 100 - 1e-9)


class TestPlatformTraces:
    def test_reproducible(self):
        a = generate_platform_traces(Exponential(1 / HOUR), 5, DAY, seed=7)
        b = generate_platform_traces(Exponential(1 / HOUR), 5, DAY, seed=7)
        for x, y in zip(a.per_unit, b.per_unit):
            assert np.array_equal(x, y)

    def test_different_seeds_differ(self):
        a = generate_platform_traces(Exponential(1 / HOUR), 3, DAY, seed=1)
        b = generate_platform_traces(Exponential(1 / HOUR), 3, DAY, seed=2)
        assert not all(np.array_equal(x, y) for x, y in zip(a.per_unit, b.per_unit))

    def test_prefix_coherence(self):
        """Traces for a p-unit job are the prefix of the full platform's
        traces (paper Section 4.3)."""
        full = generate_platform_traces(Exponential(1 / HOUR), 8, DAY, seed=3)
        small = full.for_job(3)
        big = full.for_job(8)
        small_events = set(zip(small.times.tolist(), small.units.tolist()))
        big_events = set(
            (t, u) for t, u in zip(big.times.tolist(), big.units.tolist()) if u < 3
        )
        assert small_events == big_events

    def test_merged_sorted(self):
        tr = generate_platform_traces(Exponential(1 / HOUR), 6, DAY, seed=4).for_job(6)
        assert np.all(np.diff(tr.times) >= 0)
        assert tr.units.max() < 6

    def test_for_job_validates(self):
        pt = generate_platform_traces(Exponential(1 / HOUR), 2, DAY, seed=0)
        with pytest.raises(ValueError):
            pt.for_job(3)
        with pytest.raises(ValueError):
            pt.for_job(0)


class TestRejuvenatedTraces:
    def test_single_macro_unit(self):
        pt = generate_rejuvenated_platform_traces(
            Exponential(1 / HOUR), 8, DAY, downtime=60.0, seed=0
        )
        assert pt.n_units == 1

    def test_failure_rate_matches_min_law(self):
        from repro.distributions import Weibull
        from repro.distributions.minimum import MinOfIID

        d = Weibull.from_mtbf(10 * DAY, 0.7)
        p = 16
        horizon = 3000 * DAY
        pt = generate_rejuvenated_platform_traces(d, p, horizon, seed=1)
        rate = pt.per_unit[0].size / horizon
        assert rate == pytest.approx(1.0 / MinOfIID(d, p).mean(), rel=0.1)

    def test_exponential_matches_independent_rate(self):
        """Memorylessness: both trace models yield the same platform
        failure rate for Exponential lifetimes."""
        d = Exponential(1 / DAY)
        p, horizon = 8, 2000 * DAY
        merged = generate_platform_traces(d, p, horizon, seed=2).for_job(p)
        rej = generate_rejuvenated_platform_traces(d, p, horizon, seed=3).for_job(1)
        assert merged.times.size == pytest.approx(rej.times.size, rel=0.1)


class TestJobTraces:
    def test_next_event_index(self):
        pt = PlatformTraces([np.array([10.0, 20.0, 30.0])], horizon=100.0, downtime=1.0)
        tr = pt.for_job(1)
        assert tr.next_event_index(5.0) == 0
        assert tr.next_event_index(10.0) == 1  # strictly after
        assert tr.next_event_index(25.0) == 2
        assert tr.next_event_index(99.0) == 3

    def test_lifetime_starts(self):
        pt = PlatformTraces(
            [np.array([10.0]), np.array([50.0]), np.array([])],
            horizon=100.0,
            downtime=5.0,
        )
        tr = pt.for_job(3)
        starts = tr.lifetime_starts_at(t0=30.0)
        assert starts[0] == pytest.approx(15.0)  # failed at 10, downtime 5
        assert starts[1] == 0.0  # fails later, lifetime began at 0
        assert starts[2] == 0.0  # never fails

    def test_downtime_in_progress_at_submission(self):
        # failure at 29 with downtime 5: the unit is still down at t0=30
        # and its lifetime starts at 34, after the submission time
        pt = PlatformTraces([np.array([29.0])], horizon=100.0, downtime=5.0)
        starts = pt.for_job(1).lifetime_starts_at(t0=30.0)
        assert starts[0] == pytest.approx(34.0)
