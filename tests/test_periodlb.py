"""PeriodLB search and factor grid."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Exponential
from repro.policies.periodlb import best_period_search, candidate_factors
from repro.traces.generation import generate_platform_traces
from repro.units import DAY, HOUR


class TestCandidateFactors:
    def test_symmetric_grid(self):
        f = candidate_factors(n_linear=5, n_geometric=4)
        assert 1.0 in f
        for x in f:
            assert np.any(np.isclose(f, 1.0 / x, rtol=1e-12))

    def test_sorted_unique(self):
        f = candidate_factors()
        assert np.all(np.diff(f) > 0)

    def test_paper_sized_grid(self):
        # 2*(180+60)+1 candidates minus exact duplicates (e.g. 1.1 is
        # both 1+0.05*2 and 1.1^1)
        f = candidate_factors(n_linear=180, n_geometric=60)
        assert 2 * 180 + 2 * 60 - 5 <= f.size <= 2 * 180 + 2 * 60 + 1
        assert f.min() < 0.01 and f.max() > 100.0


class TestSearch:
    def test_finds_sweep_minimum(self):
        dist = Exponential(1 / DAY)
        traces = [
            generate_platform_traces(dist, 1, 100 * DAY, downtime=60.0, seed=i).for_job(1)
            for i in range(6)
        ]
        res = best_period_search(
            base_period=HOUR,  # deliberately bad base
            work_time=2 * DAY,
            job_traces=traces,
            checkpoint=600.0,
            recovery=600.0,
            dist=dist,
            platform_mtbf=DAY,
            factors=candidate_factors(n_linear=4, n_geometric=6),
        )
        idx = int(np.argmin(res.mean_makespans))
        assert res.best_period == pytest.approx(res.periods[idx])
        assert res.best_mean_makespan == pytest.approx(res.mean_makespans[idx])

    def test_search_moves_toward_optimum(self):
        """Starting from a period 4x too short, the searched best period
        should move toward the Young/Daly optimum sqrt(2 C M)."""
        import math

        dist = Exponential(1 / DAY)
        traces = [
            generate_platform_traces(dist, 1, 200 * DAY, downtime=60.0, seed=i).for_job(1)
            for i in range(10)
        ]
        opt = math.sqrt(2 * 600.0 * DAY)
        res = best_period_search(
            base_period=opt / 4,
            work_time=4 * DAY,
            job_traces=traces,
            checkpoint=600.0,
            recovery=600.0,
            dist=dist,
            platform_mtbf=DAY,
            factors=candidate_factors(n_linear=6, n_geometric=10),
        )
        assert res.best_period > opt / 3
        assert res.best_period < opt * 3
