"""Documentation coverage: every public item carries a docstring."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_MODULES = {"repro.__main__"}


def _public_modules():
    mods = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in SKIP_MODULES or any(
            part.startswith("_") for part in info.name.split(".")[1:]
        ):
            continue
        mods.append(info.name)
    return sorted(mods)


MODULES = _public_modules()


@pytest.mark.parametrize("name", MODULES)
def test_module_docstring(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize("name", MODULES)
def test_public_items_documented(name):
    mod = importlib.import_module(name)
    missing = []
    for attr in getattr(mod, "__all__", []):
        obj = getattr(mod, attr)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (inspect.getdoc(obj) or "").strip():
                missing.append(attr)
            if inspect.isclass(obj):
                for meth_name, meth in inspect.getmembers(obj, inspect.isfunction):
                    if meth_name.startswith("_") or meth_name not in obj.__dict__:
                        continue
                    if not (inspect.getdoc(meth) or "").strip():
                        missing.append(f"{attr}.{meth_name}")
    assert not missing, f"{name}: undocumented public items {missing}"


def test_every_package_module_is_reachable():
    """Guard against orphaned modules: everything under src/repro should
    be importable (catches syntax errors in rarely-imported files)."""
    for name in MODULES:
        importlib.import_module(name)
