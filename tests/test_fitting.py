"""MLE fitting, including hypothesis property tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Exponential, Weibull, fit_weibull_mle
from repro.distributions.fitting import fit_exponential_mle


class TestExponentialMLE:
    def test_recovers_rate(self):
        rng = np.random.default_rng(0)
        lam = 1 / 500.0
        xs = Exponential(lam).sample(rng, size=50_000)
        assert fit_exponential_mle(xs) == pytest.approx(lam, rel=0.03)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_exponential_mle([])
        with pytest.raises(ValueError):
            fit_exponential_mle([1.0, -2.0])


class TestWeibullMLE:
    @pytest.mark.parametrize("k_true", [0.4, 0.7, 1.0, 2.5])
    def test_recovers_shape_and_scale(self, k_true):
        rng = np.random.default_rng(42)
        d = Weibull(lam=1000.0, k=k_true)
        xs = d.sample(rng, size=30_000)
        lam, k = fit_weibull_mle(xs)
        assert k == pytest.approx(k_true, rel=0.05)
        assert lam == pytest.approx(1000.0, rel=0.07)

    def test_rejects_insufficient_data(self):
        with pytest.raises(ValueError):
            fit_weibull_mle([1.0])
        with pytest.raises(ValueError):
            fit_weibull_mle([1.0, 0.0])

    @settings(max_examples=20, deadline=None)
    @given(
        k=st.floats(min_value=0.3, max_value=3.0),
        lam=st.floats(min_value=1.0, max_value=1e6),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_property_fit_is_stable(self, k, lam, seed):
        """On any Weibull sample the fit converges to positive params in
        the right ballpark."""
        rng = np.random.default_rng(seed)
        xs = Weibull(lam, k).sample(rng, size=4000)
        lam_hat, k_hat = fit_weibull_mle(xs)
        assert lam_hat > 0 and k_hat > 0
        assert k_hat == pytest.approx(k, rel=0.35)
