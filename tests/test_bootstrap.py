"""Bootstrap confidence intervals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bootstrap import BootstrapCI, bootstrap_mean_ci, degradation_cis


class TestBootstrapMean:
    def test_contains_true_mean_usually(self):
        rng = np.random.default_rng(0)
        hits = 0
        for i in range(40):
            xs = rng.normal(5.0, 2.0, size=200)
            ci = bootstrap_mean_ci(xs, seed=i)
            if ci.lo <= 5.0 <= ci.hi:
                hits += 1
        assert hits >= 33  # ~95% coverage with slack

    def test_interval_ordering(self):
        ci = bootstrap_mean_ci([1.0, 2.0, 3.0, 4.0], seed=1)
        assert ci.lo <= ci.mean <= ci.hi

    def test_nan_dropped(self):
        ci = bootstrap_mean_ci([1.0, np.nan, 3.0], seed=2)
        assert ci.mean == pytest.approx(2.0)

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([np.nan])

    def test_narrower_with_more_data(self):
        rng = np.random.default_rng(3)
        small = bootstrap_mean_ci(rng.normal(0, 1, 30), seed=4)
        large = bootstrap_mean_ci(rng.normal(0, 1, 3000), seed=4)
        assert (large.hi - large.lo) < (small.hi - small.lo)

    def test_overlap(self):
        a = BootstrapCI(1.0, 0.9, 1.1, 0.95)
        b = BootstrapCI(1.05, 1.0, 1.2, 0.95)
        c = BootstrapCI(2.0, 1.8, 2.2, 0.95)
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestDegradationCIs:
    def test_separates_clear_winner(self):
        rng = np.random.default_rng(5)
        n = 200
        best = 100.0 + rng.normal(0, 1.0, n)
        worse = 120.0 + rng.normal(0, 1.0, n)
        cis = degradation_cis({"good": best, "bad": worse})
        assert cis["good"].hi < cis["bad"].lo

    def test_lower_bound_excluded_from_best(self):
        spans = {
            "A": np.array([100.0, 110.0]),
            "LowerBound": np.array([80.0, 90.0]),
        }
        cis = degradation_cis(spans)
        assert cis["A"].mean == pytest.approx(1.0)
        assert cis["LowerBound"].mean < 1.0
