"""Scenario service: spec signatures, store, queue, daemon round-trips.

The acceptance properties of the PR-6 service live here:

- a result submitted through the daemon equals a direct in-process run
  of the same spec, *bit for bit* under canonical JSON;
- re-submitting an archived signature is served from the store
  (state ``cached``) with the hit counter visible in the status JSON;
- serialization round-trips :class:`ScenarioResult` exactly, including
  NaN makespans of infeasible policies.
"""

from __future__ import annotations

import json
import math
import threading

import numpy as np
import pytest

from repro.service.envelope import dumps, jsonable
from repro.service.queue import ExecutionOptions, JobQueue
from repro.service.serialize import (
    scenario_result_from_dict,
    scenario_result_to_dict,
)
from repro.service.spec import ScenarioSpec, SpecError, policy_from_name
from repro.service.store import ResultStore, store_version

TINY = dict(work=7200.0, mtbf=14400.0, n_traces=2,
            policies=("young", "dalylow"))


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / ".repro-service")


# ----------------------------------------------------------------------
# spec
# ----------------------------------------------------------------------


class TestScenarioSpec:
    def test_roundtrip_canonical(self):
        spec = ScenarioSpec(**TINY)
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.canonical_json() == spec.canonical_json()

    def test_signature_is_stable_and_spec_sensitive(self):
        a = ScenarioSpec(**TINY)
        b = ScenarioSpec(**{**TINY, "seed": 1})
        assert a.signature() == ScenarioSpec(**TINY).signature()
        assert a.signature() != b.signature()
        assert len(a.signature()) == 40

    def test_signature_salted_with_code_version(self):
        spec = ScenarioSpec(**TINY)
        preimage_version = store_version()
        assert preimage_version in (store_version(),)  # memoized
        # the signature is not just the canonical JSON hash: the salt
        # must appear in the preimage (structural property)
        import hashlib

        unsalted = hashlib.sha256(
            spec.canonical_json().encode()
        ).hexdigest()[:40]
        assert spec.signature() != unsalted

    def test_shape_canonicalized_away_for_exponential(self):
        a = ScenarioSpec(dist="exponential", shape=0.7, **TINY)
        b = ScenarioSpec(dist="exponential", shape=1.5, **TINY)
        assert a.signature() == b.signature()
        assert "shape" not in a.to_dict()

    def test_policies_accept_comma_string(self):
        spec = ScenarioSpec.from_dict({"policies": "young,optexp"})
        assert spec.policies == ("young", "optexp")

    @pytest.mark.parametrize(
        "raw",
        [
            {"mtbf": -1.0},
            {"dist": "lognormal"},
            {"policies": []},
            {"policies": ["nope"]},
            {"policies": ["period:abc"]},
            {"p": 0},
            {"n_traces": 0},
            {"horizon": -5.0},
            {"nosuch": 1},
            {"p": 1.5},
        ],
    )
    def test_invalid_specs_raise(self, raw):
        with pytest.raises(SpecError):
            ScenarioSpec.from_dict(raw)

    def test_policy_from_name_period(self):
        policy = policy_from_name("period:7200")
        assert policy.period == 7200.0
        with pytest.raises(SpecError):
            policy_from_name("period:-1")

    def test_execution_knobs_not_in_signature(self):
        # jobs/use_cache/... never appear in the spec — two submissions
        # differing only in execution mode share one archived result
        assert not (set(ExecutionOptions.__dataclass_fields__)
                    & set(ScenarioSpec._FIELD_ORDER))

    def test_split_overhead_platform(self):
        spec = ScenarioSpec(**{**TINY, "checkpoint": 100.0,
                               "recovery": 200.0})
        platform = spec.build_platform()
        assert platform.checkpoint == 100.0
        assert platform.recovery == 200.0


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------


class TestSerialization:
    def _result(self):
        return ScenarioSpec(**TINY).run()

    def test_round_trip_bit_identity(self):
        result = self._result()
        doc = scenario_result_to_dict(result)
        # the document must survive strict JSON (the wire format)
        wire = dumps(jsonable(doc))
        again = scenario_result_from_dict(json.loads(wire))
        for name, spans in result.makespans.items():
            np.testing.assert_array_equal(spans, again.makespans[name])
            assert again.makespans[name].dtype == np.float64
        assert again.details.keys() == result.details.keys()
        for name, details in result.details.items():
            assert [d.makespan for d in details] == \
                [d.makespan for d in again.details[name]]
        assert again.work_time == result.work_time
        assert again.infeasible == result.infeasible

    def test_nan_and_none_survive(self):
        result = self._result()
        result.makespans["Young"][0] = math.nan
        result.details["Young"][1] = None
        result.best_period = math.nan
        doc = json.loads(dumps(jsonable(scenario_result_to_dict(result))))
        again = scenario_result_from_dict(doc)
        assert math.isnan(again.makespans["Young"][0])
        assert again.details["Young"][1] is None
        assert math.isnan(again.best_period)

    def test_foreign_format_rejected(self):
        with pytest.raises(ValueError):
            scenario_result_from_dict({"format": "something/else"})


# ----------------------------------------------------------------------
# store
# ----------------------------------------------------------------------


class TestResultStore:
    def test_put_get_and_hit_counter(self, store):
        spec = ScenarioSpec(**TINY)
        sig = spec.signature()
        assert store.get(sig) is None
        store.put(sig, spec.to_dict(), {"format": "repro.result/1"})
        assert store.peek(sig).hits == 0  # peek never counts
        assert store.get(sig).hits == 1
        assert store.get(sig).hits == 2
        assert store.stats()["entries"] == 1
        assert store.stats()["total_hits"] == 2

    def test_put_is_idempotent(self, store):
        store.put("ab" * 20, {"a": 1}, {"r": 1})
        first = store.peek("ab" * 20)
        store.put("ab" * 20, {"a": 2}, {"r": 2})
        assert store.peek("ab" * 20).result == first.result

    def test_rooted_under_code_version(self, store):
        assert store.root.name == store_version()

    def test_corrupt_entry_is_a_miss(self, store):
        store.put("cd" * 20, {}, {"r": 1})
        path = store._entry_path("cd" * 20)
        path.write_text("{not json")
        assert store.get("cd" * 20) is None

    def test_wipe(self, store):
        store.put("ab" * 20, {}, {})
        store.put("cd" * 20, {}, {})
        assert store.wipe() == 2
        assert store.stats()["entries"] == 0


# ----------------------------------------------------------------------
# queue
# ----------------------------------------------------------------------


class TestJobQueue:
    def test_submit_executes_and_archives(self, store):
        q = JobQueue(store=store, workers=1)
        try:
            spec = ScenarioSpec(**TINY)
            job = q.submit(spec)
            assert q.wait(job.job_id, timeout=120)
            status = q.status(job.job_id)
            assert status["state"] == "done"
            assert status["progress"]["done"] == status["progress"]["total"] > 0
            doc = q.result(job.job_id)
            assert doc["format"] == "repro.result/1"
            assert store.peek(spec.signature()) is not None
        finally:
            q.shutdown()

    def test_resubmit_is_cached_with_hits(self, store):
        q = JobQueue(store=store, workers=1)
        try:
            spec = ScenarioSpec(**TINY)
            first = q.submit(spec)
            assert q.wait(first.job_id, timeout=120)
            second = q.submit(spec)
            assert second.job_id != first.job_id
            status = q.status(second.job_id)
            assert status["state"] == "cached"
            assert status["cached"] is True
            assert status["store_hits"] == 1
            assert q.result(second.job_id) == q.result(first.job_id)
        finally:
            q.shutdown()

    def test_live_duplicate_coalesces(self, store):
        q = JobQueue(store=store, workers=1)
        try:
            # a job that blocks lets the duplicate arrive while live
            blocker = ScenarioSpec(**TINY)
            release = threading.Event()
            original_run = ScenarioSpec.run

            def slow_run(self, **kwargs):
                release.wait(30)
                return original_run(self, **kwargs)

            ScenarioSpec.run = slow_run  # type: ignore[method-assign]
            try:
                a = q.submit(blocker)
                b = q.submit(blocker)
                assert a.job_id == b.job_id  # coalesced
            finally:
                release.set()
                ScenarioSpec.run = original_run  # type: ignore[method-assign]
            assert q.wait(a.job_id, timeout=120)
        finally:
            q.shutdown()

    def test_unknown_job_raises(self, store):
        q = JobQueue(store=store, workers=1)
        try:
            with pytest.raises(KeyError):
                q.status("job-999999")
            with pytest.raises(KeyError):
                q.result("job-999999")
        finally:
            q.shutdown()

    def test_result_before_done_raises(self, store):
        q = JobQueue(store=store, workers=1)
        try:
            release = threading.Event()
            original_run = ScenarioSpec.run

            def slow_run(self, **kwargs):
                release.wait(30)
                return original_run(self, **kwargs)

            ScenarioSpec.run = slow_run  # type: ignore[method-assign]
            try:
                job = q.submit(ScenarioSpec(**TINY))
                with pytest.raises(LookupError):
                    q.result(job.job_id)
            finally:
                release.set()
                ScenarioSpec.run = original_run  # type: ignore[method-assign]
            q.wait(job.job_id, timeout=120)
        finally:
            q.shutdown()

    def test_unknown_execution_keys_rejected(self):
        with pytest.raises(ValueError):
            ExecutionOptions.from_dict({"threads": 4})

    def test_status_snapshots_are_taken_under_lock(self, store, monkeypatch):
        """status()/jobs() must serialize against worker-side state
        flips: the snapshot dict is built with the job-table lock held,
        so it can never mix fields from two states."""
        from repro.service.queue import JobRecord

        q = JobQueue(store=store, workers=1)
        try:
            job = q.submit(ScenarioSpec(**TINY))
            assert q.wait(job.job_id, timeout=120)
            lock_held: list[bool] = []
            original = JobRecord.to_status_dict

            def observed(self):
                lock_held.append(q._lock.locked())
                return original(self)

            monkeypatch.setattr(JobRecord, "to_status_dict", observed)
            q.status(job.job_id)
            q.jobs()
            assert lock_held and all(lock_held)
        finally:
            q.shutdown()


# ----------------------------------------------------------------------
# batch submit (queue level)
# ----------------------------------------------------------------------


class TestBatchQueue:
    def _grid(self):
        from repro.service.spec import expand_grid

        return expand_grid(dict(TINY), {
            "checkpoint": [300.0, 600.0], "seed": [0, 1],
        })

    def test_submit_batch_groups_runs_and_archives(self, store):
        q = JobQueue(store=store, workers=1)
        try:
            batch = q.submit_batch(self._grid())
            assert batch.plan["n_points"] == 4
            assert batch.plan["n_groups"] == 2  # seed axis splits traces
            assert q.wait_batch(batch.batch_id, timeout=120)
            status = q.batch_status(batch.batch_id)
            assert status["state"] == "done"
            assert status["states"] == {"done": 4}
            assert status["counters"]["scenarios"] == 4
            for job in status["jobs"]:
                assert q.result(job["job_id"])["format"] == "repro.result/1"
        finally:
            q.shutdown()

    def test_batch_results_identical_to_individual_submits(self, store,
                                                           tmp_path):
        from repro.service.serialize import comparable_result_payload

        def canon(doc):
            return json.dumps(comparable_result_payload(doc),
                              sort_keys=True)

        specs = self._grid()
        q = JobQueue(store=store, workers=1)
        try:
            batch = q.submit_batch(specs)
            assert q.wait_batch(batch.batch_id, timeout=120)
            via_batch = [canon(q.result(j)) for j in batch.job_ids]
        finally:
            q.shutdown()
        solo = JobQueue(
            store=ResultStore(tmp_path / "solo-store"), workers=1
        )
        try:
            jobs = [solo.submit(spec) for spec in specs]
            for job in jobs:
                assert solo.wait(job.job_id, timeout=120)
            via_solo = [canon(solo.result(job.job_id)) for job in jobs]
        finally:
            solo.shutdown()
        assert via_batch == via_solo

    def test_resubmitted_batch_is_all_cached(self, store):
        q = JobQueue(store=store, workers=1)
        try:
            first = q.submit_batch(self._grid())
            assert q.wait_batch(first.batch_id, timeout=120)
            again = q.submit_batch(self._grid())
            assert again.plan["cached"] == 4
            assert again.plan["new_jobs"] == 0
            assert again.plan["n_groups"] == 0  # nothing left to execute
            assert q.batch_status(again.batch_id)["state"] == "done"
        finally:
            q.shutdown()

    def test_duplicate_points_coalesce_within_batch(self, store):
        spec = ScenarioSpec(**TINY)
        q = JobQueue(store=store, workers=1)
        try:
            batch = q.submit_batch([spec, spec, spec])
            assert batch.plan["n_points"] == 3
            assert batch.plan["new_jobs"] == 1
            assert batch.plan["coalesced"] == 2
            assert len(batch.point_jobs) == 3
            assert len(set(batch.point_jobs)) == 1
            assert batch.job_ids == [batch.point_jobs[0]]
            assert q.wait_batch(batch.batch_id, timeout=120)
        finally:
            q.shutdown()

    def test_member_failure_marks_batch_failed(self, store, monkeypatch):
        def boom(self, **kwargs):
            raise RuntimeError("solver exploded")

        monkeypatch.setattr(ScenarioSpec, "run", boom)
        q = JobQueue(store=store, workers=1)
        try:
            batch = q.submit_batch(self._grid())
            assert q.wait_batch(batch.batch_id, timeout=120)
            status = q.batch_status(batch.batch_id)
            assert status["state"] == "failed"
            assert status["states"]["failed"] == 4
            job = q.status(batch.job_ids[0])
            assert job["error"] == "RuntimeError: solver exploded"
        finally:
            q.shutdown()

    def test_empty_batch_rejected(self, store):
        q = JobQueue(store=store, workers=1)
        try:
            with pytest.raises(ValueError):
                q.submit_batch([])
            with pytest.raises(KeyError):
                q.batch_status("batch-999999")
        finally:
            q.shutdown()

    def test_no_sweep_plan_batch_still_bit_identical(self, store,
                                                     tmp_path):
        from repro.service.serialize import comparable_result_payload

        specs = self._grid()
        q = JobQueue(store=store, workers=1)
        try:
            batch = q.submit_batch(specs, use_sweep_plan=False)
            assert batch.plan["use_sweep_plan"] is False
            assert q.wait_batch(batch.batch_id, timeout=120)
            a = [json.dumps(comparable_result_payload(q.result(j)),
                            sort_keys=True) for j in batch.job_ids]
        finally:
            q.shutdown()
        planned = JobQueue(
            store=ResultStore(tmp_path / "planned-store"), workers=1
        )
        try:
            other = planned.submit_batch(specs)
            assert planned.wait_batch(other.batch_id, timeout=120)
            b = [json.dumps(comparable_result_payload(planned.result(j)),
                            sort_keys=True) for j in other.job_ids]
        finally:
            planned.shutdown()
        assert a == b


# ----------------------------------------------------------------------
# daemon end-to-end (HTTP over an ephemeral port)
# ----------------------------------------------------------------------


class TestDaemonEndToEnd:
    @pytest.fixture
    def daemon(self, store):
        from repro.service.daemon import ServiceDaemon

        queue = JobQueue(store=store, workers=1)
        d = ServiceDaemon(queue=queue, host="127.0.0.1", port=0)
        d.start()
        yield d
        d.stop()

    @pytest.fixture
    def client(self, daemon):
        from repro.service.client import ServiceClient

        return ServiceClient(endpoint=daemon.endpoint)

    def test_health(self, client):
        env = client.health()
        assert env["ok"] is True
        assert env["data"]["status"] == "ok"

    def test_submit_poll_result_bit_identical_to_direct_run(self, client):
        spec = ScenarioSpec(**TINY)
        env = client.submit(spec.to_dict())
        assert env["ok"] is True
        job_id = env["data"]["job_id"]
        final = client.wait(job_id, timeout=120)
        assert final["data"]["state"] == "done"
        via_daemon = client.result(job_id)["data"]["result"]
        direct = json.loads(dumps(jsonable(
            scenario_result_to_dict(spec.run())
        )))
        # compare the *result* payload; elapsed/n_jobs/counters are run
        # metadata that legitimately differs between executions
        keep = ("format", "makespans", "details", "work_time",
                "best_period", "infeasible")
        assert json.dumps({k: via_daemon[k] for k in keep},
                          sort_keys=True) == \
            json.dumps({k: direct[k] for k in keep}, sort_keys=True)

    def test_resubmit_served_from_store(self, client):
        spec = ScenarioSpec(**TINY)
        first = client.submit(spec.to_dict())
        client.wait(first["data"]["job_id"], timeout=120)
        second = client.submit(spec.to_dict())
        assert second["data"]["state"] == "cached"
        assert second["data"]["store_hits"] == 1
        status = client.status(second["data"]["job_id"])
        assert status["data"]["cached"] is True
        assert status["data"]["store_hits"] == 1

    def test_bad_spec_is_http_400(self, client):
        env = client.submit({"mtbf": -1})
        assert env["ok"] is False
        assert env["exit_code"] == 2
        assert env["error"]["type"] == "SpecError"

    def test_unknown_job_is_http_404(self, client):
        env = client.status("job-999999")
        assert env["ok"] is False
        assert env["error"]["type"] == "NotFound"

    def test_jobs_listing(self, client):
        spec = ScenarioSpec(**TINY)
        env = client.submit(spec.to_dict())
        client.wait(env["data"]["job_id"], timeout=120)
        listing = client.jobs()
        assert listing["ok"] is True
        assert any(j["job_id"] == env["data"]["job_id"]
                   for j in listing["data"]["jobs"])

    def test_stream_reaches_terminal_state(self, client):
        spec = ScenarioSpec(**{**TINY, "n_traces": 1,
                               "policies": ("young",)})
        env = client.submit(spec.to_dict())
        snapshots = list(client.stream(env["data"]["job_id"]))
        assert snapshots
        assert snapshots[-1]["state"] in ("done", "cached")

    def test_store_stats_endpoint(self, client):
        env = client.store_stats()
        assert env["ok"] is True
        assert "entries" in env["data"]

    def test_unix_socket_endpoint(self, store, tmp_path):
        from repro.service.client import ServiceClient
        from repro.service.daemon import ServiceDaemon

        queue = JobQueue(store=store, workers=1)
        d = ServiceDaemon(queue=queue, socket_path=str(tmp_path / "s.sock"))
        d.start()
        try:
            client = ServiceClient(endpoint=d.endpoint)
            assert client.health()["ok"] is True
        finally:
            d.stop()


# ----------------------------------------------------------------------
# daemon batch routes (/v1/batches)
# ----------------------------------------------------------------------


class TestDaemonBatches:
    @pytest.fixture
    def daemon(self, store):
        from repro.service.daemon import ServiceDaemon

        queue = JobQueue(store=store, workers=1)
        d = ServiceDaemon(queue=queue, host="127.0.0.1", port=0)
        d.start()
        yield d
        d.stop()

    @pytest.fixture
    def client(self, daemon):
        from repro.service.client import ServiceClient

        return ServiceClient(endpoint=daemon.endpoint)

    def test_base_grid_expanded_server_side(self, client):
        env = client.submit_batch(
            base=dict(TINY),
            grid={"checkpoint": [300.0, 600.0], "seed": [0, 1]},
        )
        assert env["ok"] is True
        data = env["data"]
        assert data["n_points"] == 4
        assert data["n_groups"] == 2
        final = client.wait_batch(data["batch_id"], timeout=120)
        assert final["data"]["state"] == "done"
        assert final["data"]["counters"]["scenarios"] == 4
        # every member result is fetchable through the job routes
        for job in final["data"]["jobs"]:
            doc = client.result(job["job_id"])["data"]["result"]
            assert doc["format"] == "repro.result/1"

    def test_explicit_spec_list(self, client):
        specs = [dict(TINY), {**TINY, "seed": 1}]
        env = client.submit_batch(specs=specs)
        assert env["ok"] is True
        assert env["data"]["n_points"] == 2
        final = client.wait_batch(env["data"]["batch_id"], timeout=120)
        assert final["data"]["state"] == "done"

    def test_batches_listing(self, client):
        env = client.submit_batch(specs=[dict(TINY)])
        client.wait_batch(env["data"]["batch_id"], timeout=120)
        listing = client.batches()
        assert listing["ok"] is True
        assert any(b["batch_id"] == env["data"]["batch_id"]
                   for b in listing["data"]["batches"])

    def test_empty_body_is_http_400(self, client):
        env = client.request("POST", "/v1/batches", {})
        assert env["ok"] is False
        assert env["exit_code"] == 2

    def test_specs_and_grid_together_rejected(self, client):
        env = client.request("POST", "/v1/batches", {
            "specs": [dict(TINY)], "base": dict(TINY),
            "grid": {"seed": [0]},
        })
        assert env["ok"] is False

    def test_unknown_batch_is_http_404(self, client):
        env = client.batch_status("batch-999999")
        assert env["ok"] is False
        assert env["error"]["type"] == "NotFound"
