"""R12 failing fixture: implicit daemon, swallowed errors, blind waits."""

from __future__ import annotations

import threading


def spawn(target):
    worker = threading.Thread(target=target)  # daemonness left implicit
    worker.start()
    return worker


def drain(jobs):
    failures = 0
    while jobs:
        job = jobs.pop()
        try:
            job()
        except Exception:
            failures += 1  # the error itself is discarded
            continue
    return failures


def shutdown(worker, done):
    worker.join()  # a stuck worker blocks shutdown forever
    done.wait()
