"""R9 passing fixture: every guarded access locked or single-threaded."""

from __future__ import annotations

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = {}  # reprolint: guarded-by=_lock
        self.total = 0

    def add(self, key, value):
        with self._lock:
            self.items[key] = value
            self.total += value

    def bump(self, value):
        with self._lock:
            self.total += value

    def snapshot(self):
        with self._lock:
            return dict(self.items)

    def reset(self):  # reprolint: single-threaded
        self.items = {}
        self.total = 0
