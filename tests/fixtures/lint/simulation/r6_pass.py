"""R6 fixture: the seed threads from the entry point to the sampler."""

from __future__ import annotations

import numpy as np


def sample_failures(dist, rng):
    return dist.sample(rng, 8)


def collect(dist, seed):
    rng = np.random.default_rng(seed)
    return sample_failures(dist, rng)


def driver(dist, seed):
    return collect(dist, seed=seed)
