"""R6 fixture: every seed-flow hazard in a seeded package."""

from __future__ import annotations

import numpy as np


def sample_failures(dist, rng):
    return dist.sample(rng, 8)


def make_generator():
    return np.random.default_rng()


def collect(dist):
    rng = np.random.default_rng(0)
    return sample_failures(dist, rng)


def driver(dist, seed):
    return sample_failures(dist)


def replay(dist, seed):
    seed = 1234
    rng = np.random.default_rng(seed)
    return sample_failures(dist, rng)
