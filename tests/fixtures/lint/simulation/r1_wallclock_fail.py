"""R1 fixture: wall-clock read inside a simulation/ hot path."""

from __future__ import annotations

import time


def stamp_result(result):
    result["finished_at"] = time.time()
    return result
