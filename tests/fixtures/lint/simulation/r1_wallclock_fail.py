"""R1 fixture: wall-clock read inside a simulation/ hot path."""

import time


def stamp_result(result):
    result["finished_at"] = time.time()
    return result
