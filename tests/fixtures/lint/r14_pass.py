"""R14 passing fixture: reference branches intact, knobs forwarded."""

from __future__ import annotations


def run_fast(values: list, use_batch: bool = True) -> list:
    if use_batch:
        return [v + v for v in values]
    return [v * 2 for v in values]


def run_memo(values: list, use_memo: bool = True) -> list:
    if not use_memo:
        return sorted(values)
    return sorted(values)


def _ensemble(values: list, use_shm: bool = True) -> list:
    if use_shm:
        return list(values)
    return [v for v in values]


def sweep(values: list, use_shm: bool = True) -> list:
    return _ensemble(values, use_shm=use_shm)
