"""R5 fixture: the expensive test is marked slow; the cheap one is not."""

from __future__ import annotations

import pytest

from repro.simulation import simulate_job


@pytest.mark.slow
def test_marked_monte_carlo(policy, traces, dist):
    spans = []
    for i in range(500):
        spans.append(simulate_job(policy, 1.0, traces[i], 1.0, 1.0, dist))
    assert spans


def test_single_simulation(policy, trace, dist):
    assert simulate_job(policy, 1.0, trace, 1.0, 1.0, dist) is not None
