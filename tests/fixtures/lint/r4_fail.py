"""R4 fixture: mutable default, bare except, swallowed Exception."""

from __future__ import annotations


def accumulate(value, into=[]):
    into.append(value)
    return into


def solve_quietly(solver):
    try:
        return solver()
    except:
        return None


def solve_silently(solver):
    try:
        return solver()
    except Exception:
        pass
