"""R1 fixture: global-state RNGs and an unseeded trace generator."""

from __future__ import annotations

import random

import numpy as np

from repro.traces import generate_platform_traces


def bad_sampling():
    np.random.seed(42)
    x = np.random.uniform(0.0, 1.0)
    y = random.random()
    return x + y


def unseeded_traces(dist, horizon):
    return generate_platform_traces(dist, 4, horizon)
