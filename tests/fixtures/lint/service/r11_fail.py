"""R11 failing fixture: stray stdout, broken handler paths, bad codes."""

from __future__ import annotations

import sys

from repro.service.envelope import emit, envelope


def cmd_double(args) -> int:
    emit(envelope("double", {}))  # first envelope
    return emit(envelope("double", {}))  # second on the same path


def cmd_maybe(args) -> int:
    if args:
        return emit(envelope("maybe", {}))
    return 0  # this path emits nothing


def cmd_codes(args) -> int:
    return 3  # outside the documented {0, 1, 2} set (and never emits)


def helper() -> None:
    print("progress")  # stdout is reserved for the envelope
    sys.stdout.write("raw\n")


def cmd_exit(args) -> int:
    if not args:
        sys.exit(5)
    return emit(envelope("exit", {}))
