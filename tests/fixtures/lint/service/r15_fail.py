"""R15 fixture: exceptions escape the handler and the worker loop."""

from __future__ import annotations

import threading


class Handler:
    """do_GET -> _route -> _dispatch: raise and socket write escape."""

    def do_GET(self) -> None:
        self._route("GET")

    def _route(self, method: str) -> None:
        self._dispatch(method)

    def _dispatch(self, method: str) -> None:
        if method != "GET":
            raise KeyError(method)
        self.wfile.write(b"ok")


class Worker:
    """The loop handed to Thread() dies on the first failed job."""

    def __init__(self) -> None:
        self._jobs: list = []
        self._thread = threading.Thread(target=self._loop, daemon=False)

    def start(self) -> None:
        self._thread.start()

    def _loop(self) -> None:
        while self._jobs:
            job = self._jobs.pop()
            job.run()
            if job.failed:
                raise RuntimeError("job failed")

    def stop(self) -> None:
        self._thread.join(timeout=5.0)
