"""R11 passing fixture: one envelope per path, humans on stderr."""

from __future__ import annotations

import sys

from repro.service.envelope import emit, envelope, error_envelope, hlog


def cmd_ok(args) -> int:
    try:
        hlog("starting")
        return emit(envelope("ok", {"n": 1}))
    except ValueError as exc:
        return emit(error_envelope("ok", type(exc).__name__, str(exc)))


def cmd_branch(args) -> int:
    if args:
        return emit(envelope("branch", {"fast": True}))
    return emit(envelope("branch", {"fast": False}))


def cmd_abort(args) -> int:
    if not args:
        sys.exit(2)
    return emit(envelope("abort", {}))


def helper(verbose: bool) -> None:
    if verbose:
        print("detail", file=sys.stderr)
