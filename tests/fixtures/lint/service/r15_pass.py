"""R15 passing fixture: every escape route converts to an envelope."""

from __future__ import annotations

import threading

from repro.service.envelope import error_envelope, hlog


class Handler:
    """Failures convert to error envelopes; the send itself is guarded."""

    def do_GET(self) -> None:
        try:
            self._dispatch("GET")
        except Exception as exc:
            self._safe_send(type(exc).__name__, str(exc))

    def _dispatch(self, method: str) -> None:
        if method != "GET":
            raise KeyError(method)
        self.wfile.write(b"ok")

    def _safe_send(self, exc_type: str, message: str) -> None:
        try:
            env = error_envelope("service.error", exc_type, message)
            self.wfile.write(repr(env).encode())
        except OSError as exc:
            hlog(f"failed to send error response: {exc!r}")


class Worker:
    """Failed jobs become failed-job records; the loop survives."""

    def __init__(self) -> None:
        self._jobs: list = []
        self._thread = threading.Thread(target=self._loop, daemon=False)

    def start(self) -> None:
        self._thread.start()

    def _loop(self) -> None:
        while self._jobs:
            job = self._jobs.pop()
            try:
                job.run()
            except Exception as exc:
                job.record_failure(error_envelope(
                    "service.job", type(exc).__name__, str(exc)))

    def stop(self) -> None:
        self._thread.join(timeout=5.0)
