"""R13 passing fixture: the kernel only sees seeded draws."""

from __future__ import annotations

from clockwork import draw


def step(seed: int) -> float:
    return draw(seed)
