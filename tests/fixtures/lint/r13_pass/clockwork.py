"""R13 passing fixture: annotated timing plus seeded randomness."""

from __future__ import annotations

import time

import numpy as np


def measure() -> float:
    return time.perf_counter()  # reprolint: clock-ok=benchmark timing


def draw(seed: int) -> float:
    rng = np.random.default_rng(seed)
    return float(rng.random())
