"""R7 fixture: units agree across call sites."""

from __future__ import annotations

from repro.units import DAY


def simulate(work, checkpoint, n_traces):
    return (work, checkpoint, n_traces)


def grid(n_points, horizon):
    return [horizon] * n_points


def run_fast():
    delay_s = 250.0
    return simulate(DAY, delay_s, 5)


def run_grid(n_points, horizon):
    return grid(n_points, horizon)
