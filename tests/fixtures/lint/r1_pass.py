"""R1 fixture: the explicit-seed API threads a SeedSequence everywhere."""

from __future__ import annotations

import numpy as np

from repro.traces import generate_platform_traces


def good_sampling(seed: int):
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    return rng.uniform(0.0, 1.0)


def seeded_traces(dist, horizon, seed: int, i: int):
    return generate_platform_traces(
        dist, 4, horizon, seed=np.random.SeedSequence([seed, i])
    )
