"""R10 failing fixture: SharedMemory leaked on the failure path."""

from __future__ import annotations

from multiprocessing.shared_memory import SharedMemory


def publish(payload: bytes) -> str:
    shm = SharedMemory(create=True, size=len(payload))
    shm.buf[: len(payload)] = payload  # a raise here leaks the segment
    return shm.name
