"""R10 failing fixture: executor owned forever, no shutdown path."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor


class Runner:
    def __init__(self, workers: int):
        self._pool = ThreadPoolExecutor(max_workers=workers)

    def submit(self, fn):
        return self._pool.submit(fn)
