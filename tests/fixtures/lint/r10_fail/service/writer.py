"""R10 failing fixture: torn service write, no temp-then-replace."""

from __future__ import annotations

from pathlib import Path


def save(path: Path, text: str) -> None:
    path.write_text(text, encoding="utf-8")
