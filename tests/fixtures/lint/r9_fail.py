"""R9 failing fixture: guarded attributes touched outside the lock."""

from __future__ import annotations

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = {}  # reprolint: guarded-by=_lock
        self.total = 0

    def add(self, key, value):
        with self._lock:
            self.items[key] = value
            self.total += value

    def bump(self, value):
        with self._lock:
            self.total += value

    def snapshot(self):
        # declared guarded, read without the lock
        return dict(self.items)

    def peek(self):
        # majority-locked elsewhere, so inferred guarded; this read races
        return self.total
