"""R2 fixture: bare 60/3600/86400 multiples in time-valued positions."""

from __future__ import annotations


def plan(work: float = 20 * 86400.0, checkpoint: float = 3600):
    mtbf = 86400.0
    return simulate(work, checkpoint, mtbf=mtbf, downtime=60)


def convert(timeout_ms: float) -> float:
    return timeout_ms / 1000.0


def simulate(work, checkpoint, mtbf=0.0, downtime=0.0):
    return work + checkpoint + mtbf + downtime
