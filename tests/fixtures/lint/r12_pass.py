"""R12 passing fixture: explicit daemonness, reported errors, bounded waits."""

from __future__ import annotations

import threading


def spawn(target):
    worker = threading.Thread(target=target, daemon=False)
    worker.start()
    return worker


def drain(jobs, errors):
    while jobs:
        job = jobs.pop()
        try:
            job()
        except Exception as exc:
            errors.append(f"{type(exc).__name__}: {exc}")
            continue


def shutdown(worker, done):
    worker.join(timeout=30.0)
    done.wait(timeout=30.0)
