"""R4 fixture: None defaults and narrow, recorded error handling."""

from __future__ import annotations


class SolverInfeasibleError(Exception):
    pass


def accumulate(value, into=None):
    if into is None:
        into = []
    into.append(value)
    return into


def solve_and_record(solver, failures):
    try:
        return solver()
    except SolverInfeasibleError as exc:
        failures.append(exc)
        raise
