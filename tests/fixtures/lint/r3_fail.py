"""R3 fixture: exact float comparisons outside tolerance helpers."""

from __future__ import annotations


def converged(error: float) -> bool:
    return error == 0.0


def changed(factor: float) -> bool:
    return factor != 1.0
