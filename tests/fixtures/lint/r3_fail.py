"""R3 fixture: exact float comparisons outside tolerance helpers."""


def converged(error: float) -> bool:
    return error == 0.0


def changed(factor: float) -> bool:
    return factor != 1.0
