"""R8 fixture: the command line offers every paper policy key."""

from __future__ import annotations

POLICY_CHOICES = (
    "young",
    "dalylow",
    "dalyhigh",
    "optexp",
    "bouguerra",
    "liu",
    "dpnextfailure",
    "dpmakespan",
)
