"""R8 fixture: the runner declares both synthetic column constants."""

from __future__ import annotations

LOWER_BOUND = "LowerBound"
PERIOD_LB = "PeriodLB"
