"""R8 fixture: the registration layer exports the full roster."""

from __future__ import annotations

__all__ = [
    "Young",
    "DalyLow",
    "DalyHigh",
    "OptExp",
    "Bouguerra",
    "Liu",
    "DPNextFailurePolicy",
    "DPMakespanPolicy",
]
