"""R8 fixture: the scenario table constructs the full roster."""

from __future__ import annotations

from policies import (
    Bouguerra,
    DalyHigh,
    DalyLow,
    DPMakespanPolicy,
    DPNextFailurePolicy,
    Liu,
    OptExp,
    Young,
)


def scenario_policies():
    """One instance of each constructed entry."""
    return [
        Young(),
        DalyLow(),
        DalyHigh(),
        OptExp(),
        Bouguerra(),
        Liu(),
        DPNextFailurePolicy(),
        DPMakespanPolicy(),
    ]
