"""R5 fixture: statically expensive test without @pytest.mark.slow."""

from __future__ import annotations

from repro.simulation import simulate_job


def test_unmarked_monte_carlo(policy, traces, dist):
    spans = []
    for i in range(500):
        spans.append(simulate_job(policy, 1.0, traces[i], 1.0, 1.0, dist))
    assert spans
