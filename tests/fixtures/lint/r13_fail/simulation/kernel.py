"""R13 fixture: a simulation kernel transitively reads the wall clock."""

from __future__ import annotations

from clockwork import advance


def step(state: float) -> float:
    return advance(state)
