"""R13 fixture: the wall clock hides two calls away from the kernel."""

from __future__ import annotations

import time


def stamp() -> float:
    return time.time()


def advance(state: float) -> float:
    return state + stamp()
