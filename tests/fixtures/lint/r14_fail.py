"""R14 fixture: severed reference branches and a dropped knob."""

from __future__ import annotations


def run_fast(values: list, use_batch: bool = True) -> list:
    # no-slow-path: knob-off falls off the end of the function
    if use_batch:
        return [v + v for v in values]


def run_memo(values: list, use_memo: bool = True) -> list:
    # raising-slow-path: the escape hatch became an error
    if not use_memo:
        raise RuntimeError("slow path removed")
    return sorted(values)


def _ensemble(values: list, use_shm: bool = True) -> list:
    if use_shm:
        return list(values)
    return [v for v in values]


def sweep(values: list, use_shm: bool = True) -> list:
    # dropped knob: _ensemble accepts use_shm but never receives it
    return _ensemble(values)
