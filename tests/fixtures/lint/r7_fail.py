"""R7 fixture: unit mismatches across resolved call sites."""

from __future__ import annotations


def simulate(work, checkpoint, n_traces):
    return (work, checkpoint, n_traces)


def grid(n_points, horizon):
    return [horizon] * n_points


def run_fast():
    delay_ms = 250
    return simulate(86400, delay_ms, 5)


def run_swapped(n_points, horizon):
    return grid(horizon, n_points)
