"""R3 fixture: tolerance-based float comparison, plus an approved helper."""

from __future__ import annotations

import math


def converged(error: float) -> bool:
    return math.isclose(error, 0.0, abs_tol=1e-12)


def my_isclose(a: float, b: float) -> bool:
    # exact literal compare allowed here: this *is* the tolerance helper
    if b == 0.0:
        return abs(a) < 1e-12
    return abs(a - b) < 1e-9 * max(abs(a), abs(b))
