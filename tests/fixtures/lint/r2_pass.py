"""R2 fixture: durations spelled with repro.units constants."""

from __future__ import annotations

from repro.units import DAY, HOUR, MINUTE


def plan(work: float = 20 * DAY, checkpoint: float = HOUR):
    mtbf = DAY
    return simulate(work, checkpoint, mtbf=mtbf, downtime=MINUTE)


def convert(timeout_s: float) -> float:
    return timeout_s


def simulate(work, checkpoint, mtbf=0.0, downtime=0.0):
    return work + checkpoint + mtbf + downtime
