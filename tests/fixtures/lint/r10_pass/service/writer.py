"""R10 passing fixture: the temp-then-os.replace idiom."""

from __future__ import annotations

import os
from pathlib import Path


def save(path: Path, text: str) -> None:
    tmp = path.with_suffix(".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)
