"""R10 passing fixture: segment released on every path."""

from __future__ import annotations

from multiprocessing.shared_memory import SharedMemory


def publish(payload: bytes) -> str:
    shm = SharedMemory(create=True, size=len(payload))
    try:
        shm.buf[: len(payload)] = payload
    except Exception:
        shm.close()
        shm.unlink()
        raise
    return shm.name


def attach(name: str) -> SharedMemory:
    return SharedMemory(name=name)  # ownership transfers to the caller
