"""R8 fixture: one synthetic column constant is missing."""

from __future__ import annotations

LOWER_BOUND = "LowerBound"
