"""R8 fixture: the registration layer lost an export."""

from __future__ import annotations

__all__ = [
    "Young",
    "DalyLow",
    "OptExp",
    "Bouguerra",
    "Liu",
    "DPNextFailurePolicy",
    "DPMakespanPolicy",
]
