"""R8 fixture: the command line dropped one key."""

from __future__ import annotations

POLICY_CHOICES = (
    "young",
    "dalylow",
    "dalyhigh",
    "optexp",
    "bouguerra",
    "dpnextfailure",
    "dpmakespan",
)
