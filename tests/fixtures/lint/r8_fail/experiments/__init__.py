"""R8 fixture: one table entry is no longer constructed."""

from __future__ import annotations

from policies import (
    DalyHigh,
    DalyLow,
    DPMakespanPolicy,
    DPNextFailurePolicy,
    Liu,
    OptExp,
    Young,
)


def scenario_policies():
    """An incomplete roster."""
    return [
        Young(),
        DalyLow(),
        DalyHigh(),
        OptExp(),
        Liu(),
        DPNextFailurePolicy(),
        DPMakespanPolicy(),
    ]
