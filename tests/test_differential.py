"""Differential testing: optimized engine vs the transparent reference
implementation, over random scenarios."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Exponential, Weibull
from repro.policies.base import PeriodicPolicy
from repro.simulation import simulate_job
from repro.simulation.reference import simulate_job_reference
from repro.traces.generation import PlatformTraces, generate_platform_traces


def both(policy_period, work, traces, c, r, dist, t0=0.0):
    a = simulate_job(
        PeriodicPolicy(policy_period), work, traces, c, r, dist, t0=t0
    )
    b = simulate_job_reference(
        PeriodicPolicy(policy_period), work, traces, c, r, dist, t0=t0
    )
    return a, b


class TestHandCrafted:
    def test_failure_free(self):
        tr = PlatformTraces([np.array([])], 1e9, 50.0).for_job(1)
        a, b = both(250.0, 1000.0, tr, 100.0, 80.0, Exponential(1.0))
        assert a.makespan == b.makespan

    def test_single_failure(self):
        tr = PlatformTraces([np.array([300.0])], 1e9, 50.0).for_job(1)
        a, b = both(500.0, 500.0, tr, 100.0, 80.0, Exponential(1.0))
        assert a.makespan == b.makespan == pytest.approx(1030.0)

    def test_cascade(self):
        tr = PlatformTraces(
            [np.array([300.0]), np.array([320.0])], 1e9, 50.0
        ).for_job(2)
        a, b = both(500.0, 500.0, tr, 100.0, 80.0, Exponential(1.0))
        assert a.makespan == b.makespan == pytest.approx(1050.0)

    def test_recovery_interrupt(self):
        tr = PlatformTraces(
            [np.array([300.0]), np.array([360.0])], 1e9, 50.0
        ).for_job(2)
        a, b = both(500.0, 500.0, tr, 100.0, 80.0, Exponential(1.0))
        assert a.makespan == b.makespan == pytest.approx(1090.0)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    period=st.floats(min_value=150.0, max_value=30_000.0),
    mtbf=st.floats(min_value=1000.0, max_value=100_000.0),
    k=st.floats(min_value=0.4, max_value=1.8),
    n_units=st.integers(min_value=1, max_value=5),
    t0_frac=st.floats(min_value=0.0, max_value=0.2),
)
def test_engines_agree_on_random_scenarios(seed, period, mtbf, k, n_units, t0_frac):
    dist = Weibull.from_mtbf(mtbf, k)
    work, c, r, d = 25_000.0, 300.0, 200.0, 40.0
    horizon = 300 * work
    traces = generate_platform_traces(dist, n_units, horizon, downtime=d, seed=seed)
    tr = traces.for_job(n_units)
    t0 = t0_frac * horizon / 10
    a = simulate_job(PeriodicPolicy(period), work, tr, c, r, dist, t0=t0)
    b = simulate_job_reference(
        PeriodicPolicy(period), work, traces.for_job(n_units), c, r, dist, t0=t0
    )
    assert a.makespan == pytest.approx(b.makespan, rel=1e-12)
    assert a.n_failures == b.n_failures
    assert a.n_checkpoints == b.n_checkpoints
