"""Weibull distribution: shapes, hazard behavior and the rejuvenation
closure property that underpins Figure 1."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.distributions import Weibull
from repro.units import DAY, YEAR


class TestConstruction:
    def test_from_mtbf_mean(self):
        for k in (0.5, 0.7, 1.0, 2.0):
            d = Weibull.from_mtbf(DAY, k)
            assert d.mean() == pytest.approx(DAY, rel=1e-12)

    def test_k1_equals_exponential(self):
        d = Weibull.from_mtbf(DAY, 1.0)
        ts = np.geomspace(100.0, 5 * DAY, 20)
        assert np.allclose(d.sf(ts), np.exp(-ts / DAY), rtol=1e-10)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Weibull(0.0, 0.7)
        with pytest.raises(ValueError):
            Weibull(1.0, -1.0)


class TestHazard:
    def test_decreasing_hazard_for_k_below_one(self):
        d = Weibull.from_mtbf(DAY, 0.7)
        ts = np.geomspace(60.0, 10 * DAY, 50)
        h = d.hazard(ts)
        assert np.all(np.diff(h) < 0)

    def test_increasing_hazard_for_k_above_one(self):
        d = Weibull.from_mtbf(DAY, 2.0)
        ts = np.geomspace(60.0, 10 * DAY, 50)
        h = d.hazard(ts)
        assert np.all(np.diff(h) > 0)

    def test_aged_processor_survives_better_when_k_below_one(self):
        """P(X > t + x | X > t) increases with t for k < 1 — the paper's
        argument against all-processor rejuvenation."""
        d = Weibull.from_mtbf(125 * YEAR, 0.7)
        x = DAY
        p_young = float(d.psuc(x, 0.0))
        p_old = float(d.psuc(x, YEAR))
        assert p_old > p_young

    def test_opposite_for_k_above_one(self):
        d = Weibull.from_mtbf(125 * YEAR, 1.5)
        x = DAY
        assert float(d.psuc(x, YEAR)) < float(d.psuc(x, 0.0))


class TestRejuvenatedPlatform:
    def test_min_closure_scale(self):
        d = Weibull(lam=100.0, k=0.7)
        m = d.rejuvenated_platform(16)
        assert m.k == 0.7
        assert m.lam == pytest.approx(100.0 / 16 ** (1 / 0.7))

    def test_min_distribution_matches_sampling(self):
        d = Weibull.from_mtbf(DAY, 0.7)
        p = 8
        rng = np.random.default_rng(5)
        samples = d.sample(rng, size=(20_000, p)).min(axis=1)
        assert samples.mean() == pytest.approx(
            d.rejuvenated_platform(p).mean(), rel=0.05
        )

    def test_platform_mtbf_shrinks_superlinearly_for_k_below_one(self):
        d = Weibull.from_mtbf(125 * YEAR, 0.7)
        p = 1024
        assert d.rejuvenated_platform(p).mean() < d.mean() / p


class TestConditionalSampling:
    def test_closed_form_matches_survival(self):
        d = Weibull.from_mtbf(DAY, 0.5)
        rng = np.random.default_rng(2)
        tau = DAY / 2
        xs = d.sample_conditional(rng, tau, size=30_000)
        probe = DAY
        assert np.mean(xs >= probe) == pytest.approx(
            float(d.psuc(probe, tau)), abs=0.01
        )

    def test_zero_age_is_unconditional(self):
        d = Weibull.from_mtbf(DAY, 0.7)
        rng = np.random.default_rng(4)
        xs = d.sample_conditional(rng, 0.0, size=30_000)
        assert np.mean(xs) == pytest.approx(DAY, rel=0.08)


def test_quantile_roundtrip():
    d = Weibull.from_mtbf(DAY, 0.7)
    qs = np.array([0.01, 0.3, 0.77, 0.999])
    assert np.allclose(d.cdf(d.quantile(qs)), qs, rtol=1e-10)
