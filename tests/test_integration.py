"""End-to-end statistical checks reproducing the paper's qualitative
claims with enough traces for the signal to dominate the noise."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ConstantOverhead, Platform, scaled_petascale
from repro.core import expected_makespan_optimal
from repro.distributions import Exponential, Weibull
from repro.policies import (
    Bouguerra,
    DPNextFailurePolicy,
    OptExp,
    Young,
)
from repro.simulation import simulate_job, simulate_lower_bound
from repro.traces import generate_platform_traces
from repro.units import DAY, HOUR


class TestTheoremOneEndToEnd:
    # 150 single-proc traces run in ~0.1 s: measured fast despite the loop
    def test_simulated_optexp_matches_closed_form(self):  # reprolint: disable=R5
        """Monte-Carlo mean of the simulated OptExp makespan must agree
        with Theorem 1 within 3 standard errors."""
        lam, work, c, d, r = 1 / DAY, 20 * DAY, 600.0, 60.0, 600.0
        dist = Exponential(lam)
        theory = expected_makespan_optimal(lam, work, c, d, r).expected_makespan
        spans = []
        for i in range(150):
            tr = generate_platform_traces(
                dist, 1, 60 * work, downtime=d, seed=i
            ).for_job(1)
            spans.append(
                simulate_job(
                    OptExp(), work, tr, c, r, dist, platform_mtbf=DAY
                ).makespan
            )
        spans = np.asarray(spans)
        se = spans.std() / np.sqrt(len(spans))
        assert abs(spans.mean() - theory) < 3 * se + 0.002 * theory


@pytest.fixture(scope="module")
def weibull_platform_runs():
    """Full scaled Petascale platform, Weibull k=0.7 — the Table 4
    regime — with several policies over a common trace set."""
    preset = scaled_petascale(256)
    dist = Weibull.from_mtbf(preset.processor_mtbf, 0.7)
    plat = Platform(
        p=preset.ptotal,
        dist=dist,
        downtime=preset.downtime,
        overhead=ConstantOverhead(preset.overhead_seconds),
    )
    work = preset.work / preset.ptotal
    policies = {
        "Young": Young,
        "OptExp": OptExp,
        "Bouguerra": Bouguerra,
        "DPNextFailure": lambda: DPNextFailurePolicy(n_grid=96),
    }
    spans = {name: [] for name in policies}
    spans["LowerBound"] = []
    for i in range(25):
        tr = generate_platform_traces(
            dist, preset.ptotal, preset.horizon, downtime=preset.downtime, seed=i
        ).for_job(preset.ptotal)
        for name, factory in policies.items():
            res = simulate_job(
                factory(),
                work,
                tr,
                plat.checkpoint,
                plat.recovery,
                dist,
                t0=preset.start_offset,
                platform_mtbf=plat.platform_mtbf,
            )
            spans[name].append(res.makespan)
        spans["LowerBound"].append(
            simulate_lower_bound(
                work, tr, plat.checkpoint, plat.recovery, t0=preset.start_offset
            ).makespan
        )
    return {k: np.asarray(v) for k, v in spans.items()}


@pytest.mark.slow
class TestTable4Shape:
    def test_dpnextfailure_beats_periodic_heuristics(self, weibull_platform_runs):
        s = weibull_platform_runs
        assert s["DPNextFailure"].mean() < s["Young"].mean()
        assert s["DPNextFailure"].mean() < s["OptExp"].mean()

    def test_bouguerra_worst(self, weibull_platform_runs):
        s = weibull_platform_runs
        for other in ("Young", "OptExp", "DPNextFailure"):
            assert s["Bouguerra"].mean() > s[other].mean()

    def test_lower_bound_dominates(self, weibull_platform_runs):
        s = weibull_platform_runs
        lb = s["LowerBound"]
        for name, spans in s.items():
            if name != "LowerBound":
                assert np.all(lb <= spans + 1e-6)

    def test_lower_bound_ratio_plausible(self, weibull_platform_runs):
        """Paper Table 4: LowerBound degradation ~0.83; allow a band."""
        s = weibull_platform_runs
        best = np.min(
            np.vstack([v for k, v in s.items() if k != "LowerBound"]), axis=0
        )
        ratio = float(np.mean(s["LowerBound"] / best))
        assert 0.7 < ratio < 0.95


class TestExponentialParallelShape:
    def test_periodic_heuristics_near_optimal(self):
        """Figure 2's message: Young/OptExp indistinguishable for
        Exponential failures."""
        preset = scaled_petascale(256)
        dist = Exponential.from_mtbf(preset.processor_mtbf)
        work = preset.work / preset.ptotal
        young, optexp = [], []
        for i in range(20):
            tr = generate_platform_traces(
                dist, preset.ptotal, preset.horizon, downtime=60.0, seed=i
            ).for_job(preset.ptotal)
            kw = dict(
                t0=preset.start_offset,
                platform_mtbf=preset.platform_mtbf,
            )
            young.append(
                simulate_job(Young(), work, tr, 600.0, 600.0, dist, **kw).makespan
            )
            optexp.append(
                simulate_job(OptExp(), work, tr, 600.0, 600.0, dist, **kw).makespan
            )
        assert np.mean(young) == pytest.approx(np.mean(optexp), rel=0.02)
