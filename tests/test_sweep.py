"""Grid sweep engine: expansion, trace-signature planning, execution.

The acceptance property of the PR-10 sweep engine lives here: a grid
executed through :func:`run_sweep`'s shared-trace plan is **bit
identical** (comparable result payload under canonical JSON) to running
every point as an independent scenario — across the shm / memo /
disk-cache execution knobs and across worker counts.
"""

from __future__ import annotations

import json

import pytest

from repro.service.serialize import (
    comparable_result_payload,
    scenario_result_to_dict,
)
from repro.service.spec import ScenarioSpec, SpecError, expand_grid
from repro.simulation.sweep import plan_sweep, run_sweep, trace_signature

TINY = dict(work=7200.0, mtbf=14400.0, n_traces=2,
            policies=("young", "dalylow"))


def _payload_json(result) -> str:
    """Canonical JSON of the comparable payload — the identity gate."""
    return json.dumps(
        comparable_result_payload(scenario_result_to_dict(result)),
        sort_keys=True,
    )


# ----------------------------------------------------------------------
# grid expansion
# ----------------------------------------------------------------------


class TestExpandGrid:
    def test_cartesian_order_last_axis_fastest(self):
        specs = expand_grid(
            dict(TINY), {"checkpoint": [300.0, 600.0], "seed": [0, 1]}
        )
        assert [(s.checkpoint, s.seed) for s in specs] == [
            (300.0, 0), (300.0, 1), (600.0, 0), (600.0, 1),
        ]

    def test_expansion_is_deterministic(self):
        grid = {"checkpoint": [300.0, 600.0], "seed": [0, 1]}
        a = expand_grid(dict(TINY), grid)
        b = expand_grid(dict(TINY), grid)
        assert [s.signature() for s in a] == [s.signature() for s in b]

    def test_empty_grid_is_one_point(self):
        specs = expand_grid(dict(TINY), {})
        assert len(specs) == 1
        assert specs[0] == ScenarioSpec(**TINY)

    def test_policies_axis(self):
        specs = expand_grid(
            dict(TINY), {"policies": [["young"], ["dalylow", "optexp"]]}
        )
        assert specs[0].policies == ("young",)
        assert specs[1].policies == ("dalylow", "optexp")

    @pytest.mark.parametrize(
        "grid",
        [
            {"nosuchfield": [1]},
            {"checkpoint": []},
            {"checkpoint": 600.0},
            {"checkpoint": "600"},
            {"mtbf": [-1.0]},
        ],
    )
    def test_invalid_grids_fail_whole_expansion(self, grid):
        with pytest.raises(SpecError):
            expand_grid(dict(TINY), grid)


# ----------------------------------------------------------------------
# trace-signature planning
# ----------------------------------------------------------------------


class TestPlanSweep:
    def test_replay_only_axes_collapse_into_one_group(self):
        # checkpoint cost and policy choice never touch trace generation
        specs = expand_grid(dict(TINY), {
            "checkpoint": [300.0, 600.0, 900.0],
            "policies": [["young"], ["dalylow"]],
        })
        plan = plan_sweep(specs)
        assert plan.n_points == 6
        assert len(plan.groups) == 1
        assert plan.groups[0].indices == tuple(range(6))
        assert plan.to_dict() == {
            "n_points": 6, "n_groups": 1, "group_sizes": [6],
            "shared_trace_gens_saved": 5,
        }

    def test_seed_axis_splits_groups_in_first_seen_order(self):
        specs = expand_grid(
            dict(TINY), {"checkpoint": [300.0, 600.0], "seed": [0, 1]}
        )
        plan = plan_sweep(specs)
        assert len(plan.groups) == 2
        # last axis (seed) varies fastest: seed 0 at 0,2 / seed 1 at 1,3
        assert plan.groups[0].indices == (0, 2)
        assert plan.groups[1].indices == (1, 3)

    def test_work_axis_splits_unless_horizon_pinned(self):
        # work feeds the default horizon, so a work axis changes the
        # generated traces — unless the spec pins horizon explicitly
        free = expand_grid(dict(TINY), {"work": [7200.0, 14400.0]})
        pinned = expand_grid(
            {**TINY, "horizon": 200000.0}, {"work": [7200.0, 14400.0]}
        )
        assert len(plan_sweep(free).groups) == 2
        assert len(plan_sweep(pinned).groups) == 1

    def test_exponential_shape_canonicalized_away(self):
        a = ScenarioSpec(dist="exponential", shape=0.7, **TINY)
        b = ScenarioSpec(dist="exponential", shape=1.5, **TINY)
        assert trace_signature(a) == trace_signature(b)
        w = ScenarioSpec(dist="weibull", shape=0.7, **TINY)
        assert trace_signature(a) != trace_signature(w)


# ----------------------------------------------------------------------
# execution: bit-identity to independent runs
# ----------------------------------------------------------------------


def _grid_12():
    """12 points, 2 trace groups (seed axis splits, the rest replay)."""
    return expand_grid(dict(TINY), {
        "checkpoint": [300.0, 600.0, 900.0],
        "seed": [0, 1],
        "policies": [["young"], ["dalylow"]],
    })


class TestRunSweepIdentity:
    @pytest.mark.parametrize(
        "knobs",
        [
            {},  # process-wide defaults
            {"use_memo": False, "use_disk_cache": False},
            {"use_batch": False, "use_cache": False},
        ],
        ids=["defaults", "no-memo-no-disk", "no-batch-no-l1"],
    )
    def test_12_point_grid_bit_identical_to_independent_runs(self, knobs):
        specs = _grid_12()
        reference = run_sweep(specs, jobs=1, use_sweep_plan=False, **knobs)
        sweep = run_sweep(specs, jobs=1, use_sweep_plan=True, **knobs)
        assert reference.sweep_planned is False
        assert sweep.sweep_planned is True
        assert [_payload_json(r) for r in sweep.results] == \
            [_payload_json(r) for r in reference.results]

    @pytest.mark.slow
    def test_parallel_sweep_bit_identical_with_shm(self):
        specs = _grid_12()
        reference = run_sweep(specs, jobs=1, use_sweep_plan=False)
        sweep = run_sweep(specs, jobs=2, use_shm=True, use_sweep_plan=True)
        assert sweep.n_jobs == 2
        assert [_payload_json(r) for r in sweep.results] == \
            [_payload_json(r) for r in reference.results]


class TestRunSweepReporting:
    def test_group_stats_record_reuse_and_prefetch(self):
        sweep = run_sweep(_grid_12(), jobs=1)
        assert len(sweep.group_stats) == 2
        for stats in sweep.group_stats:
            assert stats["n_points"] == 6
            assert stats["trace_gen_reused"] is True
            assert stats["ensemble_reused"] is True
            assert stats["build_seconds"] >= 0.0
        # the first group is built inline; every later group's traces
        # are prefetched while its predecessor replays
        assert sweep.group_stats[0]["prefetched"] is False
        assert sweep.group_stats[1]["prefetched"] is True

    def test_reference_path_reuses_nothing(self):
        sweep = run_sweep(_grid_12()[:2], jobs=1, use_sweep_plan=False)
        assert sweep.group_stats == []
        for result in sweep.results:
            assert result.trace_gen_reused is False
            assert result.ensemble_reused is False

    def test_counters_roll_up_over_all_points(self):
        sweep = run_sweep(_grid_12(), jobs=1)
        assert sweep.counters["scenarios"] == 12
        assert sweep.counters["elapsed"] > 0.0
        for key in ("cache_hits", "memo_hits", "disk_hits"):
            assert key in sweep.counters

    def test_scheduler_summary_shape(self):
        summary = run_sweep(_grid_12()[:2], jobs=1).scheduler_summary()
        assert summary["units"] > 0
        assert summary["est_cost_max"] >= summary["est_cost_mean"] > 0.0
        assert summary["est_imbalance"] >= 1.0

    def test_callbacks_fire_in_plan_order(self):
        specs = expand_grid(
            dict(TINY), {"checkpoint": [300.0, 600.0], "seed": [0, 1]}
        )
        started: list[int] = []
        finished: list[int] = []
        ticks: list[tuple[int, int]] = []

        sweep = run_sweep(
            specs,
            jobs=1,
            on_point_start=started.append,
            on_point_done=lambda i, result: finished.append(i),
            progress=lambda done, total: ticks.append((done, total)),
        )
        # execution follows the plan: group 0 (seed 0) then group 1
        assert started == [0, 2, 1, 3]
        assert finished == started
        assert ticks == [(1, 4), (2, 4), (3, 4), (4, 4)]
        assert all(r is not None for r in sweep.results)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


class TestCliSweep:
    _ARGS = ["sweep", "--work", "2h", "--mtbf", "4h", "--traces", "1",
             "--policies", "young"]

    def _run(self, capsys, extra):
        from repro.cli import main

        rc = main([*self._ARGS, *extra])
        return rc, json.loads(capsys.readouterr().out)

    def test_local_sweep_envelope(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc, env = self._run(
            capsys, ["--grid", "checkpoint=5m,10m", "--grid", "seed=1,2"]
        )
        assert rc == 0 and env["ok"] is True
        data = env["data"]
        assert data["plan"] == {
            "n_points": 4, "n_groups": 2, "group_sizes": [2, 2],
            "shared_trace_gens_saved": 2,
        }
        assert data["sweep_planned"] is True
        assert len(data["points"]) == 4
        assert data["points"][0]["spec"]["checkpoint"] == 300.0
        assert data["points"][0]["result"]["format"] == "repro.result/1"
        assert data["counters"]["scenarios"] == 4
        assert len(data["group_stats"]) == 2

    def test_no_sweep_plan_escape_hatch_is_identical(self, capsys,
                                                     tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        grid = ["--grid", "checkpoint=5m,10m"]
        _, planned = self._run(capsys, grid)
        rc, unplanned = self._run(capsys, [*grid, "--no-sweep-plan"])
        assert rc == 0
        assert unplanned["data"]["sweep_planned"] is False
        assert unplanned["data"]["group_stats"] == []
        keep = lambda env: [  # noqa: E731
            json.dumps(comparable_result_payload(p["result"]),
                       sort_keys=True)
            for p in env["data"]["points"]
        ]
        assert keep(planned) == keep(unplanned)

    def test_bad_grid_key_is_spec_error(self, capsys, tmp_path,
                                        monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc, env = self._run(capsys, ["--grid", "nosuchfield=1"])
        assert rc == 2
        assert env["error"]["type"] == "SpecError"

    def test_policies_grid_axis_plus_join(self, capsys, tmp_path,
                                          monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc, env = self._run(
            capsys, ["--grid", "policies=young+dalylow,optexp"]
        )
        assert rc == 0
        specs = [p["spec"] for p in env["data"]["points"]]
        assert [s["policies"] for s in specs] == [
            ["young", "dalylow"], ["optexp"],
        ]
