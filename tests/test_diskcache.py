"""Persistent disk solve cache: bit-identity, corruption fallback,
concurrency, version rollover, eviction and the disabled slow path."""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.core.cache import cached_dp_makespan, cached_replan, clear_cache
from repro.core.diskcache import (
    DiskSolveCache,
    key_digest,
    load_dp_makespan,
)
from repro.distributions import Exponential, Weibull
from repro.units import DAY, HOUR


@pytest.fixture
def cache(tmp_path):
    return DiskSolveCache(root=tmp_path)


def _arrays(seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    return {
        "table": rng.standard_normal((7, 5)),
        "scalar": np.float64(rng.standard_normal()),
    }


KEY = ("kind-test", 1.5, 3, True, ("nested", 2.0))


class TestRoundTrip:
    def test_store_then_load_bit_identical(self, cache):
        arrays = _arrays()
        assert cache.store("dp", KEY, arrays)
        loaded = cache.load("dp", KEY)
        assert loaded is not None
        assert set(loaded) == set(arrays)
        for name in arrays:
            assert np.array_equal(loaded[name], arrays[name])
            assert loaded[name].dtype == np.asarray(arrays[name]).dtype

    def test_miss_on_absent_key(self, cache):
        assert cache.load("dp", KEY) is None
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 1)

    def test_kinds_do_not_collide(self, cache):
        cache.store("a", KEY, _arrays(1))
        assert cache.load("b", KEY) is None

    def test_counters(self, cache):
        cache.store("dp", KEY, _arrays())
        cache.load("dp", KEY)
        cache.load("dp", ("other",))
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_disabled_is_a_noop(self, cache):
        cache.enabled = False
        assert not cache.store("dp", KEY, _arrays())
        assert cache.load("dp", KEY) is None
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.stores) == (0, 0, 0)


class TestKeyDigest:
    def test_distinct_types_distinct_digests(self):
        # bool is an int subclass; 1.0 == 1 — the canonical encoding
        # must still tell them apart
        assert key_digest("k", (1,)) != key_digest("k", (True,))
        assert key_digest("k", (1,)) != key_digest("k", (1.0,))
        assert key_digest("k", ("1",)) != key_digest("k", (1,))

    def test_nesting_is_not_flattened(self):
        assert key_digest("k", (("a", "b"),)) != key_digest("k", ("a", "b"))

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            key_digest("k", (object(),))


class TestCorruption:
    def test_truncated_entry_is_a_silent_miss(self, cache):
        cache.store("dp", KEY, _arrays())
        path = cache._entry_path("dp", key_digest("dp", KEY))
        path.write_bytes(path.read_bytes()[:20])
        assert cache.load("dp", KEY) is None
        # the corrupt file was removed so a future solve rebuilds it
        assert not path.exists()

    def test_garbage_entry_is_a_silent_miss(self, cache):
        cache.store("dp", KEY, _arrays())
        path = cache._entry_path("dp", key_digest("dp", KEY))
        path.write_bytes(b"this is not an npz document")
        assert cache.load("dp", KEY) is None
        assert not path.exists()

    def test_wrong_digest_is_a_miss(self, cache):
        """An entry copied onto the wrong address must not be served."""
        cache.store("dp", KEY, _arrays())
        src = cache._entry_path("dp", key_digest("dp", KEY))
        other = ("unrelated", 9)
        dst = cache._entry_path("dp", key_digest("dp", other))
        dst.parent.mkdir(parents=True, exist_ok=True)
        dst.write_bytes(src.read_bytes())
        assert cache.load("dp", other) is None


def _concurrent_writer(args):
    root, seed = args
    cache = DiskSolveCache(root=root)
    return cache.store("dp", KEY, _arrays())  # same key, same content


class TestConcurrency:
    def test_concurrent_same_key_writes_both_succeed(self, tmp_path):
        with multiprocessing.Pool(2) as pool:
            results = pool.map(
                _concurrent_writer, [(tmp_path, 0), (tmp_path, 0)]
            )
        assert results == [True, True]
        cache = DiskSolveCache(root=tmp_path)
        loaded = cache.load("dp", KEY)
        assert loaded is not None
        assert np.array_equal(loaded["table"], _arrays()["table"])

    def test_no_temp_litter_after_store(self, cache):
        cache.store("dp", KEY, _arrays())
        litter = [
            p for p in cache.root.rglob(".tmp-*") if p.is_file()
        ]
        assert litter == []


class TestVersionRollover:
    def test_stale_version_dirs_are_pruned_on_store(self, tmp_path):
        stale = tmp_path / "solvecache" / "deadbeefdeadbeef"
        stale.mkdir(parents=True)
        (stale / "old.npz").write_bytes(b"stale")
        cache = DiskSolveCache(root=tmp_path)
        cache.store("dp", KEY, _arrays())
        assert not stale.exists()
        assert cache.load("dp", KEY) is not None

    def test_wipe_removes_all_versions(self, tmp_path):
        cache = DiskSolveCache(root=tmp_path)
        cache.store("dp", KEY, _arrays())
        # a stale version appearing after the store's one-shot prune
        stale = tmp_path / "solvecache" / "deadbeefdeadbeef"
        stale.mkdir(parents=True)
        (stale / "old.npz").write_bytes(b"stale")
        assert cache.wipe() == 2  # the stale entry + the live one
        assert cache.load("dp", KEY) is None
        assert not stale.exists()


class TestEviction:
    def test_lru_eviction_under_byte_budget(self, tmp_path):
        cache = DiskSolveCache(root=tmp_path, max_bytes=1)
        cache.store("dp", ("a",), _arrays(1))
        cache.store("dp", ("b",), _arrays(2))
        # a 1-byte budget can hold nothing: every store evicts
        assert cache.stats().evictions >= 1

    def test_load_bumps_mtime_explicitly(self, cache):
        """A hit must refresh the entry's mtime — recency survives
        ``noatime``-mounted filesystems where atime never moves."""
        import os

        cache.store("dp", KEY, _arrays())
        path = cache._entry_path("dp", key_digest("dp", KEY))
        ancient = 1_000_000.0
        os.utime(path, (ancient, ancient))
        assert cache.load("dp", KEY) is not None
        assert path.stat().st_mtime > ancient

    def test_eviction_orders_by_mtime_not_atime(self, tmp_path):
        """Regression: eviction recency is st_mtime.  st_atime lies on
        noatime/relatime mounts, so an entry whose atime looks fresh
        but whose mtime is oldest must still be the one evicted."""
        import os
        import time

        cache = DiskSolveCache(root=tmp_path)
        cache.store("dp", ("a",), _arrays(1))
        cache.store("dp", ("b",), _arrays(2))
        path_a = cache._entry_path("dp", key_digest("dp", ("a",)))
        path_b = cache._entry_path("dp", key_digest("dp", ("b",)))
        now = time.time()
        # a: oldest mtime but freshest atime (what a misleading atime
        # source would report); b: newer mtime, ancient atime
        os.utime(path_a, (now + 1000.0, 1_000_000.0))
        os.utime(path_b, (1.0, 2_000_000.0))
        # budget fits exactly two entries: storing c must evict one
        cache.max_bytes = path_a.stat().st_size + path_b.stat().st_size
        cache.store("dp", ("c",), _arrays(3))
        assert not path_a.exists()  # oldest mtime went first
        assert cache.load("dp", ("b",)) is not None
        assert cache.load("dp", ("c",)) is not None

    def test_usage_reports_entries_and_bytes(self, cache):
        cache.store("dp", ("a",), _arrays(1))
        cache.store("replan", ("b",), _arrays(2))
        usage = cache.usage()
        assert usage["entries"] == 2
        assert usage["bytes"] > 0
        assert usage["kinds"]["dp"]["entries"] == 1
        assert usage["kinds"]["replan"]["entries"] == 1
        assert usage["lifetime"]["stores"] == 2

    def test_lifetime_counters_persist_across_instances(self, tmp_path):
        a = DiskSolveCache(root=tmp_path)
        a.store("dp", KEY, _arrays())
        a.load("dp", KEY)
        a.usage()  # flush
        b = DiskSolveCache(root=tmp_path)
        lifetime = b.usage()["lifetime"]
        assert lifetime["stores"] == 1
        assert lifetime["hits"] == 1


class TestSolverCodecs:
    """The dp_makespan / replan payloads round-trip bit-exactly."""

    def test_dp_makespan_disk_warm_bit_identical(self):
        dist = Weibull.from_mtbf(DAY, 0.7)
        kwargs = dict(
            work=2 * HOUR, checkpoint=600.0, downtime=60.0,
            recovery=600.0, dist=dist, u=120.0,
        )
        cold = cached_dp_makespan(**kwargs)
        clear_cache()  # L1 gone; the next call must come from disk
        warm = cached_dp_makespan(**kwargs)
        assert warm.expected_makespan == cold.expected_makespan
        assert warm.first_chunk == cold.first_chunk
        assert np.array_equal(warm._v_pre, cold._v_pre)
        assert np.array_equal(warm._c_pre, cold._c_pre)
        assert np.array_equal(warm._v_post, cold._v_post)
        assert np.array_equal(warm._c_post, cold._c_post)

    def test_replan_disk_warm_bit_identical(self):
        from repro.core.dp_nextfailure import dp_next_failure_parallel
        from repro.core.state import PlatformState

        dist = Exponential.from_mtbf(DAY)
        ages = np.zeros(4)
        calls = []

        def solve():
            calls.append(1)
            state = PlatformState(ages, dist)
            return dp_next_failure_parallel(2 * HOUR, 600.0, state, 600.0)

        args = (2 * HOUR, 600.0, dist, ages, 600.0, 10, 100, True, solve)
        cold = cached_replan(*args)
        from repro.core.cache import clear_replan_memo

        clear_replan_memo()
        warm = cached_replan(*args)
        assert len(calls) == 1  # second call served from disk, not solved
        assert np.array_equal(warm.chunks, cold.chunks)
        assert warm.expected_work == cold.expected_work
        assert warm.u == cold.u

    def test_load_handles_missing_fields(self, tmp_path, monkeypatch):
        """A payload missing required arrays is a miss, not a crash."""
        monkeypatch.setenv("REPRO_SERVICE_DIR", str(tmp_path))
        from repro.core import diskcache

        key = ("incomplete",)
        diskcache.get_disk_cache().store(
            "dp_makespan", key, {"expected_makespan": np.float64(1.0)}
        )
        assert load_dp_makespan(key) is None
