"""Rejuvenation analytics (Figure 1 and Section 3.1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.rejuvenation import (
    estimate_platform_mtbf_mc,
    platform_mtbf_all_rejuvenation,
    platform_mtbf_single_rejuvenation,
)
from repro.distributions import Exponential, Weibull
from repro.experiments.rejuvenation_fig import run_rejuvenation_figure
from repro.units import DAY, MINUTE, YEAR


class TestClosedForms:
    def test_single_rejuvenation_rate(self):
        d = Weibull.from_mtbf(125 * YEAR, 0.7)
        assert platform_mtbf_single_rejuvenation(d, 45_208, MINUTE) == pytest.approx(
            (125 * YEAR + MINUTE) / 45_208
        )

    def test_all_rejuvenation_weibull_closed_form(self):
        d = Weibull.from_mtbf(125 * YEAR, 0.7)
        p = 1024
        expected = MINUTE + d.mean() / p ** (1 / 0.7)
        assert platform_mtbf_all_rejuvenation(d, p, MINUTE) == pytest.approx(
            expected, rel=1e-9
        )

    def test_exponential_rejuvenation_equivalent_rates(self):
        """For k=1 the min-law mean is exactly mu/p: the only difference
        between the options is the downtime accounting."""
        d = Exponential.from_mtbf(125 * YEAR)
        p = 512
        with_rej = platform_mtbf_all_rejuvenation(d, p, MINUTE)
        without = platform_mtbf_single_rejuvenation(d, p, MINUTE)
        assert with_rej == pytest.approx(MINUTE + d.mean() / p, rel=1e-6)
        assert with_rej > without  # D is paid once per platform failure

    def test_k_below_one_rejuvenation_hurts(self):
        """The paper's key observation: for k<1 and large p,
        all-rejuvenation yields a much *smaller* platform MTBF."""
        d = Weibull.from_mtbf(125 * YEAR, 0.7)
        for p in (2**10, 2**14, 2**18):
            assert platform_mtbf_all_rejuvenation(
                d, p, MINUTE
            ) < platform_mtbf_single_rejuvenation(d, p, MINUTE)

    def test_gap_grows_with_p(self):
        d = Weibull.from_mtbf(125 * YEAR, 0.7)
        ratios = []
        for p in (2**6, 2**10, 2**14):
            ratios.append(
                platform_mtbf_single_rejuvenation(d, p, MINUTE)
                / platform_mtbf_all_rejuvenation(d, p, MINUTE)
            )
        assert ratios[0] < ratios[1] < ratios[2]


class TestMonteCarlo:
    def test_single_rejuvenation_estimate(self):
        d = Weibull.from_mtbf(30 * DAY, 0.7)
        p = 32
        est = estimate_platform_mtbf_mc(d, p, 60.0, horizon=3000 * DAY, seed=0)
        assert est == pytest.approx(
            platform_mtbf_single_rejuvenation(d, p, 60.0), rel=0.1
        )

    def test_all_rejuvenation_estimate(self):
        d = Weibull.from_mtbf(30 * DAY, 0.7)
        p = 32
        est = estimate_platform_mtbf_mc(
            d, p, 60.0, horizon=3000 * DAY, seed=1, rejuvenate_all=True
        )
        assert est == pytest.approx(
            platform_mtbf_all_rejuvenation(d, p, 60.0), rel=0.15
        )


class TestFigure1:
    def test_series_shape(self):
        fig = run_rejuvenation_figure()
        n = len(fig.p_exponents)
        assert len(fig.log2_mtbf_with_rejuvenation) == n
        assert len(fig.log2_mtbf_without_rejuvenation) == n

    def test_without_rejuvenation_line_is_straight(self):
        """log2 MTBF without rejuvenation drops by exactly 1 per doubling
        (slope -1 vs log2 p) — the straight line in Figure 1."""
        fig = run_rejuvenation_figure(p_exponents=(4, 6, 8, 10))
        diffs = np.diff(fig.log2_mtbf_without_rejuvenation)
        assert np.allclose(diffs, -2.0, atol=1e-6)  # exponent step is 2

    def test_with_rejuvenation_drops_faster(self):
        fig = run_rejuvenation_figure(p_exponents=(4, 10, 16))
        d_with = fig.log2_mtbf_with_rejuvenation[0] - fig.log2_mtbf_with_rejuvenation[-1]
        d_without = (
            fig.log2_mtbf_without_rejuvenation[0]
            - fig.log2_mtbf_without_rejuvenation[-1]
        )
        assert d_with > d_without
