"""Legacy shim so `python setup.py develop` works in offline
environments lacking the `wheel` package (PEP 660 editable installs need
it).  Normal installs should use `pip install -e .`."""

from setuptools import setup

setup()
