#!/usr/bin/env python
"""The paper's headline scenario: a tightly-coupled job on a Jaguar-like
platform with Weibull failures (Table 4 / Figure 4).

Real HPC failure logs fit Weibull laws with shape k < 1 (decreasing
hazard): a processor is *less* likely to fail the longer it has been up.
MTBF-based periodic rules (Young/Daly) ignore this and under-checkpoint
on a nearly-fresh platform; the DPNextFailure dynamic program reads the
actual processor ages and adapts — the paper's key result.

Run:  python examples/petascale_weibull.py [--procs 512] [--traces 12]
"""

import argparse

import numpy as np

from repro.cluster import ConstantOverhead, Platform, scaled_petascale
from repro.distributions import Weibull
from repro.policies import Bouguerra, DalyHigh, DPNextFailurePolicy, OptExp, Young
from repro.simulation import simulate_job, simulate_lower_bound
from repro.traces import generate_platform_traces
from repro.units import DAY


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--procs", type=int, default=512,
                    help="platform size (scaled stand-in for Jaguar's 45208)")
    ap.add_argument("--traces", type=int, default=12)
    ap.add_argument("--shape", type=float, default=0.7,
                    help="Weibull shape parameter k")
    args = ap.parse_args()

    preset = scaled_petascale(args.procs)
    dist = Weibull.from_mtbf(preset.processor_mtbf, args.shape)
    platform = Platform(
        p=preset.ptotal,
        dist=dist,
        downtime=preset.downtime,
        overhead=ConstantOverhead(preset.overhead_seconds),
    )
    work = preset.work / preset.ptotal
    print(f"Platform: {preset.ptotal} processors, platform MTBF "
          f"{platform.platform_mtbf / 3600:.1f} h, job {work / DAY:.1f} days, "
          f"C=R={platform.checkpoint:.0f}s, Weibull k={args.shape}")

    policies = [Young(), DalyHigh(), OptExp(), Bouguerra(), DPNextFailurePolicy()]
    spans = {p.name: [] for p in policies}
    spans["LowerBound"] = []
    fails = []
    for i in range(args.traces):
        tr = generate_platform_traces(
            dist, preset.ptotal, preset.horizon,
            downtime=preset.downtime, seed=i,
        ).for_job(preset.ptotal)
        for pol in policies:
            res = simulate_job(
                pol, work, tr, platform.checkpoint, platform.recovery, dist,
                t0=preset.start_offset, platform_mtbf=platform.platform_mtbf,
            )
            spans[pol.name].append(res.makespan)
            if pol.name == "DPNextFailure":
                fails.append(res.n_failures)
        spans["LowerBound"].append(
            simulate_lower_bound(
                work, tr, platform.checkpoint, platform.recovery,
                t0=preset.start_offset,
            ).makespan
        )

    arr = {k: np.asarray(v) for k, v in spans.items()}
    best = np.min(np.vstack([v for k, v in arr.items() if k != "LowerBound"]), axis=0)
    print(f"\n{'policy':>15}  {'makespan (d)':>12}  {'degradation':>11}")
    for name, v in sorted(arr.items(), key=lambda kv: kv[1].mean()):
        print(f"{name:>15}  {v.mean() / DAY:12.2f}  {np.mean(v / best):11.4f}")
    print(f"\nDPNextFailure failures per run: avg {np.mean(fails):.1f}, "
          f"max {np.max(fails)} (the paper's spare-processor guidance)")


if __name__ == "__main__":
    main()
