#!/usr/bin/env python
"""Replaying production-like failure logs (Figure 7 / Section 6).

Builds a synthetic LANL-like availability log (4-processor nodes,
heavy-tailed Weibull-ish availability intervals with a short
repeat-failure mixture), constructs the paper's discrete empirical
distribution from it, and compares MTBF-based periodic policies against
DPNextFailure in the resulting — brutal — regime where the platform MTBF
is only a handful of checkpoint durations.

Run:  python examples/logbased_cluster.py [--procs 256] [--traces 6]
"""

import argparse

import numpy as np

from repro.cluster import ConstantOverhead, Platform
from repro.cluster.presets import PETASCALE
from repro.distributions import Empirical, fit_weibull_mle
from repro.policies import DalyHigh, DPNextFailurePolicy, OptExp, Young
from repro.simulation import simulate_job, simulate_lower_bound
from repro.traces import generate_platform_traces
from repro.traces.logs import synthesize_lanl_like_log
from repro.units import DAY, HOUR, YEAR


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--procs", type=int, default=256)
    ap.add_argument("--traces", type=int, default=6)
    ap.add_argument("--cluster", type=int, default=19, choices=(18, 19))
    args = ap.parse_args()

    log = synthesize_lanl_like_log(cluster=args.cluster, seed=7)
    lam_fit, k_fit = fit_weibull_mle(log.durations)
    print(f"Synthetic log '{log.name}': {log.durations.size} availability "
          f"intervals over {log.n_nodes} nodes; Weibull fit k={k_fit:.2f} "
          f"(LANL range: 0.33-0.49)")

    # scale durations so this small platform sits in the paper's regime
    factor = args.procs / PETASCALE.ptotal
    dist = Empirical(log.durations * factor)
    platform = Platform(
        p=args.procs,
        dist=dist,
        downtime=60.0,
        overhead=ConstantOverhead(600.0),
        procs_per_node=log.procs_per_node,
    )
    work = PETASCALE.work * factor / args.procs / 4  # ~2 days of compute
    t0 = YEAR * factor
    horizon = t0 + YEAR
    print(f"Platform: {args.procs} procs ({platform.num_nodes} nodes), "
          f"platform MTBF {platform.platform_mtbf:.0f} s vs C+R=1200 s, "
          f"job {work / DAY:.1f} days\n")

    policies = [Young(), DalyHigh(), OptExp(), DPNextFailurePolicy()]
    spans = {p.name: [] for p in policies}
    spans["LowerBound"] = []
    for i in range(args.traces):
        tr = generate_platform_traces(
            dist, platform.num_nodes, horizon, downtime=60.0, seed=i
        ).for_job(platform.num_nodes)
        for pol in policies:
            res = simulate_job(
                pol, work, tr, 600.0, 600.0, dist,
                t0=t0, platform_mtbf=platform.platform_mtbf,
            )
            spans[pol.name].append(res.makespan)
        spans["LowerBound"].append(
            simulate_lower_bound(work, tr, 600.0, 600.0, t0=t0).makespan
        )

    arr = {k: np.asarray(v) for k, v in spans.items()}
    best = np.min(np.vstack([v for k, v in arr.items() if k != "LowerBound"]), axis=0)
    print(f"{'policy':>15}  {'makespan (d)':>12}  {'degradation':>11}")
    for name, v in sorted(arr.items(), key=lambda kv: kv[1].mean()):
        print(f"{name:>15}  {v.mean() / DAY:12.2f}  {np.mean(v / best):11.4f}")
    saved = (arr["Young"].mean() - arr["DPNextFailure"].mean()) / HOUR
    print(f"\nDPNextFailure saves {saved * args.procs:.0f} processor-hours "
          f"per job vs Young on this platform.")


if __name__ == "__main__":
    main()
