#!/usr/bin/env python
"""Extension demo: progress-dependent checkpoint cost (Section 8).

Many applications shed state as they converge (multigrid coarsening,
shrinking active sets), so checkpoints get cheaper over time; others
accumulate state (adaptive mesh refinement) and checkpoints get dearer.
The paper notes its DP extends directly to such costs; this example
solves the extended DP for Exponential failures and shows how the
optimal checkpoint placement shifts against the cost profile.

Run:  python examples/variable_checkpoint_cost.py
"""

import numpy as np

from repro.core.variable_cost import dp_makespan_variable_cost
from repro.units import DAY, HOUR

WORK = 24 * HOUR
MTBF = 6 * HOUR
DOWNTIME = 60.0


def describe(name: str, plan) -> None:
    chunks = plan.chunks
    print(f"{name}:")
    print(f"  expected makespan {plan.expected_makespan / HOUR:6.2f} h, "
          f"{len(chunks)} chunks")
    head = " ".join(f"{c / HOUR:.2f}" for c in chunks[:5])
    tail = " ".join(f"{c / HOUR:.2f}" for c in chunks[-5:])
    print(f"  first chunks (h): {head}   last chunks (h): {tail}\n")


def main() -> None:
    lam = 1.0 / MTBF
    print(f"Job: {WORK / HOUR:.0f} h of work, Exponential failures "
          f"(MTBF {MTBF / HOUR:.0f} h), downtime {DOWNTIME:.0f} s\n")

    describe(
        "Constant cost C = 600 s (Theorem 1 regime)",
        dp_makespan_variable_cost(WORK, lambda _: 600.0, lam, DOWNTIME, n_grid=288),
    )
    describe(
        "Shrinking state: C falls 1800 s -> 60 s as the job progresses",
        dp_makespan_variable_cost(
            WORK,
            lambda remaining: 60.0 + 1740.0 * remaining / WORK,
            lam,
            DOWNTIME,
            n_grid=288,
        ),
    )
    describe(
        "Growing state: C rises 60 s -> 1800 s as the job progresses",
        dp_makespan_variable_cost(
            WORK,
            lambda remaining: 60.0 + 1740.0 * (1.0 - remaining / WORK),
            lam,
            DOWNTIME,
            n_grid=288,
        ),
    )
    print("Note how checkpoints cluster where they are cheap: late for the "
          "shrinking profile, early for the growing one.")


if __name__ == "__main__":
    main()
