#!/usr/bin/env python
"""Extension demo: replicating a job on both platform halves (Section 8).

The paper's conclusion asks whether, under failures, a job should enroll
the whole platform or run replicated on two halves (independently, or
synchronizing after each checkpoint).  This script sweeps the failure
intensity and prints the three mean makespans: on a reliable platform
replication wastes half the machine; as the MTBF shrinks toward the
chunk length, the synchronized replica starts masking failures faster
than it loses throughput.

Run:  python examples/replication_tradeoff.py [--procs 64] [--traces 6]
"""

import argparse
import dataclasses

from repro.cluster.presets import PETASCALE
from repro.experiments import SMALL
from repro.experiments.replication import run_replication_experiment
from repro.units import DAY


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--procs", type=int, default=64)
    ap.add_argument("--traces", type=int, default=6)
    args = ap.parse_args()

    scale = dataclasses.replace(SMALL, n_traces=args.traces * 3)
    points = run_replication_experiment(
        scale=scale,
        mtbf_factors=(1.0, 0.1, 0.03, 0.01),
        preset=PETASCALE.scale(args.procs),
    )
    print(f"{'MTBF factor':>11} {'platform MTBF(s)':>16} {'full(d)':>9} "
          f"{'indep(d)':>9} {'sync(d)':>9}  verdict")
    for pt in points:
        verdict = "replicate" if pt.replication_wins else "use all procs"
        print(f"{pt.mtbf_factor:>11.3f} {pt.platform_mtbf:>16.0f} "
              f"{pt.full / DAY:>9.2f} {pt.independent / DAY:>9.2f} "
              f"{pt.synchronized / DAY:>9.2f}  {verdict}")
    print("\n(The crossover moves as C / platform-MTBF grows: replication "
          "pays off only when failures dominate the unreplicated run.)")


if __name__ == "__main__":
    main()
