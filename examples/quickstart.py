#!/usr/bin/env python
"""Quickstart: checkpoint a job on a failure-prone processor.

Walks through the library's core loop in five steps:

1. pick a failure law (Exponential with a 1-day MTBF),
2. compute the *optimal* checkpoint plan from Theorem 1,
3. generate a failure trace and simulate the execution,
4. compare against Young's classic rule of thumb,
5. show the omniscient lower bound for context.

Run:  python examples/quickstart.py
"""

from repro.core import expected_makespan_optimal
from repro.distributions import Exponential
from repro.policies import OptExp, Young
from repro.simulation import simulate_job, simulate_lower_bound
from repro.traces import generate_platform_traces
from repro.units import DAY, HOUR

CHECKPOINT = 600.0  # 10 min to save state
RECOVERY = 600.0  # 10 min to restore it
DOWNTIME = 60.0  # 1 min to reboot / swap in a spare
WORK = 20 * DAY  # three weeks of compute
MTBF = DAY  # one failure per day on average


def main() -> None:
    dist = Exponential.from_mtbf(MTBF)

    # -- 1. the closed-form optimum (Theorem 1) ------------------------
    plan = expected_makespan_optimal(
        1.0 / MTBF, WORK, CHECKPOINT, DOWNTIME, RECOVERY
    )
    print(f"Optimal plan: {plan.num_chunks} chunks of "
          f"{plan.chunk_size / HOUR:.2f} h")
    print(f"Expected makespan: {plan.expected_makespan / DAY:.2f} days "
          f"(failure-free would be {WORK / DAY:.0f} days)")

    # -- 2. simulate against a concrete failure trace ------------------
    traces = generate_platform_traces(
        dist, n_units=1, horizon=80 * WORK, downtime=DOWNTIME, seed=42
    ).for_job(1)

    for policy in (OptExp(), Young()):
        res = simulate_job(
            policy, WORK, traces, CHECKPOINT, RECOVERY, dist,
            platform_mtbf=MTBF,
        )
        print(f"{policy.name:>8}: makespan {res.makespan / DAY:6.2f} days, "
              f"{res.n_failures} failures, {res.n_checkpoints} checkpoints")

    # -- 3. how close is that to perfection? ---------------------------
    lb = simulate_lower_bound(WORK, traces, CHECKPOINT, RECOVERY)
    print(f"Omniscient lower bound: {lb.makespan / DAY:.2f} days "
          "(knows every failure date in advance)")


if __name__ == "__main__":
    main()
