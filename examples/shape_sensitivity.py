#!/usr/bin/env python
"""How the Weibull shape parameter drives the value of adaptivity
(Figure 5).

Sweeps k from near-pathological (0.15) to Exponential (1.0) on a full
scaled Jaguar-like platform and prints the average degradation-from-best
of each heuristic.  As k decreases the hazard becomes more front-loaded
and the MTBF-based periodic rules — and especially the
rejuvenation-assuming Bouguerra/Liu policies — fall apart, while
DPNextFailure stays close to the best achievable.

Run:  python examples/shape_sensitivity.py [--traces 8]
"""

import argparse
import dataclasses

from repro.analysis import format_series
from repro.experiments import SMALL
from repro.experiments.shape_sweep import run_shape_sweep


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--traces", type=int, default=8)
    ap.add_argument("--procs", type=int, default=256)
    args = ap.parse_args()

    scale = dataclasses.replace(
        SMALL,
        n_traces=args.traces,
        ptotal_peta=args.procs,
        period_lb_traces=min(6, args.traces),
    )
    result = run_shape_sweep(shapes=(0.3, 0.5, 0.7, 1.0), scale=scale)
    print(
        format_series(
            "k",
            list(result.shapes),
            result.series(),
            title="Average makespan degradation vs Weibull shape "
            f"(p={args.procs}, {args.traces} traces; '--' = infeasible)",
        )
    )


if __name__ == "__main__":
    main()
