#!/usr/bin/env python
"""Why you should NOT rejuvenate the whole platform after one failure
(Figure 1 / Section 3.1).

With Weibull-distributed lifetimes of shape k < 1, an aged processor is
*more* reliable than a fresh one.  Rejuvenating all p processors after
every failure therefore resets the platform into its most fragile state:
the platform MTBF drops as mu / p^{1/k} instead of mu / p.  This script
prints both curves (the analytic Figure 1) and cross-checks them with a
Monte-Carlo simulation at a modest size.

Run:  python examples/rejuvenation_study.py
"""

import math

from repro.analysis import (
    estimate_platform_mtbf_mc,
    platform_mtbf_all_rejuvenation,
    platform_mtbf_single_rejuvenation,
)
from repro.distributions import Weibull
from repro.units import DAY, MINUTE, YEAR

SHAPE = 0.7
PROC_MTBF = 125 * YEAR
DOWNTIME = MINUTE


def main() -> None:
    dist = Weibull.from_mtbf(PROC_MTBF, SHAPE)
    print(f"Weibull k={SHAPE}, processor MTBF 125 years, downtime 60 s\n")
    print(f"{'log2(p)':>8}  {'log2 MTBF, all-rejuv':>20}  "
          f"{'log2 MTBF, single-rejuv':>24}")
    for e in range(2, 19, 2):
        p = 2**e
        w = platform_mtbf_all_rejuvenation(dist, p, DOWNTIME)
        wo = platform_mtbf_single_rejuvenation(dist, p, DOWNTIME)
        print(f"{e:>8}  {math.log2(w):>20.2f}  {math.log2(wo):>24.2f}")

    # Monte-Carlo cross-check at a small size (shorter MTBF to get
    # statistics quickly; the ordering is scale-free).
    small = Weibull.from_mtbf(30 * DAY, SHAPE)
    p = 64
    mc_all = estimate_platform_mtbf_mc(
        small, p, 60.0, horizon=2000 * DAY, rejuvenate_all=True
    )
    mc_single = estimate_platform_mtbf_mc(small, p, 60.0, horizon=2000 * DAY)
    print(f"\nMonte-Carlo check (p={p}, processor MTBF 30 days):")
    print(f"  all-rejuvenation:    simulated {mc_all:9.0f} s  "
          f"analytic {platform_mtbf_all_rejuvenation(small, p, 60.0):9.0f} s")
    print(f"  single-rejuvenation: simulated {mc_single:9.0f} s  "
          f"analytic {platform_mtbf_single_rejuvenation(small, p, 60.0):9.0f} s")
    print("\nConclusion: for k < 1 rejuvenating everything costs a large "
          "factor of platform MTBF; the paper (and this library) simulate "
          "single-processor rejuvenation.")


if __name__ == "__main__":
    main()
