"""Whole-program semantic model for the project-scoped lint rules.

The per-file rules (R1-R5) each walk one AST; the flow rules (R6-R8)
need to see *across* call sites: who calls whom, with which arguments,
against which signature.  This module builds that view:

- a :class:`ModuleInfo` per linted file — the module's import bindings,
  its function/method signatures, and a summary of every call site in
  each function body;
- a :class:`ProjectModel` over all files — dotted-name resolution of
  call sites through ``repro.*`` imports (including re-exports through
  package ``__init__`` modules), and the transitive *sampling closure*:
  the set of functions that can reach a randomness sink
  (``Distribution.sample``, ``numpy.random.default_rng``) through
  resolved calls or function references.

Everything here is a plain-data summary (dataclasses of str/int/bool),
deliberately JSON-round-trippable so the incremental cache
(:mod:`repro.lint.cache`) can persist per-file summaries and rebuild
the whole-program model without re-parsing an unchanged tree.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.lint.astutil import call_name, dotted_name
from repro.lint.cfg import CFG, build_cfg
from repro.lint.pragmas import clock_ok_annotations

__all__ = [
    "ArgSummary",
    "CallSite",
    "FunctionInfo",
    "KNOB_NAMES",
    "ModuleInfo",
    "ProjectModel",
    "SEED_PARAM_NAMES",
    "build_module_info",
    "module_name_for",
    "wants_cfg",
]

# Parameter / binding names that carry the reproducibility seed.
SEED_PARAM_NAMES = frozenset({"seed", "rng", "ss", "seed_sequence", "random_state"})

# Call tails that *consume* randomness: reaching one of these makes a
# function part of the sampling closure.
_SAMPLING_TAILS = frozenset({"sample", "sample_conditional"})


@dataclass(frozen=True)
class ArgSummary:
    """Shape of one argument expression at a call site.

    ``kind`` is ``"literal"`` (numeric constant, ``value`` set),
    ``"name"`` (a Name or Attribute chain, ``name`` is the terminal
    identifier, ``dotted`` the full chain), or ``"other"``.
    """

    kind: str
    value: float | None = None
    name: str | None = None
    dotted: str | None = None


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    ``guard`` is the strongest ``try`` protection enclosing the site
    (``""`` < ``"narrow"`` < ``"oserror"`` < ``"broad"``, by handler
    type); ``in_handler`` marks sites inside an ``except`` body (they
    run while converting a failure, under the *outer* guard only).
    """

    callee: str  # dotted name as written, e.g. "np.random.default_rng"
    lineno: int
    col: int
    args: tuple[ArgSummary, ...] = ()
    keywords: tuple[tuple[str, ArgSummary], ...] = ()
    has_star_args: bool = False
    has_star_kwargs: bool = False
    guard: str = ""
    in_handler: bool = False

    def keyword_names(self) -> set[str]:
        """Names of every keyword argument passed at this site."""
        return {k for k, _ in self.keywords}


@dataclass(frozen=True)
class Param:
    """One parameter of a function signature."""

    name: str
    kind: str  # "pos" (positional-or-keyword / positional-only) or "kw"
    has_default: bool = False


@dataclass
class FunctionInfo:
    """Signature + body summary of one function or method."""

    name: str
    qualname: str  # module-relative, e.g. "ParallelRunner.run"
    lineno: int
    col: int
    params: list[Param] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    # (name, lineno, col) of assignments that rebind a seed-carrying
    # name to a constant-only expression — R6's "shadow" hazard.
    seed_shadows: list[tuple[str, int, int]] = field(default_factory=list)
    samples_directly: bool = False
    is_test: bool = False
    # (knob, lineno, col, hazard) for fast-path branches with a missing
    # or raising reference branch — R14's raw material
    knob_hazards: list[tuple[str, int, int, str]] = field(default_factory=list)
    # line numbers of raise statements outside any enclosing try
    raises: list[int] = field(default_factory=list)
    # control-flow graph; only built for files in the envelope-contract
    # scope (see :func:`wants_cfg`) to keep cache entries small
    cfg: CFG | None = None

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    def param_names(self) -> list[str]:
        """All parameter names, in signature order."""
        return [p.name for p in self.params]

    def seed_params(self) -> set[str]:
        """Parameters that carry the reproducibility seed, if any."""
        return {p.name for p in self.params if p.name in SEED_PARAM_NAMES}

    def positional_params(self) -> list[Param]:
        """Positional slots as seen by a caller (leading self/cls dropped
        for methods)."""
        params = [p for p in self.params if p.kind == "pos"]
        if "." in self.qualname and params and params[0].name in ("self", "cls"):
            params = params[1:]
        return params


@dataclass
class ModuleInfo:
    """Summary of one linted file."""

    module: str  # dotted module name ("repro.cli", "tests.test_lint", ...)
    path: str  # posix path the file was linted at
    imports: dict[str, str] = field(default_factory=dict)  # alias -> target
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    exports: list[str] = field(default_factory=list)  # literal __all__
    strings: list[str] = field(default_factory=list)  # every str constant
    # top-level NAME = "string constant" bindings
    constants: dict[str, str] = field(default_factory=dict)
    # calls at module level (outside any function body) — the envelope
    # rule needs them because module-level prints bypass every handler
    toplevel_calls: list[CallSite] = field(default_factory=list)
    # class qualname -> {attr -> constructor dotted name} for one-level
    # ``self.x = Ctor(...)`` assignments (receiver-type resolution)
    attr_types: dict[str, dict[str, str]] = field(default_factory=dict)
    # 1-based line -> justification of a ``# reprolint: clock-ok=`` pragma
    clock_ok: dict[int, str] = field(default_factory=dict)

    # -- serialization (for the incremental cache) ---------------------

    def to_json(self) -> dict[str, Any]:
        """Plain-data form for the incremental cache."""
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ModuleInfo":
        functions = {}
        for qual, fn in data.get("functions", {}).items():
            functions[qual] = FunctionInfo(
                name=fn["name"],
                qualname=fn["qualname"],
                lineno=fn["lineno"],
                col=fn["col"],
                params=[Param(**p) for p in fn.get("params", [])],
                calls=[_call_site_from_json(c) for c in fn.get("calls", [])],
                seed_shadows=[tuple(s) for s in fn.get("seed_shadows", [])],
                samples_directly=fn.get("samples_directly", False),
                is_test=fn.get("is_test", False),
                knob_hazards=[tuple(h) for h in fn.get("knob_hazards", [])],
                raises=list(fn.get("raises", [])),
                cfg=CFG.from_json(fn["cfg"]) if fn.get("cfg") else None,
            )
        return cls(
            module=data["module"],
            path=data["path"],
            imports=dict(data.get("imports", {})),
            functions=functions,
            exports=list(data.get("exports", [])),
            strings=list(data.get("strings", [])),
            constants=dict(data.get("constants", {})),
            toplevel_calls=[
                _call_site_from_json(c)
                for c in data.get("toplevel_calls", [])
            ],
            attr_types={
                cls: dict(attrs)
                for cls, attrs in data.get("attr_types", {}).items()
            },
            clock_ok={
                int(line): why
                for line, why in data.get("clock_ok", {}).items()
            },
        )


def _call_site_from_json(c: dict[str, Any]) -> CallSite:
    return CallSite(
        callee=c["callee"],
        lineno=c["lineno"],
        col=c["col"],
        args=tuple(ArgSummary(**a) for a in c.get("args", [])),
        keywords=tuple(
            (k, ArgSummary(**a)) for k, a in c.get("keywords", [])
        ),
        has_star_args=c.get("has_star_args", False),
        has_star_kwargs=c.get("has_star_kwargs", False),
        guard=c.get("guard", ""),
        in_handler=c.get("in_handler", False),
    )


# ----------------------------------------------------------------------
# building a ModuleInfo from an AST
# ----------------------------------------------------------------------


def wants_cfg(path: Path) -> bool:
    """Files whose functions get CFGs: the CLI front-end and the
    service tier — the envelope-contract scope of R11."""
    return path.name == "cli.py" or "service" in path.parts


def module_name_for(path: Path) -> str:
    """Dotted module name: walk up while directories are packages.

    ``src/repro/simulation/runner.py`` -> ``repro.simulation.runner``;
    a file whose directory has no ``__init__.py`` is its own top-level
    module (``conftest``).
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _summarize_arg(node: ast.expr) -> ArgSummary:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return ArgSummary(kind="other")
        return ArgSummary(kind="literal", value=float(node.value))
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = _summarize_arg(node.operand)
        if inner.kind == "literal" and inner.value is not None:
            sign = -1.0 if isinstance(node.op, ast.USub) else 1.0
            return ArgSummary(kind="literal", value=sign * inner.value)
        return ArgSummary(kind="other")
    dotted = dotted_name(node)
    if dotted is not None:
        return ArgSummary(kind="name", name=dotted.split(".")[-1], dotted=dotted)
    return ArgSummary(kind="other")


def _expr_is_constant_only(node: ast.expr) -> bool:
    """No Name/Attribute appears in data position — e.g. ``0``,
    ``default_rng()``, ``SeedSequence([1, 2])``.  The *callee* of a call
    is ignored (``np.random.default_rng`` is plumbing, not data)."""
    if isinstance(node, ast.Call):
        return all(_expr_is_constant_only(a) for a in node.args) and all(
            _expr_is_constant_only(kw.value) for kw in node.keywords
        )
    if isinstance(node, (ast.Name, ast.Attribute)):
        return False
    return all(
        _expr_is_constant_only(child)
        for child in ast.iter_child_nodes(node)
        if isinstance(child, ast.expr)
    )


def _summarize_call(
    node: ast.Call, guard: str = "", in_handler: bool = False
) -> CallSite | None:
    name = call_name(node)
    if name is None:
        return None
    return CallSite(
        callee=name,
        lineno=node.lineno,
        col=node.col_offset,
        guard=guard,
        in_handler=in_handler,
        args=tuple(
            _summarize_arg(a)
            for a in node.args
            if not isinstance(a, ast.Starred)
        ),
        keywords=tuple(
            (kw.arg, _summarize_arg(kw.value))
            for kw in node.keywords
            if kw.arg is not None
        ),
        has_star_args=any(isinstance(a, ast.Starred) for a in node.args),
        has_star_kwargs=any(kw.arg is None for kw in node.keywords),
    )


# Guard categories a try/except imposes on call sites in its body,
# ordered weakest to strongest.
_GUARD_ORDER = {"": 0, "narrow": 1, "oserror": 2, "broad": 3}

_BROAD_HANDLERS = frozenset({"Exception", "BaseException"})
_OSERROR_HANDLERS = frozenset(
    {
        "OSError",
        "IOError",
        "EnvironmentError",
        "ConnectionError",
        "ConnectionResetError",
        "BrokenPipeError",
        "TimeoutError",
    }
)


def _handler_category(handler: ast.ExceptHandler) -> str:
    """What an ``except <type>`` clause can absorb."""
    def one(node: ast.expr | None) -> str:
        if node is None:
            return "broad"  # bare except
        name = dotted_name(node)
        tail = name.split(".")[-1] if name else ""
        if tail in _BROAD_HANDLERS:
            return "broad"
        if tail in _OSERROR_HANDLERS:
            return "oserror"
        return "narrow"

    if handler.type is not None and isinstance(handler.type, ast.Tuple):
        cats = [one(e) for e in handler.type.elts]
        return max(cats, key=_GUARD_ORDER.__getitem__, default="narrow")
    return one(handler.type)


def _try_category(node: ast.Try) -> str:
    """The strongest absorption any handler of this ``try`` offers."""
    cats = [_handler_category(h) for h in node.handlers]
    return max(cats, key=_GUARD_ORDER.__getitem__, default="")


class _FunctionScanner(ast.NodeVisitor):
    """Collect call sites, sampling sinks and seed shadows of one body.

    A stack of guard categories tracks the ``try`` nesting around each
    call site; handler and ``else``/``finally`` bodies are visited with
    their own try's guard popped (an exception raised *there* sails past
    that try), and handler bodies additionally set ``in_handler``.
    """

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info
        self._guards: list[str] = []
        self._handler_depth = 0

    def _guard(self) -> str:
        return max(self._guards, key=_GUARD_ORDER.__getitem__, default="")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs get their own FunctionInfo

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Try(self, node: ast.Try) -> None:
        self._guards.append(_try_category(node))
        for stmt in node.body:
            self.visit(stmt)
        self._guards.pop()
        self._handler_depth += 1
        for handler in node.handlers:
            for stmt in handler.body:
                self.visit(stmt)
        self._handler_depth -= 1
        for stmt in [*node.orelse, *node.finalbody]:
            self.visit(stmt)

    def visit_Call(self, node: ast.Call) -> None:
        site = _summarize_call(
            node, guard=self._guard(), in_handler=self._handler_depth > 0
        )
        if site is not None:
            if site.callee.split(".")[-1] in _SAMPLING_TAILS:
                self.info.samples_directly = True
            self.info.calls.append(site)
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise) -> None:
        if self._guard() == "" and self._handler_depth == 0:
            self.info.raises.append(node.lineno)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if (
                isinstance(target, ast.Name)
                and target.id in SEED_PARAM_NAMES
                and _expr_is_constant_only(node.value)
            ):
                self.info.seed_shadows.append(
                    (target.id, node.lineno, node.col_offset)
                )
        self.generic_visit(node)


# Fast-path knobs whose gating branches R14 audits: each selects a
# bit-identical accelerated implementation with a reference escape hatch.
KNOB_NAMES = frozenset(
    {
        "use_batch",
        "use_memo",
        "use_shm",
        "use_cache",
        "use_disk_cache",
        "use_sweep_plan",
        "vectorized",
    }
)


def _knob_test(expr: ast.expr) -> tuple[str, bool] | None:
    """``(knob, positive)`` when ``expr`` tests a fast-path knob:
    a bare name, ``self.<knob>``, ``not <knob-test>``, or the first
    operand of an ``and`` chain (``if use_shm and n > 1:``)."""
    if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.And) and expr.values:
        return _knob_test(expr.values[0])
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
        inner = _knob_test(expr.operand)
        return (inner[0], not inner[1]) if inner is not None else None
    if isinstance(expr, ast.Name) and expr.id in KNOB_NAMES:
        return expr.id, True
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in KNOB_NAMES
    ):
        return expr.attr, True
    return None


def _raising_branch(body: list[ast.stmt]) -> bool:
    """A branch that only raises (possibly after logging expressions)."""
    return bool(body) and isinstance(body[-1], ast.Raise) and all(
        isinstance(s, (ast.Raise, ast.Expr)) for s in body
    )


def _knob_hazards(body: list[ast.stmt]) -> list[tuple[str, int, int, str]]:
    """Fast-path gates with a missing or raising reference branch.

    ``no-slow-path``: ``if <knob>:`` in tail position whose body ends in
    Return/Raise with no ``else`` — turning the knob off falls off the
    function instead of reaching reference code.  ``raising-slow-path``:
    the knob-off branch (``else:`` of a positive test, or the body of
    ``if not <knob>:``) consists solely of a ``raise``.
    """
    out: list[tuple[str, int, int, str]] = []

    def scan(stmts: list[ast.stmt], tail: bool) -> None:
        for i, stmt in enumerate(stmts):
            last = i == len(stmts) - 1
            if isinstance(stmt, ast.If):
                kt = _knob_test(stmt.test)
                if kt is not None:
                    knob, positive = kt
                    where = (knob, stmt.lineno, stmt.col_offset)
                    if positive and _raising_branch(stmt.orelse):
                        out.append((*where, "raising-slow-path"))
                    elif (
                        positive
                        and not stmt.orelse
                        and tail
                        and last
                        and stmt.body
                        and isinstance(stmt.body[-1], (ast.Return, ast.Raise))
                    ):
                        out.append((*where, "no-slow-path"))
                    elif not positive and _raising_branch(stmt.body):
                        out.append((*where, "raising-slow-path"))
                scan(stmt.body, tail and last)
                scan(stmt.orelse, tail and last)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                scan(stmt.body, False)
                scan(stmt.orelse, False)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                scan(stmt.body, tail and last)
            elif isinstance(stmt, ast.Try):
                scan(stmt.body, False)
                for handler in stmt.handlers:
                    scan(handler.body, False)
                scan(stmt.orelse, False)
                scan(stmt.finalbody, False)

    scan(body, True)
    return out


def _collect_attr_types(tree: ast.Module) -> dict[str, dict[str, str]]:
    """Per class qualname, one-level receiver types:
    ``self.<attr> = Ctor(...)`` assignments in its methods (the ctor
    dotted name must look like a class — capitalized last segment)."""
    out: dict[str, dict[str, str]] = {}

    def looks_like_class(name: str | None) -> bool:
        if not name:
            return False
        seg = name.split(".")[-1].lstrip("_")
        return bool(seg) and seg[0].isupper()

    def scan_body(body: list[ast.stmt], prefix: str) -> None:
        for stmt in body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            qual = f"{prefix}{stmt.name}"
            attrs: dict[str, str] = {}
            for method in stmt.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                for sub in ast.walk(method):
                    if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                        target, value = sub.targets[0], sub.value
                    elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                        target, value = sub.target, sub.value
                    else:
                        continue
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and isinstance(value, ast.Call)
                    ):
                        continue
                    ctor = dotted_name(value.func)
                    if looks_like_class(ctor):
                        attrs.setdefault(target.attr, ctor)
            if attrs:
                out[qual] = attrs
            scan_body(stmt.body, f"{qual}.")

    scan_body(tree.body, "")
    return out


def _function_info(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    qualprefix: str,
    with_cfg: bool = False,
) -> FunctionInfo:
    qualname = f"{qualprefix}{node.name}"
    args = node.args
    params: list[Param] = []
    positional = [*args.posonlyargs, *args.args]
    n_without_default = len(positional) - len(args.defaults)
    for i, a in enumerate(positional):
        params.append(Param(a.arg, "pos", has_default=i >= n_without_default))
    for a, d in zip(args.kwonlyargs, args.kw_defaults):
        params.append(Param(a.arg, "kw", has_default=d is not None))
    info = FunctionInfo(
        name=node.name,
        qualname=qualname,
        lineno=node.lineno,
        col=node.col_offset,
        params=params,
        is_test=node.name.startswith("test_"),
        cfg=build_cfg(node) if with_cfg else None,
    )
    scanner = _FunctionScanner(info)
    for stmt in node.body:
        scanner.visit(stmt)
    info.knob_hazards = _knob_hazards(node.body)
    return info


def _walk_definitions(
    body: list[ast.stmt], qualprefix: str, with_cfg: bool = False
) -> Iterator[FunctionInfo]:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = _function_info(stmt, qualprefix, with_cfg)
            yield info
            yield from _walk_definitions(
                stmt.body, qualprefix=f"{info.qualname}.", with_cfg=with_cfg
            )
        elif isinstance(stmt, ast.ClassDef):
            yield from _walk_definitions(
                stmt.body, qualprefix=f"{qualprefix}{stmt.name}.",
                with_cfg=with_cfg,
            )


def build_module_info(
    path: Path, tree: ast.Module, lines: list[str] | None = None
) -> ModuleInfo:
    """Summarize one parsed file for the whole-program pass.

    ``lines`` (when available) feeds the ``# reprolint: clock-ok=``
    pragma map — source is optional so summaries can also be rebuilt
    from cached JSON without the file text.
    """
    module = module_name_for(path)
    info = ModuleInfo(module=module, path=path.as_posix())
    if lines is not None:
        info.clock_ok = clock_ok_annotations(lines)
    info.attr_types = _collect_attr_types(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                info.imports[bound] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:  # relative import: resolve against the package
                anchor = module.split(".")
                if not path.name == "__init__.py":
                    anchor = anchor[:-1]
                anchor = anchor[: len(anchor) - (node.level - 1)]
                base = ".".join(anchor + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                info.imports[bound] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            info.strings.append(node.value)
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            names = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
            if (
                "__all__" in names
                and isinstance(stmt.value, (ast.List, ast.Tuple))
            ):
                info.exports = [
                    e.value
                    for e in stmt.value.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                ]
            if (
                len(names) == 1
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                info.constants[names[0]] = stmt.value.value
    for fn in _walk_definitions(tree.body, qualprefix="", with_cfg=wants_cfg(path)):
        info.functions[fn.qualname] = fn
    info.toplevel_calls = _toplevel_calls(tree)
    return info


def _toplevel_calls(tree: ast.Module) -> list[CallSite]:
    """Calls that run at import time (outside every function body)."""
    out: list[CallSite] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(tree))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            site = _summarize_call(node)
            if site is not None:
                out.append(site)
        stack.extend(ast.iter_child_nodes(node))
    return sorted(out, key=lambda c: (c.lineno, c.col))


# ----------------------------------------------------------------------
# the whole-program model
# ----------------------------------------------------------------------


class ProjectModel:
    """Cross-module view: name resolution, call graph, sampling closure."""

    def __init__(self, modules: list[ModuleInfo]):
        self.modules: dict[str, ModuleInfo] = {m.module: m for m in modules}
        self._function_index: dict[str, tuple[ModuleInfo, FunctionInfo]] = {}
        for mod in self.modules.values():
            for fn in mod.functions.values():
                self._function_index[f"{mod.module}.{fn.qualname}"] = (mod, fn)
        self._sampling: set[str] | None = None
        self._call_graph: Any = None

    # -- lookups -------------------------------------------------------

    def functions(self) -> Iterator[tuple[ModuleInfo, FunctionInfo]]:
        """Every (module, function) pair in the model."""
        for mod in self.modules.values():
            for fn in mod.functions.values():
                yield mod, fn

    def function(self, fqid: str) -> tuple[ModuleInfo, FunctionInfo] | None:
        """Look up a function by fully-qualified id, if present."""
        return self._function_index.get(fqid)

    def find_module(self, suffix: str) -> ModuleInfo | None:
        """Module whose dotted name is ``suffix`` or ends with ``.suffix``."""
        for name, mod in sorted(self.modules.items()):
            if name == suffix or name.endswith(f".{suffix}"):
                return mod
        return None

    def modules_matching(self, segment: str) -> list[ModuleInfo]:
        """Modules whose dotted name contains ``segment`` as a component."""
        return [
            m
            for name, m in sorted(self.modules.items())
            if segment in name.split(".")
        ]

    # -- name resolution -----------------------------------------------

    def resolve(self, module: ModuleInfo, callee: str) -> str | None:
        """Fully-qualified id of a call target, or None if unresolvable.

        Follows import aliases of the calling module, then chases
        re-exports through package ``__init__`` bindings (bounded), so
        ``Exponential.from_mtbf`` called under
        ``from repro.distributions import Exponential`` lands on
        ``repro.distributions.exponential.Exponential.from_mtbf``.
        """
        head, _, rest = callee.partition(".")
        if head == "self" or head == "cls":
            # method call on the own class: resolve within this module
            # by scanning for a method qualname ending with ".<rest>"
            if rest and "." not in rest:
                for qual in module.functions:
                    if qual.endswith(f".{rest}"):
                        return f"{module.module}.{qual}"
            return None
        if callee in module.functions:
            return f"{module.module}.{callee}"
        if head in module.imports:
            target = module.imports[head] + (f".{rest}" if rest else "")
        elif head in self.modules and rest:
            target = callee
        else:
            return None
        return self._chase(target)

    def _chase(self, target: str, depth: int = 0) -> str | None:
        """Normalize ``target`` through re-export bindings to a function
        id present in the index, or return it unresolved-but-final."""
        if depth > 8:
            return target
        if target in self._function_index:
            return target
        # split into (module prefix, remainder) at the longest known module
        parts = target.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                mod = self.modules[prefix]
                remainder = parts[cut:]
                bound = remainder[0]
                if bound in mod.imports:
                    rebased = ".".join([mod.imports[bound], *remainder[1:]])
                    return self._chase(rebased, depth + 1)
                return target
        return target

    def class_context(
        self, module: ModuleInfo, fn: FunctionInfo
    ) -> str | None:
        """Innermost enclosing *class* qualname of a method, or None.

        The longest qualname prefix that is not itself a function of
        the module — so a closure nested in a method still sees the
        method's class (it can capture ``self``)."""
        parts = fn.qualname.split(".")[:-1]
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix not in module.functions:
                return prefix
        return None

    def resolve_in(
        self, module: ModuleInfo, fn: FunctionInfo, callee: str
    ) -> str | None:
        """Resolution of a callee as seen from *inside* ``fn``.

        Extends :meth:`resolve` with the class-aware cases the call
        graph needs: ``self.m()``/``cls.m()`` against the enclosing
        class (unique-suffix fallback when the context is ambiguous),
        ``self.attr.m()`` through one-level receiver types recorded in
        :attr:`ModuleInfo.attr_types`, and bare names against sibling
        nested defs.
        """
        head, _, rest = callee.partition(".")
        if head in ("self", "cls"):
            cls_qual = self.class_context(module, fn)
            if rest and "." not in rest:
                if cls_qual is not None:
                    qual = f"{cls_qual}.{rest}"
                    if qual in module.functions:
                        return f"{module.module}.{qual}"
                matches = [
                    qual
                    for qual in module.functions
                    if qual.endswith(f".{rest}")
                ]
                if len(matches) == 1:
                    return f"{module.module}.{matches[0]}"
                return None
            if rest:
                attr, _, method = rest.partition(".")
                if not method or "." in method or cls_qual is None:
                    return None
                ctor = module.attr_types.get(cls_qual, {}).get(attr)
                if ctor is None:
                    return None
                owner = self._resolve_ctor(module, ctor)
                if owner is None:
                    return None
                target = f"{owner}.{method}"
                return target if target in self._function_index else None
            return None
        if "." not in callee:
            nested = f"{fn.qualname}.{callee}"
            if nested in module.functions:
                return f"{module.module}.{nested}"
        return self.resolve(module, callee)

    def _resolve_ctor(self, module: ModuleInfo, ctor: str) -> str | None:
        """Fully-qualified id of the class a constructor call names:
        same-module classes first (any method defined under the name),
        then import chasing — verified against the function index so a
        misresolved receiver never fabricates edges."""
        prefix = f"{ctor}."
        if any(qual.startswith(prefix) for qual in module.functions):
            return f"{module.module}.{ctor}"
        head, _, rest = ctor.partition(".")
        if head in module.imports:
            target = module.imports[head] + (f".{rest}" if rest else "")
            resolved = self._chase(target)
            if resolved is not None and any(
                key.startswith(f"{resolved}.") for key in self._function_index
            ):
                return resolved
        return None

    # -- the resolved call graph ---------------------------------------

    def call_graph(self):
        """The resolved project-wide call graph, built once and cached
        (see :mod:`repro.lint.callgraph`)."""
        if self._call_graph is None:
            from repro.lint.callgraph import build_call_graph

            self._call_graph = build_call_graph(self)
        return self._call_graph

    # -- sampling closure ----------------------------------------------

    def sampling_functions(self) -> set[str]:
        """Fully-qualified ids of functions that reach a randomness sink
        through resolved calls or function-reference arguments."""
        if self._sampling is not None:
            return self._sampling
        sampling: set[str] = {
            f"{mod.module}.{fn.qualname}"
            for mod, fn in self.functions()
            if fn.samples_directly
        }
        # reverse edges: callee/reference id -> set of caller ids
        callers: dict[str, set[str]] = {}
        for mod, fn in self.functions():
            caller_id = f"{mod.module}.{fn.qualname}"
            for call in fn.calls:
                resolved = self.resolve(mod, call.callee)
                if resolved is not None:
                    callers.setdefault(resolved, set()).add(caller_id)
                # function references passed as arguments create
                # potential edges too (executor.map(fn, ...), etc.)
                for arg in call.args:
                    if arg.kind == "name" and arg.dotted:
                        ref = self.resolve(mod, arg.dotted)
                        if ref is not None:
                            callers.setdefault(ref, set()).add(caller_id)
        frontier = list(sampling)
        while frontier:
            fn_id = frontier.pop()
            for caller in callers.get(fn_id, ()):
                if caller not in sampling:
                    sampling.add(caller)
                    frontier.append(caller)
        self._sampling = sampling
        return sampling
