"""Per-function control-flow graphs for the whole-program rules.

The project model (:mod:`repro.lint.project`) summarizes each function
as a flat bag of call sites — enough for the call-graph rules (R6-R8)
but blind to *paths*: "does every return path emit exactly one
envelope?" (R11) is a question about the CFG, not the bag.  This module
builds a deliberately small basic-block CFG per function:

- blocks hold :class:`BlockEvent` records — calls (dotted callee) and
  returns (with the literal ``int`` value when there is one);
- ``if``/``while``/``for``/``try``/``match`` produce the usual edges;
  loop back-edges are kept (analyses saturate instead of unrolling);
- every statement under an active ``try`` gets a pre-statement edge to
  each handler entry, so exception paths conservatively include "the
  statement's effects may not have happened";
- an explicit uncaught ``raise`` ends in a raise sink that is *not* a
  normal exit — propagating exceptions are the caller's problem (the
  CLI's ``main`` wraps every handler in a catch-all), so R11 counts
  emissions over normal-return paths only.

Like everything in the project model, CFGs are plain dataclasses of
str/int, JSON-round-trippable so the incremental cache can persist them
inside each file's :class:`~repro.lint.project.ModuleInfo` summary.
They are only attached for files in the envelope-contract scope (see
``project.wants_cfg``) to keep cache entries small.

The one analysis shipped here, :func:`emission_bounds`, computes the
(min, max) number of predicate-matching events over all normal paths,
with counts saturating at :data:`SATURATE` so loops converge.  Its
fixpoint loop lives in :func:`repro.lint.dataflow.forward_fixpoint`,
shared with the interprocedural analyses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.lint.dataflow import forward_fixpoint

__all__ = ["CFG", "BlockEvent", "SATURATE", "build_cfg", "emission_bounds"]

#: Event counts saturate here; "2" already means "more than once".
SATURATE = 2


@dataclass(frozen=True)
class BlockEvent:
    """One analyzable happening inside a basic block.

    ``kind`` is ``"call"`` (``callee`` is the dotted name as written) or
    ``"return"`` (``value`` is the returned literal ``int``, if any).
    """

    kind: str
    lineno: int
    col: int
    callee: str | None = None
    value: int | None = None


@dataclass
class CFG:
    """Basic blocks + edges of one function body."""

    blocks: list[list[BlockEvent]] = field(default_factory=list)
    edges: list[tuple[int, int]] = field(default_factory=list)
    entry: int = 0
    exits: list[int] = field(default_factory=list)  # normal-return blocks
    raises: list[int] = field(default_factory=list)  # uncaught-raise sinks

    def events(self) -> Iterator[BlockEvent]:
        """Every call/return event in the function, block order."""
        for block in self.blocks:
            yield from block

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "CFG":
        return cls(
            blocks=[
                [BlockEvent(**ev) for ev in block]
                for block in data.get("blocks", [])
            ],
            edges=[tuple(e) for e in data.get("edges", [])],
            entry=data.get("entry", 0),
            exits=list(data.get("exits", [])),
            raises=list(data.get("raises", [])),
        )


def _expr_calls(node: ast.expr) -> Iterator[ast.Call]:
    """Call nodes inside ``node``, skipping lambda bodies (they run
    later, not here)."""
    stack: list[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, ast.Lambda):
            continue
        if isinstance(cur, ast.Call):
            yield cur
        stack.extend(ast.iter_child_nodes(cur))


def _dotted(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


class _Builder:
    def __init__(self) -> None:
        self.blocks: list[list[BlockEvent]] = [[]]
        self.edges: set[tuple[int, int]] = set()
        self.current: int | None = 0
        self.exits: list[int] = []
        self.raises: list[int] = []
        self.loops: list[tuple[int, int]] = []  # (header, after)
        self.handlers: list[list[int]] = []  # active try handler entries

    # -- plumbing ------------------------------------------------------

    def new_block(self) -> int:
        self.blocks.append([])
        return len(self.blocks) - 1

    def edge(self, src: int, dst: int) -> None:
        self.edges.add((src, dst))

    def _here(self) -> int:
        if self.current is None:  # unreachable code after return/raise
            self.current = self.new_block()
        return self.current

    def emit_expr(self, node: ast.expr | None) -> None:
        if node is None:
            return
        block = self.blocks[self._here()]
        for call in _expr_calls(node):
            callee = _dotted(call.func)
            if callee is not None:
                block.append(
                    BlockEvent(
                        kind="call",
                        lineno=call.lineno,
                        col=call.col_offset,
                        callee=callee,
                    )
                )

    # -- statements ----------------------------------------------------

    def body(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, node: ast.stmt) -> None:
        if self.handlers:
            # each protected statement gets its own block, and the
            # exception edge leaves from *before* its events: when the
            # handler runs, this statement's effects may not have
            # happened (earlier statements' effects have)
            prev = self._here()
            for entries in self.handlers:
                for entry in entries:
                    self.edge(prev, entry)
            nxt = self.new_block()
            self.edge(prev, nxt)
            self.current = nxt
        method = getattr(self, f"_stmt_{type(node).__name__}", None)
        if method is not None:
            method(node)
            return
        # simple statement: record its expression events in order
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.emit_expr(child)

    def _stmt_FunctionDef(self, node: ast.stmt) -> None:
        pass  # nested defs get their own CFG

    _stmt_AsyncFunctionDef = _stmt_FunctionDef
    _stmt_ClassDef = _stmt_FunctionDef

    def _stmt_Return(self, node: ast.Return) -> None:
        self.emit_expr(node.value)
        block = self._here()
        value: int | None = None
        if (
            isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, int)
            and not isinstance(node.value.value, bool)
        ):
            value = node.value.value
        self.blocks[block].append(
            BlockEvent(
                kind="return",
                lineno=node.lineno,
                col=node.col_offset,
                value=value,
            )
        )
        self.exits.append(block)
        self.current = None

    def _stmt_Raise(self, node: ast.Raise) -> None:
        if node.exc is not None:
            self.emit_expr(node.exc)
        self.raises.append(self._here())
        self.current = None

    def _stmt_If(self, node: ast.If) -> None:
        self.emit_expr(node.test)
        cond = self._here()
        join = self.new_block()
        for branch in (node.body, node.orelse):
            if not branch:
                self.edge(cond, join)
                continue
            entry = self.new_block()
            self.edge(cond, entry)
            self.current = entry
            self.body(branch)
            if self.current is not None:
                self.edge(self.current, join)
        self.current = join

    def _loop(
        self,
        header_expr: ast.expr | None,
        body: list[ast.stmt],
        orelse: list[ast.stmt],
        always_enters_exit_only_by_break: bool,
    ) -> None:
        before = self._here()
        header = self.new_block()
        after = self.new_block()
        self.edge(before, header)
        self.current = header
        self.emit_expr(header_expr)
        if not always_enters_exit_only_by_break:
            self.edge(header, after)
        entry = self.new_block()
        self.edge(header, entry)
        self.current = entry
        self.loops.append((header, after))
        self.body(body)
        if self.current is not None:
            self.edge(self.current, header)
        self.loops.pop()
        if orelse:
            self.current = after
            self.body(orelse)
            if self.current is not None:
                after = self._here()
        self.current = after

    def _stmt_While(self, node: ast.While) -> None:
        infinite = isinstance(node.test, ast.Constant) and bool(node.test.value)
        self._loop(node.test, node.body, node.orelse, infinite)

    def _stmt_For(self, node: ast.For) -> None:
        self.emit_expr(node.iter)
        self._loop(None, node.body, node.orelse, False)

    _stmt_AsyncFor = _stmt_For

    def _stmt_Break(self, node: ast.Break) -> None:
        if self.loops:
            self.edge(self._here(), self.loops[-1][1])
        self.current = None

    def _stmt_Continue(self, node: ast.Continue) -> None:
        if self.loops:
            self.edge(self._here(), self.loops[-1][0])
        self.current = None

    def _stmt_With(self, node: ast.With) -> None:
        for item in node.items:
            self.emit_expr(item.context_expr)
        self.body(node.body)

    _stmt_AsyncWith = _stmt_With

    def _stmt_Try(self, node: ast.Try) -> None:
        handler_entries = [self.new_block() for _ in node.handlers]
        join = self.new_block()
        self.handlers.append(handler_entries)
        self.body(node.body)
        self.handlers.pop()
        if self.current is not None:
            if node.orelse:
                self.body(node.orelse)
            if self.current is not None:
                self.edge(self.current, join)
        for handler, entry in zip(node.handlers, handler_entries):
            self.current = entry
            self.body(handler.body)
            if self.current is not None:
                self.edge(self.current, join)
        self.current = join
        if node.finalbody:
            # normal-continuation finally; exception-propagating and
            # early-return copies are not modeled (conservative enough
            # for emission counting over normal paths)
            self.body(node.finalbody)

    _stmt_TryStar = _stmt_Try

    def _stmt_Match(self, node: ast.stmt) -> None:
        self.emit_expr(node.subject)  # type: ignore[attr-defined]
        subject = self._here()
        join = self.new_block()
        self.edge(subject, join)  # no case may match
        for case in node.cases:  # type: ignore[attr-defined]
            entry = self.new_block()
            self.edge(subject, entry)
            self.current = entry
            self.body(case.body)
            if self.current is not None:
                self.edge(self.current, join)
        self.current = join


def build_cfg(node: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Basic-block CFG of one function body."""
    builder = _Builder()
    builder.body(node.body)
    if builder.current is not None:  # implicit ``return None`` fall-off
        builder.exits.append(builder.current)
    return CFG(
        blocks=builder.blocks,
        edges=sorted(builder.edges),
        entry=0,
        exits=sorted(set(builder.exits)),
        raises=sorted(set(builder.raises)),
    )


def emission_bounds(
    cfg: CFG, matches: Callable[[BlockEvent], bool]
) -> tuple[int, int] | None:
    """(min, max) matching events over normal entry->exit paths.

    Counts saturate at :data:`SATURATE`, so ``(1, 1)`` means "exactly
    once on every path" and any max of :data:`SATURATE` means "may
    happen more than once".  Returns None when no exit is reachable
    (infinite loop, always raises).
    """
    counts = [
        min(sum(1 for ev in block if matches(ev)), SATURATE)
        for block in cfg.blocks
    ]

    def transfer(block: int, bounds: tuple[int, int]) -> tuple[int, int]:
        lo, hi = bounds
        return (
            min(lo + counts[block], SATURATE),
            min(hi + counts[block], SATURATE),
        )

    def merge(
        a: tuple[int, int], b: tuple[int, int]
    ) -> tuple[int, int]:
        return (min(a[0], b[0]), max(a[1], b[1]))

    inb = forward_fixpoint(
        len(cfg.blocks), cfg.edges, cfg.entry, (0, 0), transfer, merge
    )

    result: tuple[int, int] | None = None
    for b in cfg.exits:
        if inb[b] is None:
            continue  # unreachable exit (code after return)
        out = transfer(b, inb[b])
        result = out if result is None else merge(result, out)
    return result
