"""R13 — determinism-taint (interprocedural).

R1 flags a wall-clock read *written inside* a hot-loop file; it cannot
see a kernel calling a helper that calls ``time.time()`` two modules
away.  R13 closes that hole over the resolved call graph:

- **kernel arm** — a function defined in the kernel tier (``core/``,
  ``simulation/``, ``traces/``) must not *transitively* reach an
  ambient-state source (wall clock, environment, entropy, legacy
  ``random``).  Direct reads are deliberately left to R1: one call
  site, one owner.
- **driver arm** — a function outside the kernel tier that both reads
  a source directly and drives a kernel makes every number downstream
  ambient-state dependent; the read is flagged at its call site.

The seeded ``np.random.default_rng`` / ``SeedSequence`` plumbing is not
a source — resolution only classifies stdlib ``time``/``os``/``uuid``/
``secrets``/``datetime`` reads and the hidden-global-state ``random``
module.  A site annotated ``# reprolint: clock-ok=<reason>`` is excused
before propagation, so nothing downstream inherits it either.

Every finding carries a witness chain (``--explain`` text, SARIF
``codeFlows``) naming each function from the flagged one to the read.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.interproc import (
    InterAnalysis,
    in_kernel_tier,
    is_test_module,
)
from repro.lint.project import ModuleInfo
from repro.lint.registry import register

__all__ = ["DeterminismTaintRule"]


@register
class DeterminismTaintRule:
    """R13: ambient-state sources must stay unreachable from kernels."""

    code = "R13"
    name = "determinism-taint"
    description = (
        "no wall-clock/env/entropy/legacy-random source may be "
        "transitively reachable from core/, simulation/ or traces/ "
        "kernels, and kernel drivers must not read one directly "
        "(clock-ok pragma exempts intentional timing)"
    )

    def check(self, ctx) -> Iterator[Diagnostic]:  # pragma: no cover
        """Per-file pass: empty (interprocedural rule, see check_module)."""
        return iter(())

    def check_module(
        self, analysis: InterAnalysis, mod: ModuleInfo
    ) -> Iterator[Diagnostic]:
        """Emit kernel-taint and tainted-driver findings for one module."""
        if is_test_module(mod):
            return
        if in_kernel_tier(mod):
            yield from self._check_kernel(analysis, mod)
        else:
            yield from self._check_driver(analysis, mod)

    # -- kernel arm: transitive taint ----------------------------------

    def _check_kernel(
        self, analysis: InterAnalysis, mod: ModuleInfo
    ) -> Iterator[Diagnostic]:
        for fn in mod.functions.values():
            if fn.is_test:
                continue
            fqid = f"{mod.module}.{fn.qualname}"
            for source, hop in sorted(analysis.taints(fqid).items()):
                if hop.target is None:
                    continue  # direct read: R1's call site, not ours
                trace = analysis.taint_trace(fqid, source)
                via = " -> ".join(
                    step.function.rsplit(".", 1)[-1] for step in trace
                )
                yield Diagnostic(
                    path=mod.path,
                    line=hop.line,
                    col=hop.col + 1,
                    code=self.code,
                    name=self.name,
                    message=(
                        f"kernel function '{fn.qualname}' transitively "
                        f"reaches non-deterministic source '{source}' "
                        f"(chain: {via}); kernels must be pure in their "
                        "seed — pass the value in, or annotate the read "
                        "'# reprolint: clock-ok=<reason>' if intentional"
                    ),
                    trace=trace,
                )

    # -- driver arm: direct read + kernel reach ------------------------

    def _check_driver(
        self, analysis: InterAnalysis, mod: ModuleInfo
    ) -> Iterator[Diagnostic]:
        for fn in mod.functions.values():
            if fn.is_test:
                continue
            fqid = f"{mod.module}.{fn.qualname}"
            direct = analysis.direct_sources(mod, fn)
            if not direct:
                continue
            kernel = analysis.reaches_kernel(fqid)
            if kernel is None:
                continue
            for site, source, kind in direct:
                yield Diagnostic(
                    path=mod.path,
                    line=site.lineno,
                    col=site.col + 1,
                    code=self.code,
                    name=self.name,
                    message=(
                        f"'{fn.qualname}' reads '{source}' ({kind}) and "
                        f"drives kernel '{kernel.rsplit('.', 1)[-1]}'; "
                        "results inherit ambient state — annotate "
                        "'# reprolint: clock-ok=<reason>' if this "
                        "timing is intentional"
                    ),
                    trace=analysis.kernel_trace(fqid),
                )
