"""R14 — knob-parity (interprocedural).

The paper's headline numbers are produced by accelerated paths (batch
replay, replan memo, shared-memory ensembles) that are only trustworthy
because a reference slow path computes the same answer bit-for-bit.
That escape hatch dies in two quiet ways R14 watches for:

- **severed branch** — a function gating on a fast-path knob
  (``use_batch``, ``use_memo``, ``use_shm``, ``use_cache``,
  ``vectorized``) whose knob-off behavior is falling off the end of the
  function (``no-slow-path``) or a bare ``raise`` (``raising-slow-path``)
  no longer *has* a reference branch to compare against;
- **dropped knob** — a function that accepts a knob calls a callee that
  also accepts it but does not forward it: the CLI flag still parses,
  the kernel below silently always runs one path.

Branch hazards are detected at summarize time (:mod:`repro.lint.project`
records them per function); forwarding is checked here against the
resolved call graph so method calls through ``self`` count too.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.interproc import InterAnalysis, is_test_module
from repro.lint.project import KNOB_NAMES, CallSite, FunctionInfo, ModuleInfo
from repro.lint.registry import register

__all__ = ["KnobParityRule"]

_HAZARD_DETAIL = {
    "no-slow-path": (
        "the knob-off path falls off the function instead of reaching "
        "reference code — add the slow-path branch"
    ),
    "raising-slow-path": (
        "the knob-off path only raises — the reference implementation "
        "is the escape hatch, not an error"
    ),
}


def _knobs_of(fn: FunctionInfo) -> set[str]:
    return {p.name for p in fn.params if p.name in KNOB_NAMES}


def _forwards(call: CallSite, callee: FunctionInfo, knob: str) -> bool:
    """Whether the call site passes ``knob`` through to the callee."""
    if call.has_star_args or call.has_star_kwargs:
        return True  # *args/**kwargs may carry it: benefit of the doubt
    if knob in call.keyword_names():
        return True
    if any(a.kind == "name" and a.name == knob for a in call.args):
        return True  # passed positionally by the same name
    positional = [p.name for p in callee.positional_params()]
    if knob in positional and positional.index(knob) < len(call.args):
        return True  # the knob's positional slot is filled
    return False


@register
class KnobParityRule:
    """R14: fast-path knobs keep their reference branch and thread intact."""

    code = "R14"
    name = "knob-parity"
    description = (
        "every function branching on a fast-path knob (use_batch, "
        "use_memo, use_shm, use_cache, vectorized) keeps a reference "
        "slow-path branch, and callers holding a knob forward it to "
        "callees that accept it"
    )

    def check(self, ctx) -> Iterator[Diagnostic]:  # pragma: no cover
        """Per-file pass: empty (interprocedural rule, see check_module)."""
        return iter(())

    def check_module(
        self, analysis: InterAnalysis, mod: ModuleInfo
    ) -> Iterator[Diagnostic]:
        """Emit severed-branch and dropped-knob findings for one module."""
        if is_test_module(mod):
            return
        model = analysis.model
        for fn in mod.functions.values():
            if fn.is_test:
                continue
            for knob, line, col, hazard in fn.knob_hazards:
                yield Diagnostic(
                    path=mod.path,
                    line=line,
                    col=col + 1,
                    code=self.code,
                    name=self.name,
                    message=(
                        f"'{fn.qualname}' gates on fast-path knob "
                        f"'{knob}' but {_HAZARD_DETAIL[hazard]}"
                    ),
                )
            held = _knobs_of(fn)
            if not held:
                continue
            for call in fn.calls:
                target = model.resolve_in(mod, fn, call.callee)
                if target is None:
                    continue
                located = model.function(target)
                if located is None:
                    continue
                callee = located[1]
                for knob in sorted(held & _knobs_of(callee)):
                    if _forwards(call, callee, knob):
                        continue
                    yield Diagnostic(
                        path=mod.path,
                        line=call.lineno,
                        col=call.col + 1,
                        code=self.code,
                        name=self.name,
                        message=(
                            f"'{fn.qualname}' holds fast-path knob "
                            f"'{knob}' but calls '{callee.qualname}' "
                            "without forwarding it; the flag dies here "
                            "and downstream always runs one path"
                        ),
                    )
