"""R8 — registry-conformance (whole-program).

The paper's simulation study compares exactly ten policies (Section
4.1): LowerBound, PeriodLB, Young, DalyLow, DalyHigh, Liu, Bouguerra,
OptExp, DPNextFailure and DPMakespan.  Those ten are registered in four
independent places that have historically drifted in reproductions:
the ``policies`` package registration (``__all__``), the CLI policy
choices, the ``experiments/`` scenario tables, and the EXPERIMENTS.md
results narrative.  R8 cross-checks all four against the canonical
roster whenever the linted tree contains a ``policies`` package:

- every policy class must be exported from ``policies/__init__``;
- every CLI key (``young`` … ``dpmakespan``) must appear in the CLI
  module;
- every policy class must be constructed by some ``experiments/``
  scenario table;
- the runner must declare the two synthetic entries (``LowerBound``,
  ``PeriodLB``) as its column constants;
- ``EXPERIMENTS.md`` (found walking up from the policies package) must
  mention every display name.

Sub-checks silently skip when their source is absent from the lint
scope (linting ``tests/`` alone never activates R8), so partial lints
stay quiet while the full-tree lint enforces agreement.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ModuleInfo, ProjectModel
from repro.lint.registry import register

# The canonical roster.  Order follows the paper's tables.
_POLICY_CLASSES = (
    "Young",
    "DalyLow",
    "DalyHigh",
    "OptExp",
    "Bouguerra",
    "Liu",
    "DPNextFailurePolicy",
    "DPMakespanPolicy",
)
_CLI_KEYS = (
    "young",
    "dalylow",
    "dalyhigh",
    "optexp",
    "bouguerra",
    "liu",
    "dpnextfailure",
    "dpmakespan",
)
_RUNNER_CONSTANTS = ("LowerBound", "PeriodLB")
_DISPLAY_NAMES = (
    "LowerBound",
    "PeriodLB",
    "Young",
    "DalyLow",
    "DalyHigh",
    "Liu",
    "Bouguerra",
    "OptExp",
    "DPNextFailure",
    "DPMakespan",
)


@register
class RegistryConformanceRule:
    code = "R8"
    name = "registry-conformance"
    description = (
        "the ten paper policies must agree across policies/__init__ "
        "registration, CLI choices, experiments/ scenario tables, "
        "runner constants and EXPERIMENTS.md"
    )

    def check(self, ctx) -> Iterator[Diagnostic]:  # pragma: no cover
        return iter(())  # whole-program rule; see check_project

    def check_project(self, model: ProjectModel) -> Iterator[Diagnostic]:
        policies = model.find_module("policies")
        if policies is None:
            return  # tree without a policy registry: rule inactive

        for cls in _POLICY_CLASSES:
            if cls not in policies.exports:
                yield self._diag(
                    policies.path,
                    f"policy '{cls}' is not exported from the policies "
                    "package __all__; the registration layer lost it",
                )

        cli = model.find_module("cli")
        if cli is not None:
            known = set(cli.strings)
            for key in _CLI_KEYS:
                if key not in known:
                    yield self._diag(
                        cli.path,
                        f"CLI exposes no '{key}' policy choice; "
                        "the command line drifted from the paper roster",
                    )

        experiments = model.modules_matching("experiments")
        if experiments:
            constructed: set[str] = set()
            mentioned: set[str] = set()
            for mod in experiments:
                mentioned.update(mod.strings)
                for fn in mod.functions.values():
                    for call in fn.calls:
                        constructed.add(call.callee.split(".")[-1])
            anchor = experiments[0].path
            for cls in _POLICY_CLASSES:
                if cls not in constructed and cls not in mentioned:
                    yield self._diag(
                        anchor,
                        f"policy '{cls}' is never constructed in any "
                        "experiments/ scenario table; the simulation "
                        "study no longer covers the paper roster",
                    )

        runner = model.find_module("runner")
        if runner is not None:
            declared = set(runner.constants.values())
            for name in _RUNNER_CONSTANTS:
                if name not in declared:
                    yield self._diag(
                        runner.path,
                        f"runner does not declare the synthetic "
                        f"'{name}' column constant; degradation tables "
                        "will miss the paper's reference entry",
                    )

        md = self._find_experiments_md(policies)
        if md is not None:
            try:
                text = md.read_text(encoding="utf-8")
            except OSError:
                text = ""
            for name in _DISPLAY_NAMES:
                if name not in text:
                    yield self._diag(
                        md.as_posix(),
                        f"EXPERIMENTS.md never mentions policy '{name}'; "
                        "the results narrative drifted from the roster",
                    )

    @staticmethod
    def _find_experiments_md(policies: ModuleInfo) -> Path | None:
        node = Path(policies.path).resolve().parent
        for _ in range(5):
            candidate = node / "EXPERIMENTS.md"
            if candidate.is_file():
                return candidate
            if node.parent == node:
                break
            node = node.parent
        return None

    def _diag(self, path: str, message: str) -> Diagnostic:
        return Diagnostic(
            path=path,
            line=1,
            col=1,
            code=self.code,
            name=self.name,
            message=message,
        )
