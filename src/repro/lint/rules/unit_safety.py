"""R2 — unit-safety.

All times in this codebase are seconds (the paper's Theorem 1 and the
DP solvers do arithmetic directly in seconds).  Two conventions keep
that safe as the tree grows:

1. bare numeric literals that are multiples of 60/3600/86400 in
   *time-valued positions* (a keyword argument, parameter default, or
   assignment whose name denotes a duration) must be spelled with
   :mod:`repro.units` constants — ``20 * DAY`` documents itself,
   ``1728000.0`` does not;
2. time-quantity parameters are named in seconds — suffixes like
   ``_ms`` or ``_hours`` signal a unit mismatch waiting to happen.

A literal multiple of 60 that is genuinely dimensionless (a factor,
not a duration) gets a narrow ``# reprolint: disable=R2`` pragma with a
justifying comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic, Edit, Fix
from repro.lint.engine import FileContext
from repro.lint.registry import register

# Name tokens that mark a value as a duration in seconds.
_TIME_TOKENS = frozenset(
    {
        "mtbf",
        "checkpoint",
        "recovery",
        "downtime",
        "work",
        "horizon",
        "period",
        "warmup",
        "duration",
        "timeout",
        "makespan",
        "time",
        "seconds",
        "lifetime",
        "deadline",
        "delay",
    }
)

# Tokens that mark a value as a *count* or dimensionless quantity even
# when a time token is also present: ``period_lb_linear`` is a grid
# size, not a period.
_COUNT_TOKENS = frozenset(
    {
        "n",
        "num",
        "count",
        "points",
        "grid",
        "linear",
        "geometric",
        "traces",
        "factor",
        "factors",
        "ratio",
        "index",
    }
)

# Parameter-name suffixes that contradict the seconds convention.
_BAD_UNIT_SUFFIXES = (
    "_ms",
    "_msec",
    "_millis",
    "_min",
    "_mins",
    "_minutes",
    "_hr",
    "_hrs",
    "_hours",
    "_days",
)


def _is_time_name(name: str) -> bool:
    if name.endswith("_s"):
        return True
    tokens = name.lower().split("_")
    if any(tok in _COUNT_TOKENS for tok in tokens):
        return False
    return any(tok in _TIME_TOKENS for tok in tokens)


def _suggest(value: float) -> str:
    for unit, const in ((86400, "DAY"), (3600, "HOUR"), (60, "MINUTE")):
        if value % unit == 0:
            n = value / unit
            return const if n == 1 else f"{n:g} * {const}"
    return "a repro.units expression"


@register
class UnitSafetyRule:
    code = "R2"
    name = "unit-safety"
    description = (
        "time-valued positions must use repro.units constants instead of "
        "bare 60/3600/86400 multiples; time parameters are named in seconds"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.path.name == "units.py" and ctx.in_package("repro"):
            return  # the one place the raw constants belong
        if ctx.is_test_file:
            return  # exact literals on constructed values are test idiom
        seen: set[tuple[int, int]] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg is not None and _is_time_name(kw.arg):
                        yield from self._flag_literals(ctx, kw.arg, kw.value, seen)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_signature(ctx, node, seen)
            elif isinstance(node, ast.Assign):
                names = [t.id for t in node.targets if isinstance(t, ast.Name)]
                for n in names:
                    if _is_time_name(n):
                        yield from self._flag_literals(ctx, n, node.value, seen)
                        break
            elif isinstance(node, ast.AnnAssign):
                if (
                    isinstance(node.target, ast.Name)
                    and node.value is not None
                    and _is_time_name(node.target.id)
                ):
                    yield from self._flag_literals(
                        ctx, node.target.id, node.value, seen
                    )

    def _check_signature(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        seen: set[tuple[int, int]],
    ) -> Iterator[Diagnostic]:
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg.lower().endswith(_BAD_UNIT_SUFFIXES):
                yield ctx.diag(
                    arg,
                    self,
                    f"parameter '{arg.arg}' names a non-second unit; all "
                    "times are seconds — drop the suffix or use '_s'",
                )
        positional = [*args.posonlyargs, *args.args]
        for arg, default in zip(positional[len(positional) - len(args.defaults):],
                                args.defaults):
            if _is_time_name(arg.arg):
                yield from self._flag_literals(ctx, arg.arg, default, seen)
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is not None and _is_time_name(arg.arg):
                yield from self._flag_literals(ctx, arg.arg, kw_default, seen)

    def _flag_literals(
        self,
        ctx: FileContext,
        position: str,
        value: ast.expr,
        seen: set[tuple[int, int]],
    ) -> Iterator[Diagnostic]:
        for sub in ast.walk(value):
            if not isinstance(sub, ast.Constant):
                continue
            v = sub.value
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                continue
            if v < 60 or v % 60 != 0:
                continue
            key = (sub.lineno, sub.col_offset)
            if key in seen:
                continue
            seen.add(key)
            suggestion = _suggest(float(v))
            diag = ctx.diag(
                sub,
                self,
                f"bare literal {v:g} in time-valued position "
                f"'{position}'; write {suggestion} from repro.units",
            )
            fix = self._build_fix(ctx, sub, suggestion)
            if fix is not None:
                diag = Diagnostic(
                    path=diag.path,
                    line=diag.line,
                    col=diag.col,
                    code=diag.code,
                    name=diag.name,
                    message=diag.message,
                    fix=fix,
                )
            yield diag

    @staticmethod
    def _build_fix(
        ctx: FileContext, sub: ast.Constant, suggestion: str
    ) -> Fix | None:
        """Mechanical replacement of the literal token with the units
        expression — IEEE-exact, so results cannot change."""
        end_col = getattr(sub, "end_col_offset", None)
        end_line = getattr(sub, "end_lineno", sub.lineno)
        if end_col is None or end_line != sub.lineno:
            return None
        line = ctx.lines[sub.lineno - 1] if sub.lineno <= len(ctx.lines) else ""
        text = suggestion
        if " " in suggestion:
            # `120 ** 2` must not become `2 * MINUTE ** 2`: parenthesize
            # unless the neighbors make the bare product unambiguous.
            left = line[: sub.col_offset].rstrip()[-1:]
            right = line[end_col:].lstrip()[:1]
            safe_left = left in ("", "(", "[", ",", "=", ":")
            safe_right = right in ("", ")", "]", ",", ":", "#")
            if not (safe_left and safe_right):
                text = f"({suggestion})"
        unit = suggestion.split()[-1]
        if unit not in ("DAY", "HOUR", "MINUTE"):
            return None
        return Fix(
            edits=(Edit(sub.lineno, sub.col_offset, end_col, text),),
            add_units_import=(unit,),
        )
