"""R1 — determinism.

The repo's reproducibility contract (README, docs/performance.md) is
that every stochastic result is a pure function of an explicit seed,
threaded as ``numpy.random.SeedSequence([seed, i])`` per trace.  Three
things silently break that contract:

1. the legacy ``np.random.*`` module-level samplers (global state);
2. the stdlib ``random`` module (global state, different stream);
3. wall-clock reads inside the ``simulation``/``core`` hot paths
   (results become a function of *when* you ran).

This rule also checks that calls to the trace generators pass an
explicit ``seed=`` — relying on their default seed hides scenario
coupling.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext
from repro.lint.pragmas import clock_ok_annotations
from repro.lint.registry import register
from repro.lint.rules.common import call_name

# Module-level samplers / global-state entry points of numpy.random.
# Constructors of the explicit-seed API (default_rng, Generator,
# SeedSequence, PCG64, ...) are exactly what code *should* use instead.
_NP_GLOBAL = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "bytes",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "weibull",
        "gamma",
        "lognormal",
        "poisson",
        "binomial",
        "beta",
        "get_state",
        "set_state",
    }
)

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "date.today",
        "datetime.date.today",
    }
)

# Trace generators whose ``seed`` argument must be explicit.  Value is
# the 0-based position of ``seed`` in the signature.
_TRACE_GENERATORS = {
    "generate_platform_traces": 4,
    "generate_rejuvenated_platform_traces": 4,
}

# Packages whose hot paths must not read the wall clock.
_HOT_PACKAGES = ("simulation", "core")


@register
class DeterminismRule:
    code = "R1"
    name = "determinism"
    description = (
        "no global-state RNGs (np.random.* samplers, stdlib random), no "
        "wall-clock in simulation/core, explicit seeds for trace generators"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        in_hot_path = ctx.in_package(*_HOT_PACKAGES)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield ctx.diag(
                            node,
                            self,
                            "stdlib 'random' uses hidden global state; use "
                            "numpy.random.default_rng(SeedSequence(...))",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield ctx.diag(
                        node,
                        self,
                        "stdlib 'random' uses hidden global state; use "
                        "numpy.random.default_rng(SeedSequence(...))",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, in_hot_path)

    def _check_call(
        self, ctx: FileContext, node: ast.Call, in_hot_path: bool
    ) -> Iterator[Diagnostic]:
        name = call_name(node)
        if name is None:
            return
        parts = name.split(".")
        # np.random.<sampler>(...) / numpy.random.<sampler>(...)
        if (
            len(parts) >= 3
            and parts[-2] == "random"
            and parts[-3] in ("np", "numpy")
            and parts[-1] in _NP_GLOBAL
        ):
            yield ctx.diag(
                node,
                self,
                f"'{name}' draws from numpy's global RNG; thread a "
                "Generator seeded from an explicit SeedSequence instead",
            )
            return
        if in_hot_path and name in _WALL_CLOCK:
            # a ``# reprolint: clock-ok=<reason>`` annotation declares
            # the read intentional (benchmark timing); R13 honors the
            # same pragma for transitive reachability
            line = ctx.lines[node.lineno - 1] if node.lineno <= len(ctx.lines) else ""
            if clock_ok_annotations([line]):
                return
            yield ctx.diag(
                node,
                self,
                f"wall-clock read '{name}' in a simulation/core hot path "
                "makes results depend on when they ran",
            )
            return
        tail = parts[-1]
        if tail in _TRACE_GENERATORS:
            seed_pos = _TRACE_GENERATORS[tail]
            has_kw = any(kw.arg == "seed" for kw in node.keywords)
            has_pos = len(node.args) > seed_pos
            has_splat = any(kw.arg is None for kw in node.keywords) or any(
                isinstance(a, ast.Starred) for a in node.args
            )
            if not (has_kw or has_pos or has_splat):
                yield ctx.diag(
                    node,
                    self,
                    f"'{tail}' called without an explicit seed=; pass "
                    "SeedSequence([seed, trace_index]) so traces are "
                    "reproducible and independent",
                )
