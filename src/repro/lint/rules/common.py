"""Small AST helpers shared by the rule implementations.

The implementations live in :mod:`repro.lint.astutil` (a leaf module,
so the project model can use them without importing the rules
package); this module re-exports them under the historical name.
"""

from __future__ import annotations

from repro.lint.astutil import call_name, decorator_name, dotted_name

__all__ = ["dotted_name", "call_name", "decorator_name"]
