"""R10 — resource-lifecycle (per-file).

PR 5/6 gave the reproduction OS-level resources that outlive a Python
exception: shared-memory segments (leaked segments survive the process
and eat ``/dev/shm``), half-written store files, and server/worker
threads that keep a daemon alive after "shutdown".  R10 enforces the
three lifecycle idioms the codebase standardizes on:

- **SharedMemory pairing** — a ``SharedMemory(...)`` acquisition (or a
  call to a file-local helper that returns one) must either be returned
  directly (ownership transfer), be the final statement, or be followed
  immediately by a ``try`` whose handlers/finally ``close()`` the
  segment — plus ``unlink()`` when it was created (``create=True``).
  Anything else leaks the segment on the very next raise.
- **atomic writes** — in service-scoped files, ``write_text`` /
  ``write_bytes`` / ``open(..., "w")`` must sit in a function that also
  calls ``replace`` (the temp-then-``os.replace`` idiom): a reader must
  never observe a torn document.
- **shutdown paths** — a class that stores a server, thread pool or
  thread on ``self`` must have *some* method releasing it
  (``shutdown``/``close``/``server_close``/``join``/``stop``/...).

Test files are exempt (fixtures and harnesses manage lifetimes
explicitly).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import register
from repro.lint.rules.common import call_name

_POOL_TAILS = frozenset({"ThreadPoolExecutor", "ProcessPoolExecutor", "Thread"})
_RELEASE_TAILS = frozenset(
    {"shutdown", "close", "server_close", "terminate", "join", "stop", "cancel"}
)
_WRITE_TAILS = frozenset({"write_text", "write_bytes"})


def _tail(callee: str | None) -> str | None:
    return callee.split(".")[-1] if callee else None


def _is_shm_call(node: ast.AST, helpers: frozenset[str]) -> bool:
    return (
        isinstance(node, ast.Call)
        and _tail(call_name(node)) in ({"SharedMemory"} | set(helpers))
    )


def _creates_segment(node: ast.Call) -> bool:
    for kw in node.keywords:
        if kw.arg == "create":
            return isinstance(kw.value, ast.Constant) and bool(kw.value.value)
    return False


def _target_dotted(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _target_dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _walk_local(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s subtree without descending into nested function
    definitions (each def is checked on its own)."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _calls_with_tail(nodes: list[ast.stmt], tails: frozenset[str]) -> set[str]:
    """Tails found as call targets anywhere under ``nodes``; each found
    tail is returned with the dotted prefix it was called on."""
    found: set[str] = set()
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                callee = call_name(node)
                if callee and callee.split(".")[-1] in tails:
                    found.add(callee)
    return found


def _acquiring_helpers(tree: ast.Module) -> frozenset[str]:
    """File-local functions that return a fresh ``SharedMemory``: their
    call sites follow the same pairing discipline as the constructor."""
    helpers: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in _walk_local(node):
            if (
                isinstance(inner, ast.Return)
                and inner.value is not None
                and isinstance(inner.value, ast.Call)
                and _tail(call_name(inner.value)) == "SharedMemory"
            ):
                helpers.add(node.name)
    return frozenset(helpers)


@register
class ResourceLifecycleRule:
    code = "R10"
    name = "resource-lifecycle"
    description = (
        "SharedMemory acquisitions pair with close()/unlink() on all "
        "paths, service-file writes follow temp-then-os.replace, and "
        "classes owning servers/pools/threads expose a shutdown path"
    )

    def check(self, ctx) -> Iterator[Diagnostic]:
        if ctx.is_test_file:
            return
        helpers = _acquiring_helpers(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_shm(ctx, node, helpers)
                if ctx.in_package("service") or ctx.path.name in (
                    "store.py",
                    "diskcache.py",
                ):
                    yield from self._check_atomic_write(ctx, node)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_class_resources(ctx, node)

    # -- (a) SharedMemory pairing --------------------------------------

    def _check_shm(
        self,
        ctx,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        helpers: frozenset[str],
    ) -> Iterator[Diagnostic]:
        handled: set[int] = set()
        for body in self._statement_lists(fn):
            for index, stmt in enumerate(body):
                if isinstance(stmt, ast.Return) and _is_shm_call(
                    stmt.value, helpers
                ):
                    handled.add(id(stmt.value))  # ownership transfer
                elif isinstance(stmt, ast.Assign) and _is_shm_call(
                    stmt.value, helpers
                ):
                    handled.add(id(stmt.value))
                    yield from self._check_acquisition(
                        ctx, stmt, body[index + 1 :], helpers
                    )
        for node in _walk_local(fn):
            if (
                _is_shm_call(node, frozenset())
                and id(node) not in handled
                and _tail(call_name(node)) == "SharedMemory"
            ):
                yield ctx.diag(
                    node,
                    self,
                    "SharedMemory acquired in an expression; bind it to a "
                    "name (or return it) so close()/unlink() can pair with "
                    "it on failure paths",
                )

    def _check_acquisition(
        self,
        ctx,
        stmt: ast.Assign,
        rest: list[ast.stmt],
        helpers: frozenset[str],
    ) -> Iterator[Diagnostic]:
        target = None
        for t in stmt.targets:
            target = _target_dotted(t)
        if target is None:
            return
        if not rest:
            return  # final statement: nothing after it can raise here
        call = stmt.value
        assert isinstance(call, ast.Call)
        needs_unlink = (
            _tail(call_name(call)) == "SharedMemory" and _creates_segment(call)
        )
        follower = rest[0]
        if isinstance(follower, ast.Try):
            cleanup_stmts: list[ast.stmt] = []
            for handler in follower.handlers:
                cleanup_stmts.extend(handler.body)
            cleanup_stmts.extend(follower.finalbody)
            released = _calls_with_tail(cleanup_stmts, frozenset({"close"}))
            unlinked = _calls_with_tail(cleanup_stmts, frozenset({"unlink"}))
            if any(c.startswith(target) for c in released) and (
                not needs_unlink
                or any(c.startswith(target) for c in unlinked)
            ):
                return
            missing = (
                "close()+unlink()" if needs_unlink else "close()"
            )
            yield ctx.diag(
                stmt,
                self,
                f"'{target}' holds a SharedMemory segment but the guarding "
                f"try block never calls {missing} on it in its "
                "handlers/finally; the segment leaks when the block raises",
            )
            return
        missing = "close()+unlink()" if needs_unlink else "close()"
        yield ctx.diag(
            stmt,
            self,
            f"'{target}' holds a SharedMemory segment but the next "
            "statement is not a try block releasing it on failure; wrap "
            f"the remaining work in try/except calling {target}.{missing}",
        )

    def _statement_lists(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[list[ast.stmt]]:
        yield fn.body
        for node in _walk_local(fn):
            for field in ("body", "orelse", "finalbody"):
                block = getattr(node, field, None)
                if (
                    isinstance(block, list)
                    and block
                    and isinstance(block[0], ast.stmt)
                ):
                    yield block

    # -- (b) atomic writes ---------------------------------------------

    def _check_atomic_write(
        self, ctx, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Diagnostic]:
        writes: list[ast.Call] = []
        has_replace = False
        for node in _walk_local(fn):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node)
            tail = _tail(callee)
            if tail == "replace":
                has_replace = True
            elif tail in _WRITE_TAILS:
                writes.append(node)
            elif callee == "open" and len(node.args) >= 2:
                mode = node.args[1]
                if isinstance(mode, ast.Constant) and isinstance(
                    mode.value, str
                ) and any(c in mode.value for c in "wa"):
                    writes.append(node)
        if has_replace:
            return
        for node in writes:
            yield ctx.diag(
                node,
                self,
                f"'{fn.name}' writes a service file without the "
                "temp-then-os.replace idiom; write to a sibling temp path "
                "and os.replace() it so readers never see a torn document",
            )

    # -- (c) class-owned resources need a shutdown path ----------------

    def _check_class_resources(
        self, ctx, cls: ast.ClassDef
    ) -> Iterator[Diagnostic]:
        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        owned: list[tuple[str, ast.Assign]] = []
        for method in methods:
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                kinds = {
                    _tail(call_name(c))
                    for c in ast.walk(node.value)
                    if isinstance(c, ast.Call)
                }
                kinds.discard(None)
                if not any(
                    k in _POOL_TAILS or k.endswith("Server") for k in kinds
                ):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        owned.append((target.attr, node))
        if not owned:
            return
        for method in methods:
            if _calls_with_tail(method.body, _RELEASE_TAILS):
                return
        attrs = ", ".join(sorted({attr for attr, _ in owned}))
        yield ctx.diag(
            cls,
            self,
            f"class '{cls.name}' owns live resources ({attrs}: server/"
            "pool/thread) but no method ever shuts them down; add a "
            "close()/shutdown() path that joins or closes them",
        )
