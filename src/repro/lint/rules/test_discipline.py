"""R5 — test discipline.

``make test-fast`` (the pre-merge fast lane) deselects
``@pytest.mark.slow``; the lane only stays fast if expensive tests are
actually marked.  Runtime is not statically knowable, so this rule uses
a declared cost model as a proxy:

- each call to a simulation/DP entry point has a base weight (the cubic
  DPMakespan solver weighs far more than one ``simulate_job``);
- the weight is multiplied by enclosing literal ``range(N)`` loops and
  by literal ``n_traces=``/``traces=`` arguments.

A test function whose summed cost exceeds :data:`COST_THRESHOLD`
(tuned so the seed suite's measured-fast tests stay unflagged) must
carry ``@pytest.mark.slow`` (directly, on its class, or via a module
``pytestmark``).  The estimate is deliberately coarse — it exists to
catch the "looped 500 simulations into the fast lane" mistake, not to
predict seconds.  A test that looks expensive but is measured fast can
say so with ``# reprolint: disable=R5`` on its ``def`` line.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext
from repro.lint.registry import register
from repro.lint.rules.common import call_name, decorator_name

COST_THRESHOLD = 500

# Base weights for known entry points (matched on the trailing name
# component, case-insensitively, after stripping underscores).
_WEIGHTS = {
    # cubic single-processor DP — dominates anything it appears in
    "dpmakespan": 50,
    "dpmakespanpolicy": 50,
    "dpmakespantable": 50,
    # quadratic next-failure DP
    "dpnextfailure": 10,
    "dpnextfailureparallel": 10,
    "dpnextfailurepolicy": 10,
    # per-trace simulation / whole-scenario drivers
    "simulatejob": 5,
    "simulatelowerbound": 5,
    "evaluatescenario": 5,
    "runscenario": 5,
    # experiment drivers (already multi-trace inside)
    "runscalingexperiment": 20,
    "runsingleprocexperiment": 20,
    "runtable4": 20,
    "runshapesweep": 20,
    "runperiodsweep": 20,
    "runlogbasedexperiment": 20,
    "runmodelcomboexperiment": 20,
    "runoptimalenrollment": 20,
    "runreplicationexperiment": 20,
    "generateplatformtraces": 1,
}

_TRACE_KWARGS = frozenset({"n_traces", "traces", "n_runs", "n_samples"})
_LOOP_CAP = 10_000  # keep products finite on absurd literals


def _canon(name: str) -> str:
    return name.replace("_", "").lower()


def _has_slow_marker(decorators: list[ast.expr]) -> bool:
    for dec in decorators:
        name = decorator_name(dec)
        if name is not None and name.endswith("mark.slow"):
            return True
    return False


def _module_marked_slow(tree: ast.Module) -> bool:
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "pytestmark" for t in stmt.targets
        ):
            continue
        values = (
            stmt.value.elts if isinstance(stmt.value, ast.List) else [stmt.value]
        )
        for v in values:
            name = decorator_name(v)
            if name is not None and name.endswith("mark.slow"):
                return True
    return False


def _literal_range_size(node: ast.For | ast.AsyncFor) -> int:
    """N for ``for ... in range(N)`` (or range(a, b)); 1 otherwise."""
    it = node.iter
    if not (isinstance(it, ast.Call) and call_name(it) == "range" and it.args):
        return 1
    consts = [a.value for a in it.args if isinstance(a, ast.Constant)]
    if len(consts) != len(it.args) or not all(
        isinstance(c, int) and not isinstance(c, bool) for c in consts
    ):
        return 1
    if len(consts) == 1:
        size = consts[0]
    else:
        step = consts[2] if len(consts) == 3 and consts[2] else 1
        size = max(0, (consts[1] - consts[0]) // step) if step > 0 else 1
    return max(1, min(size, _LOOP_CAP))


def _cost(node: ast.AST, loop_mult: int) -> int:
    total = 0
    for child in ast.iter_child_nodes(node):
        mult = loop_mult
        if isinstance(child, (ast.For, ast.AsyncFor)):
            mult = min(loop_mult * _literal_range_size(child), _LOOP_CAP)
        if isinstance(child, ast.Call):
            name = call_name(child)
            if name is not None:
                base = _WEIGHTS.get(_canon(name.split(".")[-1]), 0)
                if base:
                    traces = 1
                    for kw in child.keywords:
                        if (
                            kw.arg in _TRACE_KWARGS
                            and isinstance(kw.value, ast.Constant)
                            and isinstance(kw.value.value, int)
                        ):
                            traces = max(1, min(kw.value.value, _LOOP_CAP))
                    total += base * mult * traces
        total += _cost(child, mult)
    return total


@register
class TestDisciplineRule:
    code = "R5"
    name = "test-discipline"
    description = (
        "test functions whose static cost estimate exceeds the threshold "
        "must carry @pytest.mark.slow"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.is_test_file:
            return
        if _module_marked_slow(ctx.tree):
            return
        yield from self._scan(ctx, ctx.tree, class_slow=False)

    def _scan(
        self, ctx: FileContext, node: ast.AST, class_slow: bool
    ) -> Iterator[Diagnostic]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from self._scan(
                    ctx, child, class_slow or _has_slow_marker(child.decorator_list)
                )
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not child.name.startswith("test_"):
                    continue
                if class_slow or _has_slow_marker(child.decorator_list):
                    continue
                cost = _cost(child, 1)
                if cost > COST_THRESHOLD:
                    yield ctx.diag(
                        child,
                        self,
                        f"'{child.name}' has estimated cost {cost} "
                        f"(> {COST_THRESHOLD}); mark it @pytest.mark.slow so "
                        "the fast lane skips it",
                    )
