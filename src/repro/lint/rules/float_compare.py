"""R3 — float hygiene.

The DP solvers and Theorem-1 closed forms are validated against each
other to tolerances (see tests/test_differential.py); exact ``==`` on
floats is almost always a latent bug that happens to pass on one
platform's rounding.  This rule flags ``==``/``!=`` comparisons where
either operand is a float literal.  Legitimate exact comparisons
(IEEE-exact sentinels, integer-valued floats by construction) either
live inside an approved tolerance helper (a function whose name
contains ``isclose``/``approx``) or carry a one-line
``# reprolint: disable=R3`` pragma explaining why exactness holds.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext
from repro.lint.registry import register

_APPROVED_HELPER_MARKERS = ("isclose", "approx")


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # -1.5 parses as UnaryOp(USub, Constant(1.5))
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


@register
class FloatCompareRule:
    code = "R3"
    name = "float-eq"
    description = (
        "no ==/!= against float literals outside approved tolerance helpers"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.is_test_file:
            return  # exact asserts on constructed values are test idiom
        yield from self._walk(ctx, ctx.tree, in_helper=False)

    def _walk(
        self, ctx: FileContext, node: ast.AST, in_helper: bool
    ) -> Iterator[Diagnostic]:
        for child in ast.iter_child_nodes(node):
            helper = in_helper
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = child.name.lower()
                helper = helper or any(
                    m in name for m in _APPROVED_HELPER_MARKERS
                )
            if isinstance(child, ast.Compare) and not helper:
                operands = [child.left, *child.comparators]
                exact_ops = [
                    op for op in child.ops if isinstance(op, (ast.Eq, ast.NotEq))
                ]
                if exact_ops and any(_is_float_literal(o) for o in operands):
                    yield ctx.diag(
                        child,
                        self,
                        "exact ==/!= against a float literal; use "
                        "math.isclose/np.isclose or justify exactness with "
                        "a # reprolint: disable=R3 pragma",
                    )
            yield from self._walk(ctx, child, helper)
