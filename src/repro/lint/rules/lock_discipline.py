"""R9 — lock-discipline (per-file).

The service tier is threaded: a :class:`~repro.service.queue.JobQueue`
worker pool mutates shared job tables, and the DP caches are hit from
request handlers.  The repo's concurrency convention is *attribute
guarding*: a class that creates a ``threading.Lock``/``RLock`` names
the state that lock protects, and every access of that state happens
inside a ``with self.<lock>:`` region.  R9 enforces it per class:

- **guarded attributes** are declared with an inline annotation on
  their assignment line (``self._jobs = {}  # reprolint:
  guarded-by=_lock``) or *inferred*: an attribute accessed under the
  lock at least twice and more often locked than not is treated as
  guarded — the stray unlocked access is exactly the bug class this
  rule exists for;
- every read or write of a guarded attribute outside a lock region is
  flagged, unless the enclosing method is documented single-threaded
  (``__init__``/``__del__``/``__post_init__``, or a ``# reprolint:
  single-threaded`` marker on its ``def`` line);
- a ``guarded-by=`` annotation naming a lock the class never creates is
  itself an error (the declaration would silently protect nothing).

Test files are exempt: tests drive classes single-threaded by design.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.pragmas import guarded_by_annotations, single_threaded_lines
from repro.lint.registry import register
from repro.lint.rules.common import call_name

_LOCK_FACTORY_TAILS = frozenset({"Lock", "RLock"})
_SINGLE_THREADED_NAMES = frozenset({"__init__", "__del__", "__post_init__"})


@dataclass(frozen=True)
class _Access:
    attr: str
    lineno: int
    col: int
    locked: bool
    method: str


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_creations(method: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names of ``self.X`` attributes bound to a Lock/RLock factory."""
    locks: set[str] = set()
    for node in ast.walk(method):
        if not isinstance(node, ast.Assign):
            continue
        for call in ast.walk(node.value):
            if not isinstance(call, ast.Call):
                continue
            callee = call_name(call)
            if callee is None:
                continue
            if callee.split(".")[-1] in _LOCK_FACTORY_TAILS:
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        locks.add(attr)
    return locks


def _collect_accesses(
    method: ast.FunctionDef | ast.AsyncFunctionDef, lock_attrs: set[str]
) -> list[_Access]:
    """Every ``self.X`` touch in the method, tagged with whether it sits
    inside a ``with self.<lock>:`` region."""
    accesses: list[_Access] = []

    def scan(node: ast.AST, locked: bool) -> None:
        if isinstance(node, ast.With):
            holds = any(
                _self_attr(item.context_expr) in lock_attrs
                for item in node.items
            )
            for item in node.items:
                scan(item.context_expr, locked)
            for stmt in node.body:
                scan(stmt, locked or holds)
            return
        attr = _self_attr(node) if isinstance(node, ast.Attribute) else None
        if attr is not None:
            accesses.append(
                _Access(attr, node.lineno, node.col_offset, locked, method.name)
            )
        for child in ast.iter_child_nodes(node):
            scan(child, locked)

    for stmt in method.body:
        scan(stmt, False)
    return accesses


def _assigned_attrs_by_line(
    method: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[int, list[str]]:
    out: dict[int, list[str]] = {}
    for node in ast.walk(method):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            attr = _self_attr(target)
            if attr is not None:
                out.setdefault(node.lineno, []).append(attr)
    return out


@register
class LockDisciplineRule:
    code = "R9"
    name = "lock-discipline"
    description = (
        "classes creating a threading.Lock/RLock must access guarded "
        "attributes (declared via '# reprolint: guarded-by=<lock>' or "
        "inferred from majority-locked use) inside 'with self.<lock>:' "
        "regions, outside single-threaded methods"
    )

    def check(self, ctx) -> Iterator[Diagnostic]:
        if ctx.is_test_file:
            return
        annotations = guarded_by_annotations(ctx.lines)
        st_lines = single_threaded_lines(ctx.lines)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node, annotations, st_lines)

    def _check_class(
        self,
        ctx,
        cls: ast.ClassDef,
        annotations: dict[int, str],
        st_lines: set[int],
    ) -> Iterator[Diagnostic]:
        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_attrs: set[str] = set()
        for method in methods:
            lock_attrs |= _lock_creations(method)
        if not lock_attrs:
            return

        single_threaded = {
            m.name
            for m in methods
            if m.name in _SINGLE_THREADED_NAMES or m.lineno in st_lines
        }

        # declared guards: guarded-by annotations on assignment lines
        declared: dict[str, str] = {}  # attr -> lock
        for method in methods:
            by_line = _assigned_attrs_by_line(method)
            for lineno, lock in annotations.items():
                for attr in by_line.get(lineno, ()):
                    if lock not in lock_attrs:
                        yield ctx.diag(
                            cls,
                            self,
                            f"'{attr}' is declared guarded-by '{lock}' but "
                            f"class '{cls.name}' creates no such lock "
                            f"attribute (has: {', '.join(sorted(lock_attrs))})",
                        )
                        continue
                    declared[attr] = lock

        accesses: list[_Access] = []
        for method in methods:
            accesses.extend(_collect_accesses(method, lock_attrs))

        # inferred guards: majority-locked attributes (outside
        # single-threaded methods), with at least two locked touches
        counts: dict[str, list[int]] = {}  # attr -> [locked, unlocked]
        for acc in accesses:
            if acc.method in single_threaded or acc.attr in lock_attrs:
                continue
            pair = counts.setdefault(acc.attr, [0, 0])
            pair[0 if acc.locked else 1] += 1
        guarded = dict(declared)
        for attr, (locked, unlocked) in sorted(counts.items()):
            if attr not in guarded and locked >= 2 and locked > unlocked:
                guarded[attr] = sorted(lock_attrs)[0]

        for acc in accesses:
            if acc.locked or acc.attr not in guarded:
                continue
            if acc.method in single_threaded:
                continue
            how = (
                "declared guarded-by"
                if acc.attr in declared
                else "locked on its other accesses, so inferred guarded-by"
            )
            yield Diagnostic(
                path=ctx.posix_path,
                line=acc.lineno,
                col=acc.col + 1,
                code=self.code,
                name=self.name,
                message=(
                    f"'self.{acc.attr}' is {how} '{guarded[acc.attr]}' but "
                    f"'{cls.name}.{acc.method}' touches it outside a 'with "
                    f"self.{guarded[acc.attr]}:' region; take the lock, or "
                    "mark the method '# reprolint: single-threaded'"
                ),
            )
