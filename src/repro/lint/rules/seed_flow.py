"""R6 — seed-flow (whole-program).

The reproduction's contract is that every stochastic result is a pure
function of an explicit seed (``SeedSequence([seed, i])`` per trace).
R1 checks single call sites; R6 checks the *chains*: every path from a
public entry point in ``traces/``, ``simulation/`` (the runner), or
``experiments/`` down to ``Distribution.sample`` must thread a
``seed``/``rng`` argument.  Four hazards, computed over the
:class:`~repro.lint.project.ProjectModel` call graph:

- **unseeded generator** — ``np.random.default_rng()`` with no
  arguments pulls OS entropy: the result is different every run.
- **missing seed parameter** — a public function in the seeded packages
  that (transitively) samples randomness but offers no ``seed``/``rng``
  parameter cannot be driven reproducibly by its callers.
- **dropped seed** — a function that *has* a seed in scope calls a
  seed-accepting function without forwarding one; the callee silently
  falls back to its default and decouples from the caller's stream.
- **shadowed seed** — a function rebinds ``seed``/``rng`` to a
  constant-only expression, severing the thread from its caller.

Functions named ``test_*`` and test modules are exempt: tests pin
explicit constants by design.
"""

from __future__ import annotations

from pathlib import PurePosixPath
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import (
    SEED_PARAM_NAMES,
    CallSite,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
)
from repro.lint.registry import register

# Packages whose entry points must thread seeds (matched on path parts,
# like R1's hot-path scoping, so fixtures can opt in by directory name).
_SEEDED_PACKAGES = frozenset({"traces", "simulation", "experiments"})


def _in_scope(mod: ModuleInfo) -> bool:
    parts = PurePosixPath(mod.path).parts
    if any(p.startswith("test_") or p == "conftest.py" for p in parts):
        return False
    return bool(_SEEDED_PACKAGES & set(parts[:-1]))


def _passes_seed(call: CallSite, callee: FunctionInfo) -> bool:
    """Does this call site forward any seed-carrying argument?"""
    if call.has_star_args or call.has_star_kwargs:
        return True  # conservatively assume the splat carries it
    if call.keyword_names() & SEED_PARAM_NAMES:
        return True
    positional = callee.positional_params()
    for index, param in enumerate(positional):
        if param.name in SEED_PARAM_NAMES and len(call.args) > index:
            return True
    return False


@register
class SeedFlowRule:
    code = "R6"
    name = "seed-flow"
    description = (
        "seed/rng must thread from public entry points in traces/, "
        "simulation/ and experiments/ down to Distribution.sample: no "
        "unseeded generators, dropped seeds, or constant shadows"
    )

    def check(self, ctx) -> Iterator[Diagnostic]:  # pragma: no cover
        return iter(())  # whole-program rule; see check_project

    def check_project(self, model: ProjectModel) -> Iterator[Diagnostic]:
        sampling = model.sampling_functions()
        for mod in sorted(model.modules.values(), key=lambda m: m.path):
            if not _in_scope(mod):
                continue
            for fn in mod.functions.values():
                if fn.is_test:
                    continue
                yield from self._check_function(model, mod, fn, sampling)

    def _check_function(
        self,
        model: ProjectModel,
        mod: ModuleInfo,
        fn: FunctionInfo,
        sampling: set[str],
    ) -> Iterator[Diagnostic]:
        fn_id = f"{mod.module}.{fn.qualname}"
        seed_params = fn.seed_params()

        # unseeded generator: default_rng() with no arguments
        for call in fn.calls:
            if (
                call.callee.split(".")[-1] == "default_rng"
                and not call.args
                and not call.keywords
                and not call.has_star_args
                and not call.has_star_kwargs
            ):
                yield self._diag(
                    mod,
                    call.lineno,
                    call.col,
                    f"'{call.callee}()' with no arguments draws OS entropy "
                    "in a seeded package; pass a seed or SeedSequence",
                )

        # missing seed parameter on a public sampling entry point
        if fn.is_public and fn_id in sampling and not seed_params:
            yield self._diag(
                mod,
                fn.lineno,
                fn.col,
                f"public function '{fn.qualname}' reaches "
                "Distribution.sample but has no seed/rng parameter; "
                "callers cannot reproduce its results",
            )

        # dropped seed: seed in scope, callee accepts one, none forwarded
        if seed_params:
            for call in fn.calls:
                resolved = model.resolve(mod, call.callee)
                if resolved is None:
                    continue
                target = model.function(resolved)
                if target is None:
                    continue
                _callee_mod, callee = target
                if not callee.seed_params():
                    continue
                if not _passes_seed(call, callee):
                    yield self._diag(
                        mod,
                        call.lineno,
                        call.col,
                        f"call to '{call.callee}' drops the threaded seed: "
                        f"'{sorted(seed_params)[0]}' is in scope but no "
                        "seed/rng argument is passed, so the callee falls "
                        "back to its default stream",
                    )

            # shadowed seed: rebinding seed/rng to a constant expression
            for name, lineno, col in fn.seed_shadows:
                yield self._diag(
                    mod,
                    lineno,
                    col,
                    f"assignment shadows the threaded seed: '{name}' is "
                    "rebound to a constant expression inside a function "
                    "that takes an explicit seed/rng",
                )

    def _diag(
        self, mod: ModuleInfo, lineno: int, col: int, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=mod.path,
            line=lineno,
            col=col + 1,
            code=self.code,
            name=self.name,
            message=message,
        )
