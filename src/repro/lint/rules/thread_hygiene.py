"""R12 — thread-hygiene (per-file).

Three small-but-bitter thread bugs the service tier is structurally
exposed to:

- **implicit daemon flag** — ``threading.Thread(...)`` without an
  explicit ``daemon=`` inherits the creating thread's flag: a worker
  spawned from a daemon thread silently becomes killable mid-write,
  one spawned from the main thread silently blocks interpreter exit.
  The decision must be written down; the ``--fix`` engine appends
  ``daemon=False`` (the explicit spelling of the main-thread default).
- **swallowed worker failure** — a broad ``except Exception`` inside a
  ``while`` loop whose handler neither raises nor calls anything (just
  ``continue``/assignment) erases job failures: the loop spins on and
  the job is never marked failed.  (R4 already flags bare ``except:``
  and pass-only handlers; R12 covers the continue-style loop variant.)
- **unbounded shutdown waits** — ``join()``/``wait()``/``get()`` with
  no timeout inside a method named ``shutdown``/``stop``/``close``/
  ``terminate``/``drain`` turns one stuck worker into a daemon that
  never exits; shutdown paths must bound their waits.

Test files are exempt (tests wait on their own subjects deliberately).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic, Edit, Fix
from repro.lint.registry import register
from repro.lint.rules.common import call_name

_SHUTDOWN_NAMES = frozenset({"shutdown", "stop", "close", "terminate", "drain"})
_WAIT_TAILS = frozenset({"join", "wait", "get"})
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _daemon_fix(ctx, node: ast.Call) -> Fix | None:
    """Append ``daemon=False`` before the closing paren (single-line
    calls only; multi-line or trailing-comma spellings need a human)."""
    if node.end_lineno != node.lineno or node.end_col_offset is None:
        return None
    line = ctx.lines[node.lineno - 1]
    end = node.end_col_offset
    if end > len(line) or end < 1 or line[end - 1] != ")":
        return None
    inside = line[node.col_offset:end - 1]
    open_paren = inside.find("(")
    bare = open_paren >= 0 and not inside[open_paren + 1 :].strip()
    if inside.rstrip().endswith(","):
        return None
    text = "daemon=False)" if bare else ", daemon=False)"
    return Fix(edits=(Edit(node.lineno, end - 1, end, text),))


def _walk_local(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s subtree without descending into nested function
    definitions (each def is checked under its own name)."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return False  # bare except: R4's territory
    names = []
    if isinstance(handler.type, ast.Name):
        names = [handler.type.id]
    elif isinstance(handler.type, ast.Tuple):
        names = [e.id for e in handler.type.elts if isinstance(e, ast.Name)]
    return any(n in _BROAD_EXCEPTIONS for n in names)


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    """No raise and no call in the handler body: the failure is gone."""
    for node in ast.walk(handler):
        if isinstance(node, (ast.Raise, ast.Call)):
            return False
    # pass/Ellipsis-only handlers are R4's finding, not ours
    interesting = [
        stmt
        for stmt in handler.body
        if not isinstance(stmt, ast.Pass)
        and not (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
        )
    ]
    return bool(interesting)


@register
class ThreadHygieneRule:
    code = "R12"
    name = "thread-hygiene"
    description = (
        "threads must pass an explicit daemon= flag, worker loops must "
        "not swallow failures with call-free broad except handlers, and "
        "shutdown-path join()/wait()/get() must carry timeouts"
    )

    def check(self, ctx) -> Iterator[Diagnostic]:
        if ctx.is_test_file:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_thread_call(ctx, node)
            elif isinstance(node, ast.While):
                yield from self._check_worker_loop(ctx, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in _SHUTDOWN_NAMES:
                    yield from self._check_shutdown_waits(ctx, node)

    def _check_thread_call(self, ctx, node: ast.Call) -> Iterator[Diagnostic]:
        callee = call_name(node)
        if callee is None or callee.split(".")[-1] != "Thread":
            return
        if any(kw.arg is None for kw in node.keywords):
            return  # **kwargs may carry daemon=
        if any(kw.arg == "daemon" for kw in node.keywords):
            return
        diag = ctx.diag(
            node,
            self,
            f"'{callee}(...)' without an explicit daemon= flag inherits "
            "the spawning thread's daemonness; decide and write it down "
            "(daemon=False outlives main, daemon=True dies with it)",
        )
        yield Diagnostic(
            path=diag.path,
            line=diag.line,
            col=diag.col,
            code=diag.code,
            name=diag.name,
            message=diag.message,
            fix=_daemon_fix(ctx, node),
        )

    def _check_worker_loop(self, ctx, loop: ast.While) -> Iterator[Diagnostic]:
        for node in _walk_local(loop):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if _is_broad_handler(handler) and _handler_swallows(handler):
                    yield ctx.diag(
                        handler,
                        self,
                        "broad except inside a worker loop neither raises "
                        "nor reports: the failure is swallowed and the "
                        "loop spins on; record the error (mark the job "
                        "failed, log it) or re-raise",
                    )

    def _check_shutdown_waits(
        self, ctx, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Diagnostic]:
        for node in _walk_local(fn):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node)
            if callee is None or callee.split(".")[-1] not in _WAIT_TAILS:
                continue
            if node.args or any(kw.arg == "timeout" for kw in node.keywords):
                continue
            if any(kw.arg is None for kw in node.keywords):
                continue
            yield ctx.diag(
                node,
                self,
                f"'{callee}()' in shutdown path '{fn.name}' has no "
                "timeout: one stuck worker blocks shutdown forever; pass "
                "timeout= and handle the laggard",
            )
