"""R15 — service-exception-contract (interprocedural).

The service tier promises that every failure surfaces as a ``repro/v1``
error envelope (HTTP) or a failed-job record (queue) — never as a
half-written response or a silently dead worker thread.  R15 proves the
negative space of that promise over the call graph: starting from each
**service entry point** — a ``do_*`` HTTP handler method or a function
handed to ``Thread(target=...)`` in a ``service/`` module — no
exception source may be transitively reachable without a converting
``except`` on the way:

- an explicit ``raise`` outside any ``try`` (label ``raise:<origin>``)
  escapes unless some function on the chain guards the call under a
  broad (``Exception``/bare) handler that performs the conversion;
- an unguarded client-socket write (``self.wfile``/``send_response``/
  ``send_error`` …, label ``io:<origin>``) can surface ``OSError`` from
  a disconnected peer, so either a broad or an ``OSError``-family
  handler on the chain discharges it.

Propagation runs over *call* edges only: a ``Thread`` target's
exceptions never return through its creator's guards — the target is
checked as its own entry point instead.  Findings anchor at the entry
``def`` line and carry the full witness chain to the origin.
"""

from __future__ import annotations

from pathlib import PurePosixPath
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.interproc import InterAnalysis, is_test_module
from repro.lint.project import ModuleInfo
from repro.lint.registry import register

__all__ = ["ServiceExceptionContractRule"]


def _in_scope(mod: ModuleInfo) -> bool:
    return "service" in PurePosixPath(mod.path).parts[:-1]


@register
class ServiceExceptionContractRule:
    """R15: no exception escapes a service entry point unconverted."""

    code = "R15"
    name = "service-exception-contract"
    description = (
        "no exception may transitively escape a daemon do_* handler or "
        "a Thread worker loop in service/ without conversion to a "
        "repro/v1 error envelope or failed-job record"
    )

    def check(self, ctx) -> Iterator[Diagnostic]:  # pragma: no cover
        """Per-file pass: empty (interprocedural rule, see check_module)."""
        return iter(())

    def check_module(
        self, analysis: InterAnalysis, mod: ModuleInfo
    ) -> Iterator[Diagnostic]:
        """Emit exception-escape findings for one service module."""
        if not _in_scope(mod) or is_test_module(mod):
            return
        for fn in mod.functions.values():
            if fn.is_test:
                continue
            fqid = f"{mod.module}.{fn.qualname}"
            if not self._is_entry(analysis, fn.name, fqid):
                continue
            for label, _hop in sorted(analysis.leaks(fqid).items()):
                kind, _, origin = label.partition(":")
                origin_name = origin.rsplit(".", 1)[-1]
                if kind == "raise":
                    detail = (
                        f"an unguarded raise in '{origin_name}' escapes "
                        "it; convert to an error envelope / failed-job "
                        "record under a broad except on the chain"
                    )
                else:
                    detail = (
                        f"an unguarded client-socket write in "
                        f"'{origin_name}' can surface OSError through "
                        "it; guard the write (except OSError) or the "
                        "chain"
                    )
                entry_kind = (
                    "HTTP handler"
                    if fn.name.startswith("do_")
                    else "worker-thread entry"
                )
                yield Diagnostic(
                    path=mod.path,
                    line=fn.lineno,
                    col=fn.col + 1,
                    code=self.code,
                    name=self.name,
                    message=(
                        f"{entry_kind} '{fn.qualname}': {detail}"
                    ),
                    trace=analysis.leak_trace(fqid, label),
                )

    @staticmethod
    def _is_entry(analysis: InterAnalysis, name: str, fqid: str) -> bool:
        return name.startswith("do_") or fqid in analysis.graph.thread_targets
