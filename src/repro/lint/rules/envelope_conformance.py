"""R11 — envelope-conformance (whole-program).

The CLI/service contract (:mod:`repro.service.envelope`) is that stdout
carries exactly one JSON document per invocation and every human line
goes to stderr.  R11 proves it statically over the
:class:`~repro.lint.project.ProjectModel`, scoped to ``cli.py`` and the
``service/`` tier:

- **stray stdout** — any ``print(...)`` that does not route to stderr
  (``file=sys.stderr``), and any ``*.stdout.write(...)``, is an error;
  the emission points are :func:`~repro.service.envelope.emit` /
  :func:`~repro.service.envelope.emit_raw`, nothing else.  Bare
  single-argument prints carry a mechanical ``--fix`` to
  :func:`~repro.service.envelope.hlog` (plus its import).
- **exactly-one envelope** — every ``cmd_*`` subcommand handler must
  emit exactly once on *every* return path, including exception edges.
  This is a path property, so it runs over the per-function CFG
  (:mod:`repro.lint.cfg`): the (min, max) emission bounds across all
  paths to an exit must be exactly ``(1, 1)``.
- **exit codes** — literal exit statuses must come from the documented
  ``{0, 1, 2}`` set: ``return`` literals in handlers, ``sys.exit`` /
  ``SystemExit`` arguments, and ``exit_code=`` keywords.

Test files are exempt (they capture stdout on purpose).
"""

from __future__ import annotations

from pathlib import PurePosixPath
from typing import Iterator

from repro.lint.cfg import BlockEvent, emission_bounds
from repro.lint.diagnostics import Diagnostic, Edit, Fix
from repro.lint.project import CallSite, FunctionInfo, ModuleInfo, ProjectModel
from repro.lint.registry import register

__all__ = ["EnvelopeConformanceRule", "handler_emission_bounds"]

#: The only callables allowed to write stdout in the envelope scope.
_EMITTERS = frozenset(
    {"repro.service.envelope.emit", "repro.service.envelope.emit_raw"}
)

_ALLOWED_EXIT_CODES = frozenset({0, 1, 2})

_HLOG_IMPORT = "from repro.service.envelope import hlog"


def _in_scope(mod: ModuleInfo) -> bool:
    parts = PurePosixPath(mod.path).parts
    name = parts[-1]
    if name.startswith("test_") or name == "conftest.py":
        return False
    return name == "cli.py" or "service" in parts[:-1]


def _is_emit_call(model: ProjectModel, mod: ModuleInfo, callee: str) -> bool:
    return model.resolve(mod, callee) in _EMITTERS


def _literal_code(value: float | None) -> int | None:
    """The integer a literal ArgSummary value spells, if it is one."""
    if value is None or value != int(value):
        return None
    return int(value)


def handler_emission_bounds(
    model: ProjectModel,
) -> dict[str, tuple[int, int] | None]:
    """(min, max) envelope emissions per ``cmd_*`` handler in scope.

    Keyed by fully-qualified function id; ``None`` means the handler has
    no reachable exit (every path raises).  Exposed so the test suite
    can assert the exactly-once property over the real CLI directly.
    """
    out: dict[str, tuple[int, int] | None] = {}
    for mod in sorted(model.modules.values(), key=lambda m: m.path):
        if not _in_scope(mod):
            continue
        for fn in mod.functions.values():
            if fn.cfg is None or not fn.name.startswith("cmd_"):
                continue

            def matches(ev: BlockEvent, mod: ModuleInfo = mod) -> bool:
                return ev.kind == "call" and ev.callee is not None and (
                    _is_emit_call(model, mod, ev.callee)
                )

            out[f"{mod.module}.{fn.qualname}"] = emission_bounds(
                fn.cfg, matches
            )
    return out


@register
class EnvelopeConformanceRule:
    """R11: the stdout-is-one-envelope contract, proven over CFGs."""

    code = "R11"
    name = "envelope-conformance"
    description = (
        "in cli.py and service/, stdout flows only through "
        "envelope.emit/emit_raw, every cmd_* handler emits exactly one "
        "envelope on every return path, and literal exit codes come "
        "from {0, 1, 2}"
    )

    def check(self, ctx) -> Iterator[Diagnostic]:  # pragma: no cover
        """Per-file pass: empty (whole-program rule, see check_project)."""
        return iter(())

    def check_project(self, model: ProjectModel) -> Iterator[Diagnostic]:
        """Check stdout routing, handler emission bounds and exit codes
        across every in-scope module of the project model."""
        for mod in sorted(model.modules.values(), key=lambda m: m.path):
            if not _in_scope(mod):
                continue
            for call in mod.toplevel_calls:
                yield from self._check_stdout(mod, call)
                yield from self._check_exit_literals(mod, call)
            for fn in mod.functions.values():
                if fn.is_test:
                    continue
                for call in fn.calls:
                    yield from self._check_stdout(mod, call)
                    yield from self._check_exit_literals(mod, call)
                yield from self._check_handler(model, mod, fn)

    # -- stray stdout --------------------------------------------------

    def _check_stdout(
        self, mod: ModuleInfo, call: CallSite
    ) -> Iterator[Diagnostic]:
        if call.callee.split(".")[-1] == "print":
            for key, arg in call.keywords:
                if key != "file":
                    continue
                if arg.dotted == "sys.stderr" or arg.name == "stderr":
                    return  # routed to stderr: allowed
                if arg.dotted == "sys.stdout" or arg.name == "stdout":
                    break  # explicit stdout: flagged below
                return  # unknown stream object: give it the benefit
            else:
                if call.has_star_kwargs:
                    return  # **kwargs may carry file=sys.stderr
            yield self._diag(
                mod,
                call.lineno,
                call.col,
                f"'{call.callee}(...)' writes stdout in the envelope "
                "scope; stdout carries exactly one JSON document — use "
                "hlog() for human lines or emit()/emit_raw() for the "
                "document",
                fix=self._print_fix(call),
            )
        elif call.callee.endswith("stdout.write"):
            yield self._diag(
                mod,
                call.lineno,
                call.col,
                f"'{call.callee}(...)' bypasses the envelope; stdout is "
                "written only by emit()/emit_raw()",
            )

    def _print_fix(self, call: CallSite) -> Fix | None:
        """``print(x)`` -> ``hlog(x)``: only the bare one-argument form
        is mechanical (hlog takes a single message)."""
        if (
            call.callee != "print"
            or len(call.args) != 1
            or call.keywords
            or call.has_star_args
            or call.has_star_kwargs
        ):
            return None
        return Fix(
            edits=(Edit(call.lineno, call.col, call.col + 5, "hlog"),),
            add_imports=(_HLOG_IMPORT,),
        )

    # -- exactly-one envelope per handler ------------------------------

    def _check_handler(
        self, model: ProjectModel, mod: ModuleInfo, fn: FunctionInfo
    ) -> Iterator[Diagnostic]:
        if fn.cfg is None:
            return

        if fn.name.startswith("cmd_"):
            def matches(ev: BlockEvent) -> bool:
                return ev.kind == "call" and ev.callee is not None and (
                    _is_emit_call(model, mod, ev.callee)
                )

            bounds = emission_bounds(fn.cfg, matches)
            if bounds is not None and bounds != (1, 1):
                lo, hi = bounds
                if hi == 0:
                    detail = "never emits an envelope"
                elif lo == 0:
                    detail = "has a return path that emits no envelope"
                else:
                    detail = (
                        "has a return path that emits more than one "
                        "envelope"
                    )
                yield self._diag(
                    mod,
                    fn.lineno,
                    fn.col,
                    f"subcommand handler '{fn.qualname}' {detail}; every "
                    "path must call emit()/emit_raw() exactly once",
                )

        if fn.name.startswith("cmd_") or fn.name == "main":
            for ev in fn.cfg.events():
                if ev.kind == "return" and ev.value is not None and (
                    ev.value not in _ALLOWED_EXIT_CODES
                ):
                    yield self._diag(
                        mod,
                        ev.lineno,
                        ev.col,
                        f"'{fn.qualname}' returns exit code {ev.value}; "
                        "the envelope contract allows only 0 (ok), 1 "
                        "(domain failure) or 2 (usage/internal error)",
                    )

    # -- literal exit codes at call sites ------------------------------

    def _check_exit_literals(
        self, mod: ModuleInfo, call: CallSite
    ) -> Iterator[Diagnostic]:
        tail = call.callee.split(".")[-1]
        if (call.callee == "sys.exit" or tail == "SystemExit") and call.args:
            code = _literal_code(
                call.args[0].value if call.args[0].kind == "literal" else None
            )
            if code is not None and code not in _ALLOWED_EXIT_CODES:
                yield self._diag(
                    mod,
                    call.lineno,
                    call.col,
                    f"'{call.callee}({code})' uses an exit code outside "
                    "the documented {0, 1, 2} set",
                )
        for key, arg in call.keywords:
            if key != "exit_code" or arg.kind != "literal":
                continue
            code = _literal_code(arg.value)
            if code is not None and code not in _ALLOWED_EXIT_CODES:
                yield self._diag(
                    mod,
                    call.lineno,
                    call.col,
                    f"'{call.callee}(..., exit_code={code})' uses an exit "
                    "code outside the documented {0, 1, 2} set",
                )

    def _diag(
        self,
        mod: ModuleInfo,
        lineno: int,
        col: int,
        message: str,
        fix: Fix | None = None,
    ) -> Diagnostic:
        return Diagnostic(
            path=mod.path,
            line=lineno,
            col=col + 1,
            code=self.code,
            name=self.name,
            message=message,
            fix=fix,
        )
