"""Built-in reprolint rules.

Importing this package registers every rule with
:mod:`repro.lint.registry` (each module applies the ``@register``
decorator at import time).
"""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    api_hygiene,
    determinism,
    determinism_taint,
    envelope_conformance,
    float_compare,
    knob_parity,
    lock_discipline,
    registry_conformance,
    resource_lifecycle,
    seed_flow,
    service_exceptions,
    test_discipline,
    thread_hygiene,
    unit_propagation,
    unit_safety,
)

__all__ = [
    "api_hygiene",
    "determinism",
    "determinism_taint",
    "envelope_conformance",
    "float_compare",
    "knob_parity",
    "lock_discipline",
    "registry_conformance",
    "resource_lifecycle",
    "seed_flow",
    "service_exceptions",
    "test_discipline",
    "thread_hygiene",
    "unit_propagation",
    "unit_safety",
]
