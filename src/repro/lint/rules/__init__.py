"""Built-in reprolint rules.

Importing this package registers every rule with
:mod:`repro.lint.registry` (each module applies the ``@register``
decorator at import time).
"""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    api_hygiene,
    determinism,
    float_compare,
    registry_conformance,
    seed_flow,
    test_discipline,
    unit_propagation,
    unit_safety,
)

__all__ = [
    "api_hygiene",
    "determinism",
    "float_compare",
    "registry_conformance",
    "seed_flow",
    "test_discipline",
    "unit_propagation",
    "unit_safety",
]
