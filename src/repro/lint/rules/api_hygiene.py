"""R4 — API hygiene.

Two failure modes this repo has already paid for:

- *mutable default arguments* silently share state across calls — in a
  parallel runner that means cross-scenario contamination;
- *swallowed exceptions*: PR 1 introduced ``PolicyInfeasibleError``
  precisely because a policy failing to produce a plan must surface as
  a recorded outcome, not be caught-and-ignored into a bogus makespan.

This rule flags mutable defaults (``[]``, ``{}``, ``set()`` and
friends), bare ``except:``, ``except Exception: pass``-style handlers
that discard the error without re-raising or recording it, and modules
that drop the repo-wide ``from __future__ import annotations``
convention (mechanically autofixable via ``repro lint --fix``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic, Fix
from repro.lint.engine import FileContext
from repro.lint.registry import register
from repro.lint.rules.common import dotted_name

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})
_BROAD_EXC = frozenset({"Exception", "BaseException"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                         ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name is not None and name.split(".")[-1] in _MUTABLE_CALLS
    return False


def _swallows(handler: ast.ExceptHandler) -> bool:
    """Body does nothing but pass/``...`` — the error vanishes."""
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in handler.body
    )


def _broad_types(type_node: ast.expr | None) -> list[str]:
    if type_node is None:
        return []
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    out = []
    for n in nodes:
        name = dotted_name(n)
        if name is not None and name.split(".")[-1] in _BROAD_EXC:
            out.append(name)
    return out


@register
class ApiHygieneRule:
    code = "R4"
    name = "api-hygiene"
    description = (
        "no mutable default arguments; no bare except or swallowed "
        "broad Exception handlers; modules carry "
        "'from __future__ import annotations'"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        yield from self._check_future_import(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                args = node.args
                for default in (*args.defaults, *args.kw_defaults):
                    if default is not None and _is_mutable_default(default):
                        fn = getattr(node, "name", "<lambda>")
                        yield ctx.diag(
                            default,
                            self,
                            f"mutable default argument in '{fn}' is shared "
                            "across calls; default to None and create inside",
                        )
            elif isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield ctx.diag(
                        node,
                        self,
                        "bare 'except:' catches SystemExit/KeyboardInterrupt "
                        "too; name the exception types",
                    )
                    continue
                broad = _broad_types(node.type)
                if broad and _swallows(node):
                    yield ctx.diag(
                        node,
                        self,
                        f"'except {broad[0]}' swallows the error (body is "
                        "pass); handle it, re-raise, or record the failure "
                        "(cf. PolicyInfeasibleError)",
                    )

    def _check_future_import(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Modules with code must opt into postponed annotations — the
        repo-wide typing convention (docs/development.md)."""
        body = ctx.tree.body
        docstring_end = 0
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            docstring_end = body[0].end_lineno or body[0].lineno
            body = body[1:]
        if not body:
            return  # empty or docstring-only module
        for stmt in body:
            if (
                isinstance(stmt, ast.ImportFrom)
                and stmt.module == "__future__"
                and any(a.name == "annotations" for a in stmt.names)
            ):
                return
        insert_at = docstring_end + 1
        text = "from __future__ import annotations"
        following = (
            ctx.lines[insert_at - 1] if insert_at - 1 < len(ctx.lines) else ""
        )
        if docstring_end:
            text = "\n" + text
            if following.strip():
                text += "\n"
        elif following.strip():
            text += "\n"
        yield Diagnostic(
            path=ctx.posix_path,
            line=1,
            col=1,
            code=self.code,
            name=self.name,
            message=(
                "module lacks 'from __future__ import annotations' "
                "(repo typing convention; autofixable with --fix)"
            ),
            fix=Fix(insert_line=(insert_at, text)),
        )
