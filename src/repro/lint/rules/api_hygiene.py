"""R4 — API hygiene.

Two failure modes this repo has already paid for:

- *mutable default arguments* silently share state across calls — in a
  parallel runner that means cross-scenario contamination;
- *swallowed exceptions*: PR 1 introduced ``PolicyInfeasibleError``
  precisely because a policy failing to produce a plan must surface as
  a recorded outcome, not be caught-and-ignored into a bogus makespan.

This rule flags mutable defaults (``[]``, ``{}``, ``set()`` and
friends), bare ``except:``, and ``except Exception: pass``-style
handlers that discard the error without re-raising or recording it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext
from repro.lint.registry import register
from repro.lint.rules.common import dotted_name

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})
_BROAD_EXC = frozenset({"Exception", "BaseException"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                         ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name is not None and name.split(".")[-1] in _MUTABLE_CALLS
    return False


def _swallows(handler: ast.ExceptHandler) -> bool:
    """Body does nothing but pass/``...`` — the error vanishes."""
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in handler.body
    )


def _broad_types(type_node: ast.expr | None) -> list[str]:
    if type_node is None:
        return []
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    out = []
    for n in nodes:
        name = dotted_name(n)
        if name is not None and name.split(".")[-1] in _BROAD_EXC:
            out.append(name)
    return out


@register
class ApiHygieneRule:
    code = "R4"
    name = "api-hygiene"
    description = (
        "no mutable default arguments; no bare except or swallowed "
        "broad Exception handlers"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                args = node.args
                for default in (*args.defaults, *args.kw_defaults):
                    if default is not None and _is_mutable_default(default):
                        fn = getattr(node, "name", "<lambda>")
                        yield ctx.diag(
                            default,
                            self,
                            f"mutable default argument in '{fn}' is shared "
                            "across calls; default to None and create inside",
                        )
            elif isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield ctx.diag(
                        node,
                        self,
                        "bare 'except:' catches SystemExit/KeyboardInterrupt "
                        "too; name the exception types",
                    )
                    continue
                broad = _broad_types(node.type)
                if broad and _swallows(node):
                    yield ctx.diag(
                        node,
                        self,
                        f"'except {broad[0]}' swallows the error (body is "
                        "pass); handle it, re-raise, or record the failure "
                        "(cf. PolicyInfeasibleError)",
                    )
