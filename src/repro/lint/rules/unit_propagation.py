"""R7 — unit-propagation (whole-program).

R2 keeps single files honest about seconds; R7 follows the quantities
*across* call sites.  Using the signature metadata in the
:class:`~repro.lint.project.ProjectModel`, every resolved call is
checked argument-by-argument against the callee's parameter names:

- a **bare 60/3600/86400-multiple literal** passed positionally into a
  time-typed parameter (R2 only sees keyword positions; the positional
  form is how cross-module unit bugs actually ship);
- an argument whose **name carries a non-second unit suffix**
  (``timeout_ms``, ``delay_hours``) flowing into a time-typed slot;
- a **count-valued name** (``n_units``, ``num_traces``) flowing into a
  time-typed slot, or a **time-valued name** flowing into a count-typed
  slot — the ``W(p)``-vs-seconds mix-up that corrupts checkpoint
  interval formulas silently.

Time- and count-typedness reuse R2's token classifier, so the two rules
can never disagree about what a duration is.  Test modules are exempt
(constructed literals are idiomatic in tests); keyword-literal
positions stay R2's jurisdiction so no call site is flagged twice.
"""

from __future__ import annotations

from pathlib import PurePosixPath
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import (
    ArgSummary,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
)
from repro.lint.registry import register
from repro.lint.rules.unit_safety import (
    _BAD_UNIT_SUFFIXES,
    _COUNT_TOKENS,
    _is_time_name,
    _suggest,
)


def _is_count_name(name: str) -> bool:
    if _is_time_name(name):
        return False
    tokens = name.lower().split("_")
    return any(tok in _COUNT_TOKENS for tok in tokens)


def _is_test_module(mod: ModuleInfo) -> bool:
    name = PurePosixPath(mod.path).name
    return name.startswith("test_") or name == "conftest.py"


@register
class UnitPropagationRule:
    code = "R7"
    name = "unit-propagation"
    description = (
        "arguments must match the unit of the parameter they flow into: "
        "no bare 60-multiple literals or non-second/count-valued names "
        "passed into time-typed slots across call sites"
    )

    def check(self, ctx) -> Iterator[Diagnostic]:  # pragma: no cover
        return iter(())  # whole-program rule; see check_project

    def check_project(self, model: ProjectModel) -> Iterator[Diagnostic]:
        for mod in sorted(model.modules.values(), key=lambda m: m.path):
            if _is_test_module(mod):
                continue
            if PurePosixPath(mod.path).name == "units.py":
                continue
            for fn in mod.functions.values():
                for call in fn.calls:
                    resolved = model.resolve(mod, call.callee)
                    if resolved is None:
                        continue
                    target = model.function(resolved)
                    if target is None:
                        continue
                    yield from self._check_call(mod, call, target[1])

    def _check_call(
        self, mod: ModuleInfo, call, callee: FunctionInfo
    ) -> Iterator[Diagnostic]:
        positional = callee.positional_params()
        for index, arg in enumerate(call.args):
            if index >= len(positional):
                break
            param = positional[index].name
            yield from self._check_slot(
                mod, call, callee, param, arg, allow_literal=True
            )
        param_names = set(callee.param_names())
        for kw, arg in call.keywords:
            if kw not in param_names:
                continue
            # literal keywords are R2's jurisdiction — names only here
            yield from self._check_slot(
                mod, call, callee, kw, arg, allow_literal=False
            )

    def _check_slot(
        self,
        mod: ModuleInfo,
        call,
        callee: FunctionInfo,
        param: str,
        arg: ArgSummary,
        allow_literal: bool,
    ) -> Iterator[Diagnostic]:
        time_slot = _is_time_name(param)
        if time_slot:
            if (
                allow_literal
                and arg.kind == "literal"
                and arg.value is not None
                and arg.value >= 60
                and arg.value % 60 == 0
            ):
                yield self._diag(
                    mod,
                    call,
                    f"bare literal {arg.value:g} flows into time-typed "
                    f"parameter '{param}' of '{callee.qualname}'; write "
                    f"{_suggest(arg.value)} from repro.units",
                )
            elif arg.kind == "name" and arg.name is not None:
                if arg.name.lower().endswith(_BAD_UNIT_SUFFIXES):
                    yield self._diag(
                        mod,
                        call,
                        f"'{arg.name}' names a non-second unit but flows "
                        f"into time-typed parameter '{param}' of "
                        f"'{callee.qualname}' (all times are seconds)",
                    )
                elif _is_count_name(arg.name):
                    yield self._diag(
                        mod,
                        call,
                        f"count-valued '{arg.name}' flows into time-typed "
                        f"parameter '{param}' of '{callee.qualname}'; "
                        "a W(p)/count quantity is not a duration",
                    )
        elif _is_count_name(param):
            if arg.kind == "name" and arg.name is not None and _is_time_name(arg.name):
                yield self._diag(
                    mod,
                    call,
                    f"time-valued '{arg.name}' flows into count-typed "
                    f"parameter '{param}' of '{callee.qualname}'; "
                    "a duration is not a count",
                )

    def _diag(self, mod: ModuleInfo, call, message: str) -> Diagnostic:
        return Diagnostic(
            path=mod.path,
            line=call.lineno,
            col=call.col + 1,
            code=self.code,
            name=self.name,
            message=message,
        )
