"""Lint engine: discovery, parsing, caching, rule dispatch, reporting.

Two passes over the linted tree:

1. **per-file** — each per-file rule walks one parsed
   :class:`FileContext`; results are filtered through inline pragmas
   (:mod:`repro.lint.pragmas`) and stored, together with the file's
   :class:`~repro.lint.project.ModuleInfo` summary, in the content-hash
   cache (:mod:`repro.lint.cache`);
2. **whole-program** — the :class:`~repro.lint.project.ProjectModel` is
   assembled from every file's summary (cached or fresh); the classic
   project rules (R6-R8, R11) run over it, and the interprocedural
   rules (R13-R15) dispatch per module through a second cache record
   keyed on call-graph dependencies, so a changed leaf re-analyzes
   exactly itself and its transitive callers.

Because the cache stores summaries alongside diagnostics, a warm run
over an unchanged tree re-parses **zero** files — including for the
whole-program pass.  ``jobs > 1`` fans the per-file pass out over a
process pool (same pattern as :mod:`repro.simulation.parallel`).
Unreadable and non-UTF-8 files surface as synthetic ``E0`` parse-error
diagnostics instead of crashing the run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.lint.cache import (
    LintCache,
    content_digest,
    diagnostic_from_json,
    diagnostic_to_json,
)
from repro.lint.diagnostics import Diagnostic
from repro.lint.pragmas import (
    expand_decorator_pragmas,
    is_disabled,
    parse_pragmas,
)
from repro.lint.registry import (
    LintRule,
    all_rules,
    is_interprocedural,
    is_project_rule,
    resolve_selection,
)

__all__ = [
    "FileContext",
    "FileResult",
    "LintReport",
    "format_diagnostic",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "run_lint",
]

# Directory names never descended into during discovery.  ``fixtures``
# holds deliberate rule violations for the linter's own test suite;
# explicit file arguments still lint them.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "build", "dist", "fixtures",
     ".reprolint-cache"}
)


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    path: Path
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @property
    def posix_path(self) -> str:
        return self.path.as_posix()

    def in_package(self, *parts: str) -> bool:
        """True if the file lives under any of the given directories
        (``ctx.in_package("simulation", "core")``)."""
        path_parts = set(self.path.parts)
        return any(p in path_parts for p in parts)

    @property
    def is_test_file(self) -> bool:
        return self.path.name.startswith("test_") and self.path.suffix == ".py"

    def diag(self, node: ast.AST, rule: LintRule, message: str) -> Diagnostic:
        """Build a :class:`Diagnostic` anchored at ``node``'s location."""
        return Diagnostic(
            path=self.posix_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=rule.code,
            name=rule.name,
            message=message,
        )


@dataclass
class FileResult:
    """Everything the engine learned about one file."""

    path: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    module: dict[str, Any] | None = None  # ModuleInfo JSON summary
    pragmas: dict[int, frozenset[str]] = field(default_factory=dict)
    parsed: bool = False  # a fresh ast.parse happened for this file
    digest: str | None = None  # content hash (keys the project pass)


@dataclass
class LintReport:
    """Aggregate outcome of one :func:`run_lint` invocation."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files: int = 0
    parsed: int = 0  # cache misses: files actually read and parsed
    cached: int = 0  # cache hits: files served entirely from the cache
    # interprocedural pass (R13-R15): modules re-analyzed this run vs
    # served from the call-graph-keyed project cache
    project_reanalyzed: list[str] = field(default_factory=list)
    project_cached: list[str] = field(default_factory=list)
    # baseline accounting (filled by the CLI when --baseline is active)
    suppressed: int = 0
    stale_baseline: list[str] = field(default_factory=list)

    @property
    def has_errors(self) -> bool:
        """True when any file failed to parse (``E0``) — exit code 2."""
        return any(d.code == "E0" for d in self.diagnostics)


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            candidates: Iterable[Path] = [p]
        elif p.is_dir():
            candidates = sorted(
                f
                for f in p.rglob("*.py")
                if not (_SKIP_DIRS & set(f.relative_to(p).parts[:-1]))
            )
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")
        for f in candidates:
            if f not in seen:
                seen.add(f)
                yield f


def _parse_error(path: Path, line: int, col: int, message: str) -> Diagnostic:
    return Diagnostic(
        path=path.as_posix(),
        line=line,
        col=col,
        code="E0",
        name="parse-error",
        message=message,
    )


def _file_rules(rules: Sequence[LintRule] | None = None) -> list[LintRule]:
    if rules is None:
        rules = all_rules()
    return [r for r in rules if not is_project_rule(r)]


def _process_file(
    path: Path,
    cache: LintCache | None,
    file_rules: Sequence[LintRule] | None = None,
) -> FileResult:
    """Lint one file through the cache: per-file diagnostics for the
    *selected* per-file rules (the cache signature is keyed on that
    selection), the module summary, and pragmas."""
    if file_rules is None:
        file_rules = _file_rules()
    try:
        raw = path.read_bytes()
    except OSError as exc:
        return FileResult(
            path=path.as_posix(),
            diagnostics=[_parse_error(path, 1, 1, f"cannot read: {exc}")],
        )
    digest = content_digest(raw)
    if cache is not None:
        record = cache.load(path, digest)
        if record is not None:
            return FileResult(
                path=path.as_posix(),
                diagnostics=[
                    diagnostic_from_json(d) for d in record.get("diags", [])
                ],
                module=record.get("module"),
                pragmas={
                    int(line): frozenset(keys)
                    for line, keys in record.get("pragmas", {}).items()
                },
                digest=digest,
            )

    result = FileResult(path=path.as_posix(), parsed=True, digest=digest)
    try:
        source = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        result.diagnostics = [
            _parse_error(path, 1, 1, f"cannot decode as UTF-8: {exc.reason}")
        ]
    else:
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            result.diagnostics = [
                _parse_error(
                    path,
                    exc.lineno or 1,
                    (exc.offset or 0) + 1,
                    f"cannot parse: {exc.msg}",
                )
            ]
        else:
            lines = source.splitlines()
            pragmas = expand_decorator_pragmas(tree, parse_pragmas(lines))
            ctx = FileContext(path=path, source=source, tree=tree, lines=lines)
            diags: list[Diagnostic] = []
            for rule in file_rules:
                for d in rule.check(ctx):
                    if not is_disabled(pragmas, d.line, d.code, d.name):
                        diags.append(d)
            from repro.lint.project import build_module_info

            result.diagnostics = sorted(diags)
            result.module = build_module_info(path, tree, lines).to_json()
            result.pragmas = pragmas

    if cache is not None:
        cache.store(
            path,
            digest,
            {
                "diags": [diagnostic_to_json(d) for d in result.diagnostics],
                "module": result.module,
                "pragmas": {
                    str(line): sorted(keys)
                    for line, keys in result.pragmas.items()
                },
            },
        )
    return result


# -- process-pool worker (module level so it pickles) -------------------

_POOL_CACHE: LintCache | None = None
_POOL_RULES: list[LintRule] | None = None


def _pool_init(
    cache_dir: str | None, enabled: bool, codes: tuple[str, ...] | None
) -> None:
    """Rebuild the cache and the resolved selection inside a worker:
    rule objects do not pickle, so only the codes cross the boundary."""
    global _POOL_CACHE, _POOL_RULES
    rules = resolve_selection(codes)
    _POOL_RULES = _file_rules(rules)
    _POOL_CACHE = (
        LintCache(
            Path(cache_dir) if cache_dir else None, enabled=enabled,
            rules=rules,
        )
        if enabled
        else None
    )


def _pool_worker(path_str: str) -> FileResult:
    return _process_file(Path(path_str), _POOL_CACHE, _POOL_RULES)


def _process_files(
    files: list[Path],
    cache: LintCache | None,
    jobs: int,
    rules: Sequence[LintRule],
) -> list[FileResult]:
    file_rules = _file_rules(rules)
    if jobs > 1 and len(files) > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            cache_dir = cache.cache_dir.as_posix() if cache else None
            codes = tuple(r.code for r in rules)
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(files)),
                initializer=_pool_init,
                initargs=(cache_dir, cache is not None, codes),
            ) as pool:
                return list(
                    pool.map(_pool_worker, [f.as_posix() for f in files])
                )
        except (ImportError, OSError):  # no usable multiprocessing here
            pass
    return [_process_file(f, cache, file_rules) for f in files]


def run_lint(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    *,
    cache: LintCache | None = None,
    jobs: int = 1,
) -> LintReport:
    """Lint files and directories; the full engine entry point.

    Only the *selected* per-file rules run, and the cache is re-keyed
    to that selection (plus each rule's source hash), so changing
    ``--select`` re-analyzes while repeating a selection stays warm.
    Project rules run only when selected, over a model rebuilt from
    every file's summary.
    """
    rules = resolve_selection(select)
    selected_codes = {r.code for r in rules}
    project_rules = [r for r in rules if is_project_rule(r)]
    if cache is not None:
        cache.bind_rules(rules)

    files = list(iter_python_files(paths))
    results = _process_files(files, cache, jobs, rules)

    report = LintReport(files=len(files))
    for res in results:
        report.parsed += 1 if res.parsed else 0
        report.cached += 0 if res.parsed else 1
        for d in res.diagnostics:
            if d.code == "E0" or d.code in selected_codes:
                report.diagnostics.append(d)

    if project_rules:
        from repro.lint.project import ModuleInfo, ProjectModel

        model = ProjectModel(
            [ModuleInfo.from_json(r.module) for r in results if r.module]
        )
        pragmas_by_path = {r.path: r.pragmas for r in results}
        classic_rules = [r for r in project_rules if hasattr(r, "check_project")]
        inter_rules = [r for r in project_rules if is_interprocedural(r)]
        for rule in classic_rules:
            for d in rule.check_project(model):
                file_pragmas = pragmas_by_path.get(d.path, {})
                if not is_disabled(file_pragmas, d.line, d.code, d.name):
                    report.diagnostics.append(d)
        if inter_rules:
            _run_interprocedural(
                model, inter_rules, results, pragmas_by_path, cache, report
            )

    report.diagnostics.sort()
    return report


def _run_interprocedural(
    model: "Any",
    inter_rules: Sequence[LintRule],
    results: Sequence[FileResult],
    pragmas_by_path: dict[str, dict[int, frozenset[str]]],
    cache: LintCache | None,
    report: LintReport,
) -> None:
    """Dispatch the call-graph rules (R13-R15) per module, through the
    project-level cache.

    A module's stored diagnostics are served warm when its own content
    digest and the digest of **every module its analysis depended on**
    (transitively reachable callees + package ``__init__`` re-exports)
    are unchanged, and the module *set* is the same — adding or removing
    a file can redirect name resolution anywhere, so it invalidates
    everything.  Only invalid modules rebuild the
    :class:`~repro.lint.interproc.InterAnalysis`; a fully-warm tree
    skips the call graph entirely.
    """
    digest_by_path = {r.path: r.digest for r in results if r.digest}
    digest_by_module = {
        mod.module: digest_by_path[mod.path]
        for mod in model.modules.values()
        if mod.path in digest_by_path
    }
    module_set = sorted(model.modules)

    stored = cache.load_project() if cache is not None else None
    stored_modules = (stored or {}).get("modules", {})
    same_set = (stored or {}).get("module_set") == module_set

    def is_warm(name: str) -> bool:
        if not same_set:
            return False
        rec = stored_modules.get(name)
        if rec is None or rec.get("digest") != digest_by_module.get(name):
            return False
        return all(
            digest_by_module.get(dep) == dep_digest
            for dep, dep_digest in rec.get("deps", {}).items()
        )

    analysis = None
    new_record: dict[str, Any] = {}
    for name in module_set:
        mod = model.modules[name]
        if is_warm(name):
            report.project_cached.append(mod.path)
            rec = stored_modules[name]
            report.diagnostics.extend(
                diagnostic_from_json(d) for d in rec.get("diags", [])
            )
            new_record[name] = rec
            continue
        report.project_reanalyzed.append(mod.path)
        if analysis is None:
            from repro.lint.interproc import InterAnalysis

            analysis = InterAnalysis(model)
            deps = analysis.module_dependencies()
        diags: list[Diagnostic] = []
        for rule in inter_rules:
            for d in rule.check_module(analysis, mod):
                file_pragmas = pragmas_by_path.get(d.path, {})
                if not is_disabled(file_pragmas, d.line, d.code, d.name):
                    diags.append(d)
        report.diagnostics.extend(diags)
        new_record[name] = {
            "digest": digest_by_module.get(name),
            "deps": {
                dep: digest_by_module[dep]
                for dep in sorted(deps.get(name, ()))
                if dep in digest_by_module
            },
            "diags": [diagnostic_to_json(d) for d in sorted(diags)],
        }
    if cache is not None:
        cache.store_project(
            {"module_set": module_set, "modules": new_record}
        )


def lint_file(
    path: str | Path, rules: Sequence[LintRule] | None = None
) -> list[Diagnostic]:
    """Run ``rules`` (default: all registered) over one file, uncached.

    Project rules in ``rules`` contribute their (empty) per-file pass
    only; use :func:`run_lint` for whole-program analysis.
    """
    p = Path(path)
    if rules is None:
        rules = resolve_selection(None)
    try:
        source = p.read_bytes().decode("utf-8")
    except OSError as exc:
        return [_parse_error(p, 1, 1, f"cannot read: {exc}")]
    except UnicodeDecodeError as exc:
        return [_parse_error(p, 1, 1, f"cannot decode as UTF-8: {exc.reason}")]
    try:
        tree = ast.parse(source, filename=str(p))
    except SyntaxError as exc:
        return [
            _parse_error(
                p, exc.lineno or 1, (exc.offset or 0) + 1,
                f"cannot parse: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    ctx = FileContext(path=p, source=source, tree=tree, lines=lines)
    pragmas = expand_decorator_pragmas(tree, parse_pragmas(lines))
    out: list[Diagnostic] = []
    for rule in rules:
        for d in rule.check(ctx):
            if not is_disabled(pragmas, d.line, d.code, d.name):
                out.append(d)
    return sorted(out)


def lint_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    **kwargs: Any,
) -> list[Diagnostic]:
    """Lint files and directories; returns all surviving diagnostics."""
    return run_lint(paths, select, **kwargs).diagnostics


def format_diagnostic(diag: Diagnostic) -> str:
    """Render one diagnostic as a CLI report line."""
    return diag.render()
