"""Lint engine: discovery, parsing, caching, rule dispatch, reporting.

Two passes over the linted tree:

1. **per-file** — each per-file rule walks one parsed
   :class:`FileContext`; results are filtered through inline pragmas
   (:mod:`repro.lint.pragmas`) and stored, together with the file's
   :class:`~repro.lint.project.ModuleInfo` summary, in the content-hash
   cache (:mod:`repro.lint.cache`);
2. **whole-program** — the :class:`~repro.lint.project.ProjectModel` is
   assembled from every file's summary (cached or fresh) and the
   project rules (R6-R8, R11) run over it.

Because the cache stores summaries alongside diagnostics, a warm run
over an unchanged tree re-parses **zero** files — including for the
whole-program pass.  ``jobs > 1`` fans the per-file pass out over a
process pool (same pattern as :mod:`repro.simulation.parallel`).
Unreadable and non-UTF-8 files surface as synthetic ``E0`` parse-error
diagnostics instead of crashing the run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.lint.cache import (
    LintCache,
    content_digest,
    diagnostic_from_json,
    diagnostic_to_json,
)
from repro.lint.diagnostics import Diagnostic
from repro.lint.pragmas import (
    expand_decorator_pragmas,
    is_disabled,
    parse_pragmas,
)
from repro.lint.registry import (
    LintRule,
    all_rules,
    is_project_rule,
    resolve_selection,
)

__all__ = [
    "FileContext",
    "FileResult",
    "LintReport",
    "format_diagnostic",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "run_lint",
]

# Directory names never descended into during discovery.  ``fixtures``
# holds deliberate rule violations for the linter's own test suite;
# explicit file arguments still lint them.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "build", "dist", "fixtures",
     ".reprolint-cache"}
)


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    path: Path
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @property
    def posix_path(self) -> str:
        return self.path.as_posix()

    def in_package(self, *parts: str) -> bool:
        """True if the file lives under any of the given directories
        (``ctx.in_package("simulation", "core")``)."""
        path_parts = set(self.path.parts)
        return any(p in path_parts for p in parts)

    @property
    def is_test_file(self) -> bool:
        return self.path.name.startswith("test_") and self.path.suffix == ".py"

    def diag(self, node: ast.AST, rule: LintRule, message: str) -> Diagnostic:
        """Build a :class:`Diagnostic` anchored at ``node``'s location."""
        return Diagnostic(
            path=self.posix_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=rule.code,
            name=rule.name,
            message=message,
        )


@dataclass
class FileResult:
    """Everything the engine learned about one file."""

    path: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    module: dict[str, Any] | None = None  # ModuleInfo JSON summary
    pragmas: dict[int, frozenset[str]] = field(default_factory=dict)
    parsed: bool = False  # a fresh ast.parse happened for this file


@dataclass
class LintReport:
    """Aggregate outcome of one :func:`run_lint` invocation."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files: int = 0
    parsed: int = 0  # cache misses: files actually read and parsed
    cached: int = 0  # cache hits: files served entirely from the cache

    @property
    def has_errors(self) -> bool:
        """True when any file failed to parse (``E0``) — exit code 2."""
        return any(d.code == "E0" for d in self.diagnostics)


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            candidates: Iterable[Path] = [p]
        elif p.is_dir():
            candidates = sorted(
                f
                for f in p.rglob("*.py")
                if not (_SKIP_DIRS & set(f.relative_to(p).parts[:-1]))
            )
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")
        for f in candidates:
            if f not in seen:
                seen.add(f)
                yield f


def _parse_error(path: Path, line: int, col: int, message: str) -> Diagnostic:
    return Diagnostic(
        path=path.as_posix(),
        line=line,
        col=col,
        code="E0",
        name="parse-error",
        message=message,
    )


def _file_rules(rules: Sequence[LintRule] | None = None) -> list[LintRule]:
    if rules is None:
        rules = all_rules()
    return [r for r in rules if not is_project_rule(r)]


def _process_file(
    path: Path,
    cache: LintCache | None,
    file_rules: Sequence[LintRule] | None = None,
) -> FileResult:
    """Lint one file through the cache: per-file diagnostics for the
    *selected* per-file rules (the cache signature is keyed on that
    selection), the module summary, and pragmas."""
    if file_rules is None:
        file_rules = _file_rules()
    try:
        raw = path.read_bytes()
    except OSError as exc:
        return FileResult(
            path=path.as_posix(),
            diagnostics=[_parse_error(path, 1, 1, f"cannot read: {exc}")],
        )
    digest = content_digest(raw)
    if cache is not None:
        record = cache.load(path, digest)
        if record is not None:
            return FileResult(
                path=path.as_posix(),
                diagnostics=[
                    diagnostic_from_json(d) for d in record.get("diags", [])
                ],
                module=record.get("module"),
                pragmas={
                    int(line): frozenset(keys)
                    for line, keys in record.get("pragmas", {}).items()
                },
            )

    result = FileResult(path=path.as_posix(), parsed=True)
    try:
        source = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        result.diagnostics = [
            _parse_error(path, 1, 1, f"cannot decode as UTF-8: {exc.reason}")
        ]
    else:
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            result.diagnostics = [
                _parse_error(
                    path,
                    exc.lineno or 1,
                    (exc.offset or 0) + 1,
                    f"cannot parse: {exc.msg}",
                )
            ]
        else:
            lines = source.splitlines()
            pragmas = expand_decorator_pragmas(tree, parse_pragmas(lines))
            ctx = FileContext(path=path, source=source, tree=tree, lines=lines)
            diags: list[Diagnostic] = []
            for rule in file_rules:
                for d in rule.check(ctx):
                    if not is_disabled(pragmas, d.line, d.code, d.name):
                        diags.append(d)
            from repro.lint.project import build_module_info

            result.diagnostics = sorted(diags)
            result.module = build_module_info(path, tree).to_json()
            result.pragmas = pragmas

    if cache is not None:
        cache.store(
            path,
            digest,
            {
                "diags": [diagnostic_to_json(d) for d in result.diagnostics],
                "module": result.module,
                "pragmas": {
                    str(line): sorted(keys)
                    for line, keys in result.pragmas.items()
                },
            },
        )
    return result


# -- process-pool worker (module level so it pickles) -------------------

_POOL_CACHE: LintCache | None = None
_POOL_RULES: list[LintRule] | None = None


def _pool_init(
    cache_dir: str | None, enabled: bool, codes: tuple[str, ...] | None
) -> None:
    """Rebuild the cache and the resolved selection inside a worker:
    rule objects do not pickle, so only the codes cross the boundary."""
    global _POOL_CACHE, _POOL_RULES
    rules = resolve_selection(codes)
    _POOL_RULES = _file_rules(rules)
    _POOL_CACHE = (
        LintCache(
            Path(cache_dir) if cache_dir else None, enabled=enabled,
            rules=rules,
        )
        if enabled
        else None
    )


def _pool_worker(path_str: str) -> FileResult:
    return _process_file(Path(path_str), _POOL_CACHE, _POOL_RULES)


def _process_files(
    files: list[Path],
    cache: LintCache | None,
    jobs: int,
    rules: Sequence[LintRule],
) -> list[FileResult]:
    file_rules = _file_rules(rules)
    if jobs > 1 and len(files) > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            cache_dir = cache.cache_dir.as_posix() if cache else None
            codes = tuple(r.code for r in rules)
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(files)),
                initializer=_pool_init,
                initargs=(cache_dir, cache is not None, codes),
            ) as pool:
                return list(
                    pool.map(_pool_worker, [f.as_posix() for f in files])
                )
        except (ImportError, OSError):  # no usable multiprocessing here
            pass
    return [_process_file(f, cache, file_rules) for f in files]


def run_lint(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    *,
    cache: LintCache | None = None,
    jobs: int = 1,
) -> LintReport:
    """Lint files and directories; the full engine entry point.

    Only the *selected* per-file rules run, and the cache is re-keyed
    to that selection (plus each rule's source hash), so changing
    ``--select`` re-analyzes while repeating a selection stays warm.
    Project rules run only when selected, over a model rebuilt from
    every file's summary.
    """
    rules = resolve_selection(select)
    selected_codes = {r.code for r in rules}
    project_rules = [r for r in rules if is_project_rule(r)]
    if cache is not None:
        cache.bind_rules(rules)

    files = list(iter_python_files(paths))
    results = _process_files(files, cache, jobs, rules)

    report = LintReport(files=len(files))
    for res in results:
        report.parsed += 1 if res.parsed else 0
        report.cached += 0 if res.parsed else 1
        for d in res.diagnostics:
            if d.code == "E0" or d.code in selected_codes:
                report.diagnostics.append(d)

    if project_rules:
        from repro.lint.project import ModuleInfo, ProjectModel

        model = ProjectModel(
            [ModuleInfo.from_json(r.module) for r in results if r.module]
        )
        pragmas_by_path = {r.path: r.pragmas for r in results}
        for rule in project_rules:
            for d in rule.check_project(model):
                file_pragmas = pragmas_by_path.get(d.path, {})
                if not is_disabled(file_pragmas, d.line, d.code, d.name):
                    report.diagnostics.append(d)

    report.diagnostics.sort()
    return report


def lint_file(
    path: str | Path, rules: Sequence[LintRule] | None = None
) -> list[Diagnostic]:
    """Run ``rules`` (default: all registered) over one file, uncached.

    Project rules in ``rules`` contribute their (empty) per-file pass
    only; use :func:`run_lint` for whole-program analysis.
    """
    p = Path(path)
    if rules is None:
        rules = resolve_selection(None)
    try:
        source = p.read_bytes().decode("utf-8")
    except OSError as exc:
        return [_parse_error(p, 1, 1, f"cannot read: {exc}")]
    except UnicodeDecodeError as exc:
        return [_parse_error(p, 1, 1, f"cannot decode as UTF-8: {exc.reason}")]
    try:
        tree = ast.parse(source, filename=str(p))
    except SyntaxError as exc:
        return [
            _parse_error(
                p, exc.lineno or 1, (exc.offset or 0) + 1,
                f"cannot parse: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    ctx = FileContext(path=p, source=source, tree=tree, lines=lines)
    pragmas = expand_decorator_pragmas(tree, parse_pragmas(lines))
    out: list[Diagnostic] = []
    for rule in rules:
        for d in rule.check(ctx):
            if not is_disabled(pragmas, d.line, d.code, d.name):
                out.append(d)
    return sorted(out)


def lint_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    **kwargs: Any,
) -> list[Diagnostic]:
    """Lint files and directories; returns all surviving diagnostics."""
    return run_lint(paths, select, **kwargs).diagnostics


def format_diagnostic(diag: Diagnostic) -> str:
    """Render one diagnostic as a CLI report line."""
    return diag.render()
