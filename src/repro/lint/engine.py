"""Lint engine: file discovery, parsing, rule dispatch, pragma filtering.

The engine is deliberately small — each rule owns its own AST walk over
a shared :class:`FileContext`, and the engine only handles the
mechanics: reading files, building the context once per file, running
the selected rules, and dropping diagnostics suppressed by an inline
``# reprolint: disable=`` pragma (:mod:`repro.lint.pragmas`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.lint.diagnostics import Diagnostic
from repro.lint.pragmas import is_disabled, parse_pragmas
from repro.lint.registry import LintRule, resolve_selection

__all__ = [
    "FileContext",
    "format_diagnostic",
    "iter_python_files",
    "lint_file",
    "lint_paths",
]

# Directory names never descended into during discovery.  ``fixtures``
# holds deliberate rule violations for the linter's own test suite;
# explicit file arguments still lint them.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist", "fixtures"})


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    path: Path
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @property
    def posix_path(self) -> str:
        return self.path.as_posix()

    def in_package(self, *parts: str) -> bool:
        """True if the file lives under any of the given directories
        (``ctx.in_package("simulation", "core")``)."""
        path_parts = set(self.path.parts)
        return any(p in path_parts for p in parts)

    @property
    def is_test_file(self) -> bool:
        return self.path.name.startswith("test_") and self.path.suffix == ".py"

    def diag(self, node: ast.AST, rule: LintRule, message: str) -> Diagnostic:
        """Build a :class:`Diagnostic` anchored at ``node``'s location."""
        return Diagnostic(
            path=self.posix_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=rule.code,
            name=rule.name,
            message=message,
        )


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            candidates: Iterable[Path] = [p]
        elif p.is_dir():
            candidates = sorted(
                f
                for f in p.rglob("*.py")
                if not (_SKIP_DIRS & set(f.relative_to(p).parts[:-1]))
            )
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")
        for f in candidates:
            if f not in seen:
                seen.add(f)
                yield f


def lint_file(
    path: str | Path, rules: Sequence[LintRule] | None = None
) -> list[Diagnostic]:
    """Run ``rules`` (default: all registered) over one file."""
    p = Path(path)
    if rules is None:
        rules = resolve_selection(None)
    source = p.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(p))
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=p.as_posix(),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code="E0",
                name="parse-error",
                message=f"cannot parse: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    ctx = FileContext(path=p, source=source, tree=tree, lines=lines)
    pragmas = parse_pragmas(lines)
    out: list[Diagnostic] = []
    for rule in rules:
        for d in rule.check(ctx):
            if not is_disabled(pragmas, d.line, d.code, d.name):
                out.append(d)
    return sorted(out)


def lint_paths(
    paths: Sequence[str | Path], select: Iterable[str] | None = None
) -> list[Diagnostic]:
    """Lint files and directories; returns all surviving diagnostics."""
    rules = resolve_selection(select)
    out: list[Diagnostic] = []
    for f in iter_python_files(paths):
        out.extend(lint_file(f, rules))
    return out


def format_diagnostic(diag: Diagnostic) -> str:
    """Render one diagnostic as a CLI report line."""
    return diag.render()
