"""Machine-readable report formats (``repro lint --format``).

``text`` is the classic one-line-per-finding report — with ``--explain``
it also prints each interprocedural finding's witness chain, one
indented hop per line; ``json`` is a stable envelope for scripting
(diagnostics plus engine counters, so CI can assert cache
effectiveness); ``sarif`` is SARIF 2.1.0 — the interchange format
GitHub code scanning and most editors ingest.  The SARIF document
carries the full rule metadata table so viewers can render rule help
without the repo checked out, and every finding with a witness chain
gets a ``codeFlows`` entry naming each function from the flagged one to
the origin (the call-chain view in code-scanning UIs).
"""

from __future__ import annotations

import json
from typing import Any

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintReport
from repro.lint.registry import all_rules

__all__ = ["FORMATS", "render_report", "report_to_dict"]

FORMATS = ("text", "json", "sarif")

_TOOL_NAME = "reprolint"
_TOOL_VERSION = "4.0.0"
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_report(
    report: LintReport, fmt: str, explain: bool = False
) -> str:
    """Serialize a :class:`LintReport` as ``text``, ``json`` or ``sarif``.

    ``explain`` affects the text format only: findings carrying a
    witness chain print it below the report line.  JSON always embeds
    traces; SARIF always emits ``codeFlows``.
    """
    if fmt == "text":
        lines = []
        for d in report.diagnostics:
            lines.append(d.render())
            if explain and d.trace:
                lines.append("  call chain:")
                lines.extend(f"    {step.render()}" for step in d.trace)
        return "\n".join(lines)
    if fmt == "json":
        return json.dumps(_json_doc(report), indent=2, sort_keys=True)
    if fmt == "sarif":
        return json.dumps(_sarif_doc(report), indent=2)
    raise ValueError(f"unknown format {fmt!r}; choose from {FORMATS}")


def report_to_dict(report: LintReport) -> dict[str, Any]:
    """The ``--format json`` document as a plain dict — what the CLI
    embeds in its JSON envelope (``repro lint`` data payload)."""
    return _json_doc(report)


def _diag_dict(d: Diagnostic) -> dict[str, Any]:
    out: dict[str, Any] = {
        "path": d.path,
        "line": d.line,
        "col": d.col,
        "code": d.code,
        "name": d.name,
        "message": d.message,
    }
    if d.trace:
        out["trace"] = [
            {
                "path": s.path,
                "line": s.line,
                "col": s.col,
                "function": s.function,
                "note": s.note,
            }
            for s in d.trace
        ]
    return out


def _json_doc(report: LintReport) -> dict[str, Any]:
    return {
        "tool": _TOOL_NAME,
        "version": _TOOL_VERSION,
        "files": report.files,
        "parsed": report.parsed,
        "cached": report.cached,
        "project_reanalyzed": len(report.project_reanalyzed),
        "project_cached": len(report.project_cached),
        "suppressed": report.suppressed,
        "stale_baseline": list(report.stale_baseline),
        "diagnostics": [_diag_dict(d) for d in report.diagnostics],
    }


def _code_flows(d: Diagnostic) -> list[dict[str, Any]]:
    """SARIF codeFlows: one threadFlow tracing the witness chain."""
    locations = [
        {
            "location": {
                "physicalLocation": {
                    "artifactLocation": {"uri": step.path},
                    "region": {
                        "startLine": step.line,
                        "startColumn": max(step.col, 1),
                    },
                },
                "message": {
                    "text": f"{step.function}: {step.note}" if step.note
                    else step.function
                },
            }
        }
        for step in d.trace
    ]
    return [{"threadFlows": [{"locations": locations}]}]


def _sarif_doc(report: LintReport) -> dict[str, Any]:
    rules_meta = [
        {
            "id": "E0",
            "name": "parse-error",
            "shortDescription": {"text": "file cannot be read or parsed"},
            "defaultConfiguration": {"level": "error"},
        }
    ]
    for rule in all_rules():
        rules_meta.append(
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.description},
                "defaultConfiguration": {"level": "warning"},
            }
        )
    results = []
    for d in report.diagnostics:
        result: dict[str, Any] = {
            "ruleId": d.code,
            "level": "error" if d.code == "E0" else "warning",
            "message": {"text": f"[{d.name}] {d.message}"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": d.path},
                        "region": {
                            "startLine": d.line,
                            "startColumn": max(d.col, 1),
                        },
                    }
                }
            ],
        }
        if d.trace:
            result["codeFlows"] = _code_flows(d)
        results.append(result)
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "version": _TOOL_VERSION,
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }
