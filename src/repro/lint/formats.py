"""Machine-readable report formats (``repro lint --format``).

``text`` is the classic one-line-per-finding report; ``json`` is a
stable envelope for scripting (diagnostics plus engine counters, so CI
can assert cache effectiveness); ``sarif`` is SARIF 2.1.0 — the
interchange format GitHub code scanning and most editors ingest.  The
SARIF document carries the full rule metadata table so viewers can
render rule help without the repo checked out.
"""

from __future__ import annotations

import json
from typing import Any

from repro.lint.engine import LintReport
from repro.lint.registry import all_rules

__all__ = ["FORMATS", "render_report", "report_to_dict"]

FORMATS = ("text", "json", "sarif")

_TOOL_NAME = "reprolint"
_TOOL_VERSION = "3.0.0"
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_report(report: LintReport, fmt: str) -> str:
    """Serialize a :class:`LintReport` as ``text``, ``json`` or ``sarif``."""
    if fmt == "text":
        return "\n".join(d.render() for d in report.diagnostics)
    if fmt == "json":
        return json.dumps(_json_doc(report), indent=2, sort_keys=True)
    if fmt == "sarif":
        return json.dumps(_sarif_doc(report), indent=2)
    raise ValueError(f"unknown format {fmt!r}; choose from {FORMATS}")


def report_to_dict(report: LintReport) -> dict[str, Any]:
    """The ``--format json`` document as a plain dict — what the CLI
    embeds in its JSON envelope (``repro lint`` data payload)."""
    return _json_doc(report)


def _json_doc(report: LintReport) -> dict[str, Any]:
    return {
        "tool": _TOOL_NAME,
        "version": _TOOL_VERSION,
        "files": report.files,
        "parsed": report.parsed,
        "cached": report.cached,
        "diagnostics": [
            {
                "path": d.path,
                "line": d.line,
                "col": d.col,
                "code": d.code,
                "name": d.name,
                "message": d.message,
            }
            for d in report.diagnostics
        ],
    }


def _sarif_doc(report: LintReport) -> dict[str, Any]:
    rules_meta = [
        {
            "id": "E0",
            "name": "parse-error",
            "shortDescription": {"text": "file cannot be read or parsed"},
            "defaultConfiguration": {"level": "error"},
        }
    ]
    for rule in all_rules():
        rules_meta.append(
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.description},
                "defaultConfiguration": {"level": "warning"},
            }
        )
    results = [
        {
            "ruleId": d.code,
            "level": "error" if d.code == "E0" else "warning",
            "message": {"text": f"[{d.name}] {d.message}"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": d.path},
                        "region": {
                            "startLine": d.line,
                            "startColumn": max(d.col, 1),
                        },
                    }
                }
            ],
        }
        for d in report.diagnostics
    ]
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "version": _TOOL_VERSION,
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }
