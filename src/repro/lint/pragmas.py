"""Inline exemption pragmas.

Syntax, on the line the diagnostic is reported at::

    horizon = 60.0 * work  # reprolint: disable=R2  (60x factor, not MINUTE)

``disable=`` takes a comma-separated list of rule codes (``R2``) or
names (``unit-safety``); matching is case-insensitive.  ``disable=all``
silences every rule on that line.  Free-text justification may follow
the list (``# reprolint: disable=R2,R3 measured fast``) — only the
first whitespace-delimited token of each comma-separated chunk is a
rule key, so trailing words never silence extra rules by accident.

Pragmas are deliberately *narrow*: there is no file-level or
block-level form — an exemption covers exactly one line, so each one is
visible next to the code it excuses.  The one widening the engine
applies: a pragma written on a **decorator line** also covers the
``def``/``class`` line it decorates (diagnostics anchor on the ``def``
line, but the decorator is often where the offending mark lives), see
:func:`expand_decorator_pragmas`.

Two further directives feed the lock-discipline rule (R9) rather than
silencing anything::

    self._jobs = {}  # reprolint: guarded-by=_lock
    def stats(self):  # reprolint: single-threaded

``guarded-by=<attr>`` on an attribute assignment line *declares* the
attribute guarded by the named lock attribute (R9 then demands every
access happen under ``with self.<lock>:``); ``single-threaded`` on a
``def`` line documents a method as never called concurrently, exempting
its accesses from the discipline.

A third directive feeds the determinism rules (R1, R13)::

    t0 = time.perf_counter()  # reprolint: clock-ok=benchmark timing

``clock-ok=<reason>`` marks an ambient-state read on that line as
intentional: the call site stops being an R13 taint source (nothing
downstream inherits it) and R1 skips it too.
"""

from __future__ import annotations

import ast
import re

_PRAGMA_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\- ]+)")
_GUARDED_BY_RE = re.compile(r"#\s*reprolint:\s*guarded-by=([A-Za-z_]\w*)")
_SINGLE_THREADED_RE = re.compile(r"#\s*reprolint:\s*single-threaded\b")
_CLOCK_OK_RE = re.compile(r"#\s*reprolint:\s*clock-ok(?:=([^#]+))?")

ALL = "all"


def clock_ok_annotations(lines: list[str]) -> dict[int, str]:
    """Map 1-based line number -> justification of a ``clock-ok``
    annotation there.

    ``clock-ok`` declares an ambient-state read (wall clock, env,
    entropy) *intentional* — benchmark timing, log stamps — so the
    determinism rules (R1 call-site, R13 taint) leave that line alone.
    The justification after ``=`` is free text and may be empty.
    """
    out: dict[int, str] = {}
    for lineno, text in enumerate(lines, start=1):
        m = _CLOCK_OK_RE.search(text)
        if m is not None:
            out[lineno] = (m.group(1) or "").strip()
    return out


def guarded_by_annotations(lines: list[str]) -> dict[int, str]:
    """Map 1-based line number -> lock attribute named by a
    ``guarded-by=`` annotation on that line."""
    out: dict[int, str] = {}
    for lineno, text in enumerate(lines, start=1):
        m = _GUARDED_BY_RE.search(text)
        if m is not None:
            out[lineno] = m.group(1)
    return out


def single_threaded_lines(lines: list[str]) -> set[int]:
    """1-based line numbers carrying a ``single-threaded`` marker."""
    return {
        lineno
        for lineno, text in enumerate(lines, start=1)
        if _SINGLE_THREADED_RE.search(text)
    }


def parse_pragmas(lines: list[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> lowercased rule keys disabled there."""
    out: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        m = _PRAGMA_RE.search(text)
        if m is None:
            continue
        keys = set()
        for chunk in m.group(1).split(","):
            tokens = chunk.split()
            if not tokens:
                continue
            keys.add(tokens[0].lower())
            # everything after the first token of a chunk is free-text
            # justification; stop scanning this pragma's chunks once a
            # chunk carries trailing words (``disable=R2 measured fast``)
            if len(tokens) > 1:
                break
        if keys:
            out[lineno] = frozenset(keys)
    return out


def expand_decorator_pragmas(
    tree: ast.Module, pragmas: dict[int, frozenset[str]]
) -> dict[int, frozenset[str]]:
    """Extend pragmas written on decorator lines to the decorated
    ``def``/``class`` line, where diagnostics anchor."""
    if not pragmas:
        return pragmas
    out = dict(pragmas)
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if not node.decorator_list:
            continue
        gathered: set[str] = set()
        for dec in node.decorator_list:
            for lineno in range(dec.lineno, (dec.end_lineno or dec.lineno) + 1):
                gathered |= pragmas.get(lineno, frozenset())
        if gathered:
            out[node.lineno] = out.get(node.lineno, frozenset()) | gathered
    return out


def is_disabled(
    pragmas: dict[int, frozenset[str]], line: int, code: str, name: str
) -> bool:
    keys = pragmas.get(line)
    if not keys:
        return False
    return ALL in keys or code.lower() in keys or name.lower() in keys
