"""Inline exemption pragmas.

Syntax, on the line the diagnostic is reported at::

    horizon = 60.0 * work  # reprolint: disable=R2  (60x factor, not MINUTE)

``disable=`` takes a comma-separated list of rule codes (``R2``) or
names (``unit-safety``); matching is case-insensitive.  ``disable=all``
silences every rule on that line.  Pragmas are deliberately *narrow*:
there is no file-level or block-level form — an exemption covers exactly
one line, so each one is visible next to the code it excuses.
"""

from __future__ import annotations

import re

_PRAGMA_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\- ]+)")

ALL = "all"


def parse_pragmas(lines: list[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> lowercased rule keys disabled there."""
    out: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        m = _PRAGMA_RE.search(text)
        if m is None:
            continue
        keys = frozenset(
            k.strip().lower() for k in m.group(1).split(",") if k.strip()
        )
        if keys:
            out[lineno] = keys
    return out


def is_disabled(
    pragmas: dict[int, frozenset[str]], line: int, code: str, name: str
) -> bool:
    keys = pragmas.get(line)
    if not keys:
        return False
    return ALL in keys or code.lower() in keys or name.lower() in keys
