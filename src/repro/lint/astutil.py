"""Leaf AST helpers with no intra-package imports.

These sit below everything else in :mod:`repro.lint`: both the project
model and the rule implementations need dotted-name extraction, and
keeping it here (rather than in ``rules/``) means the model layer never
imports upward into the rules package — ``repro.lint.project`` is
importable on its own, in any order.
"""

from __future__ import annotations

import ast

__all__ = ["dotted_name", "call_name", "decorator_name"]


def dotted_name(node: ast.expr) -> str | None:
    """``np.random.default_rng`` -> that string; None for non-name exprs."""
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of the called expression, or None if not a name."""
    return dotted_name(node.func)


def decorator_name(node: ast.expr) -> str | None:
    """Dotted name of a decorator, unwrapping a trailing call:
    ``@pytest.mark.parametrize(...)`` -> ``pytest.mark.parametrize``."""
    if isinstance(node, ast.Call):
        return dotted_name(node.func)
    return dotted_name(node)
