"""Application of machine-generated fixes (``repro lint --fix``).

Only mechanical rewrites carry a
:class:`~repro.lint.diagnostics.Fix`: R2's unit-constant substitution
(``1200.0`` -> ``20 * MINUTE``, IEEE-exact by construction of
:mod:`repro.units`), R4's missing
``from __future__ import annotations`` insertion, R11's
``print(x)`` -> ``hlog(x)`` redirect (plus its import), and R12's
explicit ``daemon=False`` on ``Thread(...)`` calls.  Everything else
needs a human.

Per file the engine applies, in order: same-line span edits (bottom-up
so earlier spans stay valid), whole-line insertions, then any
``repro.units`` import the substitutions now require (merged into an
existing single-line import when present).  Applying fixes twice is a
no-op: the second lint pass no longer emits the diagnostics, so there
is nothing left to apply — the idempotency test asserts exactly that.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.diagnostics import Diagnostic, Edit

__all__ = ["apply_fixes"]

_UNITS_IMPORT_PREFIX = "from repro.units import "


def apply_fixes(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    """Apply every carried fix; returns ``{path: fixes_applied}``."""
    by_path: dict[str, list[Diagnostic]] = {}
    for d in diagnostics:
        if d.fix is not None:
            by_path.setdefault(d.path, []).append(d)
    applied: dict[str, int] = {}
    for path, diags in sorted(by_path.items()):
        n = _fix_file(Path(path), diags)
        if n:
            applied[path] = n
    return applied


def _fix_file(path: Path, diags: Sequence[Diagnostic]) -> int:
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return 0
    trailing_newline = source.endswith("\n")
    lines = source.splitlines()

    edits: list[Edit] = []
    inserts: list[tuple[int, str]] = []
    units_needed: set[str] = set()
    imports_needed: set[str] = set()
    count = 0
    for d in diags:
        fix = d.fix
        assert fix is not None
        if fix.edits:
            edits.extend(fix.edits)
        if fix.insert_line is not None:
            inserts.append(fix.insert_line)
        units_needed.update(fix.add_units_import)
        imports_needed.update(fix.add_imports)
        count += 1

    lines = _apply_edits(lines, edits)
    for lineno, text in sorted(inserts, reverse=True):
        at = min(max(lineno - 1, 0), len(lines))
        lines[at:at] = text.split("\n")
    if units_needed:
        lines = _ensure_units_import(lines, units_needed)
    for statement in sorted(imports_needed):
        lines = _ensure_import(lines, statement)

    new_source = "\n".join(lines) + ("\n" if trailing_newline else "")
    if new_source != source:
        path.write_text(new_source, encoding="utf-8")
        return count
    return 0


def _apply_edits(lines: list[str], edits: Sequence[Edit]) -> list[str]:
    """Apply span replacements right-to-left so columns stay valid;
    overlapping spans keep only the first (leftmost reported)."""
    by_line: dict[int, list[Edit]] = {}
    for e in edits:
        by_line.setdefault(e.line, []).append(e)
    for lineno, line_edits in by_line.items():
        if lineno < 1 or lineno > len(lines):
            continue
        line = lines[lineno - 1]
        taken: list[tuple[int, int]] = []
        for e in sorted(line_edits, key=lambda e: e.col, reverse=True):
            if e.end_col > len(line) or e.col >= e.end_col:
                continue
            if any(e.col < hi and e.end_col > lo for lo, hi in taken):
                continue
            line = line[: e.col] + e.text + line[e.end_col :]
            taken.append((e.col, e.end_col))
        lines[lineno - 1] = line
    return lines


def _ensure_units_import(lines: list[str], needed: set[str]) -> list[str]:
    """Guarantee ``from repro.units import <needed>`` resolves."""
    for i, line in enumerate(lines):
        stripped = line.strip()
        if stripped.startswith(_UNITS_IMPORT_PREFIX) and "(" not in stripped:
            names = {n.strip() for n in stripped[len(_UNITS_IMPORT_PREFIX):].split(",")}
            missing = needed - names
            if not missing:
                return lines
            merged = sorted(names | needed)
            indent = line[: len(line) - len(line.lstrip())]
            lines[i] = indent + _UNITS_IMPORT_PREFIX + ", ".join(merged)
            return lines
    at = _import_insert_index(lines)
    lines[at:at] = [_UNITS_IMPORT_PREFIX + ", ".join(sorted(needed))]
    return lines


def _ensure_import(lines: list[str], statement: str) -> list[str]:
    """Guarantee the import ``statement`` appears in the file (matched
    on the stripped line, so an existing import is never duplicated)."""
    wanted = statement.strip()
    for line in lines:
        if line.strip() == wanted:
            return lines
    at = _import_insert_index(lines)
    lines[at:at] = [wanted]
    return lines


def _import_insert_index(lines: list[str]) -> int:
    """0-based index where a new import belongs: after the future
    import when present, else after the module docstring."""
    for i, line in enumerate(lines):
        if line.startswith("from __future__ import"):
            return i + 1
    in_doc = False
    quote = ""
    for i, line in enumerate(lines):
        stripped = line.strip()
        if not in_doc:
            if not stripped or stripped.startswith("#"):
                continue
            if stripped[:3] in ('"""', "'''"):
                quote = stripped[:3]
                if stripped.count(quote) >= 2 and len(stripped) > 3:
                    return i + 1  # one-line docstring
                in_doc = True
                continue
            return i  # first code line, no docstring
        if quote in stripped:
            return i + 1
    return 0
