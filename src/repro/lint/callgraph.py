"""The resolved project-wide call graph.

Built over a :class:`~repro.lint.project.ProjectModel`, one node per
project function (fully-qualified id), with two edge kinds:

- ``"call"`` — a call site whose callee resolves (through the model's
  import/re-export chasing, class-aware ``self`` resolution, and
  one-level ``self.<attr>`` receiver types) to a project function;
- ``"ref"`` — a function *reference* passed as an argument
  (``executor.map(fn, ...)``, ``Thread(target=self._worker)``): the
  callee runs the target later, so taint flows but control does not
  return through the caller's exception guards.

Each edge carries the call site's location plus its **guard category**
(the strongest enclosing ``try`` of the site: ``""`` < ``"narrow"`` <
``"oserror"`` < ``"broad"``) so the exception-contract analysis can
stop propagation at converted boundaries.  Calls that resolve to names
*outside* the project (``time.time``, ``os.getenv``) are kept per
caller in :attr:`CallGraph.external` — the determinism-taint rule's
source set lives there.

The graph also derives the **module dependency map** the incremental
cache keys interprocedural results on: module M's diagnostics depend
only on the modules its functions transitively reach (plus every
package ``__init__``, whose re-export bindings steer resolution), so a
changed leaf invalidates exactly its transitive callers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lint.dataflow import Edge

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.project import CallSite, ProjectModel

__all__ = ["CallEdge", "CallGraph", "build_call_graph"]

#: Callables whose ``target=`` keyword receives a function the callee
#: will invoke on another thread.
_THREAD_CTORS = frozenset({"Thread", "Timer"})


class CallEdge:
    """One resolved edge of the call graph."""

    __slots__ = ("caller", "callee", "lineno", "col", "kind", "guard")

    def __init__(
        self,
        caller: str,
        callee: str,
        lineno: int,
        col: int,
        kind: str,
        guard: str,
    ) -> None:
        self.caller = caller
        self.callee = callee
        self.lineno = lineno
        self.col = col
        self.kind = kind  # "call" | "ref"
        self.guard = guard  # "" | "narrow" | "oserror" | "broad"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CallEdge({self.caller} -> {self.callee} "
            f"@{self.lineno} {self.kind}/{self.guard or 'unguarded'})"
        )


class CallGraph:
    """Nodes (function fqids), resolved edges, and external resolutions."""

    def __init__(self, model: "ProjectModel") -> None:
        self.model = model
        #: caller fqid -> outgoing edges (calls then refs, source order)
        self.out: dict[str, list[CallEdge]] = {}
        #: caller fqid -> [(call site, resolved external dotted name)]
        self.external: dict[str, list[tuple["CallSite", str]]] = {}
        #: functions handed to Thread(target=...) — service entry points
        self.thread_targets: set[str] = set()
        self._build()

    # -- construction --------------------------------------------------

    def _build(self) -> None:
        model = self.model
        for mod, fn in model.functions():
            caller = f"{mod.module}.{fn.qualname}"
            edges: list[CallEdge] = []
            externals: list[tuple["CallSite", str]] = []
            for call in fn.calls:
                target = model.resolve_in(mod, fn, call.callee)
                if target is not None:
                    if model.function(target) is not None:
                        edges.append(
                            CallEdge(
                                caller, target, call.lineno, call.col,
                                "call", call.guard,
                            )
                        )
                    else:
                        externals.append((call, target))
                self._reference_edges(mod, fn, caller, call, edges)
            if edges:
                self.out[caller] = edges
            if externals:
                self.external[caller] = externals

    def _reference_edges(self, mod, fn, caller, call, edges) -> None:
        """Function references in argument position become ``ref`` edges
        (and ``Thread(target=...)`` targets are indexed as entry points)."""
        model = self.model
        is_thread = call.callee.split(".")[-1] in _THREAD_CTORS
        for key, arg in (
            *((None, a) for a in call.args),
            *call.keywords,
        ):
            if arg.kind != "name" or not arg.dotted:
                continue
            ref = model.resolve_in(mod, fn, arg.dotted)
            if ref is None or model.function(ref) is None:
                continue
            edges.append(
                CallEdge(caller, ref, call.lineno, call.col, "ref", call.guard)
            )
            if is_thread and key == "target":
                self.thread_targets.add(ref)

    # -- views ---------------------------------------------------------

    def successors(self, fqid: str) -> list[CallEdge]:
        """Outgoing resolved edges of one function (empty if none)."""
        return self.out.get(fqid, [])

    def edge_map(
        self, kinds: frozenset[str] = frozenset({"call", "ref"})
    ) -> dict[str, list[Edge]]:
        """Edges as :mod:`repro.lint.dataflow` tuples, filtered by kind;
        the opaque tag carries the guard category."""
        return {
            caller: [
                (e.callee, e.lineno, e.col, e.guard)
                for e in edges
                if e.kind in kinds
            ]
            for caller, edges in self.out.items()
        }

    def iter_edges(self) -> Iterator[CallEdge]:
        """Every resolved edge in the graph, in caller order."""
        for edges in self.out.values():
            yield from edges

    # -- module dependencies (for the incremental cache) ---------------

    def module_dependencies(self) -> dict[str, set[str]]:
        """Module -> modules its interprocedural results depend on:
        the modules of every transitively reachable function, plus all
        package ``__init__`` modules (their re-exports steer resolution
        everywhere).  The module itself is excluded (its own content
        digest already keys the cache entry)."""
        model = self.model
        module_of = {
            f"{mod.module}.{fn.qualname}": mod.module
            for mod, fn in model.functions()
        }
        direct: dict[str, set[str]] = {name: set() for name in model.modules}
        for edge in self.iter_edges():
            src = module_of[edge.caller]
            dst = module_of[edge.callee]
            if src != dst:
                direct[src].add(dst)
        # transitive closure by BFS per module (the graph is small)
        closure: dict[str, set[str]] = {}
        for name in model.modules:
            seen: set[str] = set()
            frontier = list(direct.get(name, ()))
            while frontier:
                dep = frontier.pop()
                if dep in seen:
                    continue
                seen.add(dep)
                frontier.extend(direct.get(dep, ()))
            seen.discard(name)
            closure[name] = seen
        packages = {
            name
            for name, mod in model.modules.items()
            if mod.path.endswith("/__init__.py") or mod.path == "__init__.py"
        }
        for name, deps in closure.items():
            deps.update(packages - {name})
        return closure


def build_call_graph(model: "ProjectModel") -> CallGraph:
    """Construct (and return) the resolved call graph of ``model``."""
    return CallGraph(model)
