"""reprolint — domain-aware static analysis for this reproduction.

The repo's headline guarantees (bit-identical serial/parallel runs via
``SeedSequence([seed, i])``, paper-faithful arithmetic in seconds) are
invariants no general-purpose linter knows about.  ``reprolint`` encodes
them as machine-checked rules — per-file AST rules plus whole-program
flow rules over a cross-module semantic model
(:mod:`repro.lint.project`):

- **R1 determinism** — no legacy ``np.random.*`` samplers, no stdlib
  ``random``, no wall-clock reads in ``simulation/``/``core/`` hot
  paths; trace-generating calls must thread an explicit seed.
- **R2 unit-safety** — time-valued positions must use ``repro.units``
  constants instead of bare 60/3600/86400 multiples, and time parameter
  names must follow the seconds convention (autofixable via ``--fix``).
- **R3 float-eq** — no ``==``/``!=`` against float literals outside
  approved tolerance helpers.
- **R4 api-hygiene** — no mutable default arguments, no bare ``except``
  or swallowed ``Exception``; modules carry the future-annotations
  import (autofixable via ``--fix``).
- **R5 test-discipline** — expensive DP/integration tests must carry
  ``@pytest.mark.slow``.
- **R6 seed-flow** *(whole-program)* — seed/rng parameters must thread
  unbroken from public entry points down to ``Distribution.sample``;
  dropped or shadowed seed chains are flagged.
- **R7 unit-propagation** *(whole-program)* — arguments flowing into
  time-valued parameters across module boundaries must be seconds.
- **R8 registry-conformance** *(whole-program)* — the ten paper
  policies must agree across the policy registry, the CLI, the
  experiment tables, the runner constants, and EXPERIMENTS.md.

Run via ``repro lint [paths]`` (``--fix``, ``--format json|sarif``,
``--jobs N``, incremental ``.reprolint-cache/``) or :func:`lint_paths`
/ :func:`run_lint`.  Exemptions are inline pragmas:
``# reprolint: disable=R2`` (see docs/development.md).
"""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic, Edit, Fix
from repro.lint.engine import (
    FileContext,
    LintReport,
    format_diagnostic,
    lint_file,
    lint_paths,
    run_lint,
)
from repro.lint.registry import LintRule, all_rules, get_rule, register

__all__ = [
    "Diagnostic",
    "Edit",
    "FileContext",
    "Fix",
    "LintReport",
    "LintRule",
    "all_rules",
    "format_diagnostic",
    "get_rule",
    "lint_file",
    "lint_paths",
    "register",
    "run_lint",
]
