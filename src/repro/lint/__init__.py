"""reprolint — domain-aware static analysis for this reproduction.

The repo's headline guarantees (bit-identical serial/parallel runs via
``SeedSequence([seed, i])``, paper-faithful arithmetic in seconds) are
invariants no general-purpose linter knows about.  ``reprolint`` encodes
them as machine-checked AST rules:

- **R1 determinism** — no legacy ``np.random.*`` samplers, no stdlib
  ``random``, no wall-clock reads in ``simulation/``/``core/`` hot
  paths; trace-generating calls must thread an explicit seed.
- **R2 unit-safety** — time-valued positions must use ``repro.units``
  constants instead of bare 60/3600/86400 multiples, and time parameter
  names must follow the seconds convention.
- **R3 float-eq** — no ``==``/``!=`` against float literals outside
  approved tolerance helpers.
- **R4 api-hygiene** — no mutable default arguments, no bare ``except``
  or swallowed ``Exception``.
- **R5 test-discipline** — expensive DP/integration tests must carry
  ``@pytest.mark.slow``.

Run via ``repro lint [paths]`` or :func:`lint_paths`.  Exemptions are
inline pragmas: ``# reprolint: disable=R2`` (see docs/development.md).
"""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext, format_diagnostic, lint_file, lint_paths
from repro.lint.registry import LintRule, all_rules, get_rule, register

__all__ = [
    "Diagnostic",
    "FileContext",
    "LintRule",
    "all_rules",
    "format_diagnostic",
    "get_rule",
    "lint_file",
    "lint_paths",
    "register",
]
