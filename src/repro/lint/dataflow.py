"""Reusable dataflow machinery for the lint analyses.

Two layers of the engine ask the same shape of question:

- **intraprocedural** — R11's "(min, max) envelope emissions over every
  path" is a forward monotone fixpoint over one function's CFG blocks
  (:func:`forward_fixpoint`, extracted from the original
  ``cfg.emission_bounds`` loop so other block analyses can reuse it);
- **interprocedural** — R13/R15's "which functions transitively reach a
  tainted source / leak an exception" are reachability problems over
  the project call graph.  :func:`reach_summaries` computes per-function
  summaries bottom-up over the strongly connected components of that
  graph (:func:`strongly_connected_components`, iterative Tarjan), so
  each function is summarized after everything it calls — recursion
  cycles are iterated to a local fixpoint inside their SCC.

Summaries carry a *witness* per reached label (:class:`Hop`: the next
function on a chain and the call site that takes you there), which is
what lets ``--explain`` and SARIF ``codeFlows`` reconstruct the full
source→sink chain (:func:`witness_chain`) without storing whole paths.

Everything here is graph-shape-agnostic plain data: nodes are strings,
edges are ``(target, line, col, tag)`` tuples where ``tag`` is opaque
to this module (the exception-contract analysis passes try/except guard
categories through it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = [
    "Hop",
    "forward_fixpoint",
    "reach_summaries",
    "strongly_connected_components",
    "witness_chain",
]

#: An interprocedural edge as consumed by :func:`reach_summaries`:
#: (target node, line, col, opaque tag).
Edge = tuple[str, int, int, Any]


def forward_fixpoint(
    n_nodes: int,
    edges: Iterable[tuple[int, int]],
    entry: int,
    entry_fact: Any,
    transfer: Callable[[int, Any], Any],
    merge: Callable[[Any, Any], Any],
) -> list[Any]:
    """Forward monotone fixpoint over a small integer-indexed digraph.

    ``transfer(node, fact_at_entry)`` produces the fact at the node's
    *exit*; ``merge`` joins facts arriving over different edges.  Facts
    must form a finite (or saturating) lattice with ``==`` equality —
    iteration runs until nothing changes.  Returns the fact at each
    node's entry (``None`` for unreachable nodes).
    """
    preds: dict[int, list[int]] = {}
    for src, dst in edges:
        preds.setdefault(dst, []).append(src)
    facts: list[Any] = [None] * n_nodes
    facts[entry] = entry_fact
    changed = True
    while changed:
        changed = False
        for node in range(n_nodes):
            merged = facts[node] if node != entry else entry_fact
            for p in preds.get(node, ()):
                if facts[p] is None:
                    continue
                out = transfer(p, facts[p])
                merged = out if merged is None else merge(merged, out)
            if merged != facts[node]:
                facts[node] = merged
                changed = True
    return facts


def strongly_connected_components(
    nodes: Iterable[str],
    successors: Mapping[str, Sequence[Edge]],
) -> list[list[str]]:
    """Tarjan's SCCs, iterative (lint trees exceed the recursion limit).

    Components come out in **reverse topological order** of the
    condensation — every component before the components that call into
    it — which is exactly the order bottom-up summary computation needs.
    """
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        # each frame: (node, iterator over successor targets)
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, i = work.pop()
            if i == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            succ = successors.get(node, ())
            advanced = False
            while i < len(succ):
                target = succ[i][0]
                i += 1
                if target not in index:
                    work.append((node, i))
                    work.append((target, 0))
                    advanced = True
                    break
                if target in on_stack:
                    lowlink[node] = min(lowlink[node], index[target])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


@dataclass(frozen=True)
class Hop:
    """One step of a witness chain.

    ``target`` is the next function on the chain (``None`` when the
    labelled fact originates in the summarized function itself);
    ``line``/``col`` anchor the call site — or, for an origin, the
    source expression — inside the summarized function.
    """

    target: str | None
    line: int
    col: int


def reach_summaries(
    successors: Mapping[str, Sequence[Edge]],
    sources: Mapping[str, Mapping[str, Hop]],
    propagate: Callable[[str, Any], bool] | None = None,
) -> dict[str, dict[str, Hop]]:
    """Per-function reachability summaries, bottom-up over SCCs.

    ``sources[fn][label]`` seeds function ``fn`` as an origin of
    ``label``; the result maps every function to the labels it can
    transitively reach through ``successors`` edges, each with the
    :class:`Hop` that witnesses the first step of a shortest-discovered
    chain.  ``propagate(label, tag)`` (when given) filters propagation
    per edge — the exception-contract rule uses it to stop labels at
    guarded call sites.  Within an SCC the transfer is iterated to a
    local fixpoint, so recursion converges.
    """
    summary: dict[str, dict[str, Hop]] = {}
    node_set: set[str] = set(successors)
    for edges in successors.values():
        node_set.update(e[0] for e in edges)
    node_set.update(sources)
    for node in node_set:
        summary[node] = dict(sources.get(node, {}))

    for component in strongly_connected_components(sorted(node_set), successors):
        changed = True
        while changed:
            changed = False
            for node in component:
                mine = summary[node]
                for target, line, col, tag in successors.get(node, ()):
                    theirs = summary.get(target)
                    if not theirs:
                        continue
                    for label in theirs:
                        if label in mine:
                            continue
                        if propagate is not None and not propagate(label, tag):
                            continue
                        mine[label] = Hop(target, line, col)
                        changed = True
    return summary


def witness_chain(
    summary: Mapping[str, Mapping[str, Hop]], start: str, label: str
) -> list[tuple[str, int, int]]:
    """Reconstruct a chain for ``label`` from ``start``'s summary.

    Returns ``[(function, line, col), ...]`` where each line/col is the
    call site *inside* that function leading one hop closer to the
    origin; the final entry is the origin function with the source
    expression's location.  Empty when ``start`` does not reach
    ``label``.
    """
    steps: list[tuple[str, int, int]] = []
    seen: set[str] = set()
    node: str | None = start
    while node is not None and node not in seen:
        seen.add(node)
        hop = summary.get(node, {}).get(label)
        if hop is None:
            break
        steps.append((node, hop.line, hop.col))
        node = hop.target
    return steps
