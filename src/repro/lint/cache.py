"""Content-hash incremental cache for the lint engine.

Linting is a pure function of (file content, active rules, rule
implementations), so re-linting an unchanged tree under an unchanged
selection should cost file hashing, not re-parsing.  Each linted file
gets one JSON entry under ``.reprolint-cache/`` keyed by the SHA-256 of
its *path* and validated by the SHA-256 of its *content* plus a
rule-set signature:

- the signature covers the **active selection** (``--select R2,R9``
  and a full run produce different signatures, because the stored
  diagnostics genuinely differ) and each selected rule's **source
  hash**, so editing a rule module invalidates exactly the runs that
  use it — no stale diagnostics from an old implementation;
- the file's :class:`~repro.lint.project.ModuleInfo` summary and its
  pragma map are stored alongside, so the whole-program pass (R6-R8,
  R11) can rebuild its model with **zero re-parses** on a warm cache;
- the interprocedural pass (R13-R15) keeps one extra record per rule
  signature (``project-<sig>.json``) holding each module's diagnostics
  keyed on the content digests of every module its call-graph analysis
  depended on — so editing a leaf callee re-lints exactly that module
  and its transitive callers, nothing else.

The cache directory is safe to delete at any time.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import sys
from pathlib import Path
from typing import Any, Iterable

from repro.lint.diagnostics import Diagnostic, TraceStep

__all__ = ["LintCache", "default_cache_dir", "rules_signature"]

# Bump when the engine's record layout or semantics change.
_ENGINE_VERSION = 4

_CACHE_DIR_NAME = ".reprolint-cache"


def default_cache_dir() -> Path:
    """``$REPROLINT_CACHE_DIR`` or ``.reprolint-cache`` under the CWD."""
    env = os.environ.get("REPROLINT_CACHE_DIR")
    return Path(env) if env else Path.cwd() / _CACHE_DIR_NAME


def _rule_source(rule: Any) -> str:
    """Source text of the module defining ``rule`` — the true input to
    its behavior, helpers included.  Falls back to the description for
    rules whose source is unretrievable (REPL-defined, frozen)."""
    module = sys.modules.get(type(rule).__module__)
    if module is not None:
        try:
            return inspect.getsource(module)
        except (OSError, TypeError):
            pass
    return str(rule.description)


def rules_signature(rules: Iterable[Any] | None = None) -> str:
    """Digest over the active rules' identities and source hashes.

    ``rules`` is the resolved selection (default: every registered
    rule).  Two runs share cache entries only when they agree on which
    rules run *and* on those rules' implementations.
    """
    if rules is None:
        from repro.lint.registry import all_rules

        rules = all_rules()
    parts = []
    for r in sorted(rules, key=lambda r: (len(r.code), r.code)):
        src = hashlib.sha256(_rule_source(r).encode()).hexdigest()[:16]
        parts.append(f"{r.code}:{r.name}:{src}")
    payload = "|".join(parts)
    digest = hashlib.sha256(f"v{_ENGINE_VERSION}|{payload}".encode()).hexdigest()
    return digest[:16]


def content_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class LintCache:
    """One-file-per-entry JSON cache under ``cache_dir``."""

    def __init__(
        self,
        cache_dir: Path | None = None,
        enabled: bool = True,
        rules: Iterable[Any] | None = None,
    ):
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.enabled = enabled
        self._signature = rules_signature(rules) if enabled else ""

    def bind_rules(self, rules: Iterable[Any] | None) -> None:
        """Re-key the cache to the active selection: entries written
        under a different selection (or different rule source) stop
        loading and are rewritten on the next store."""
        if self.enabled:
            self._signature = rules_signature(rules)

    def _entry_path(self, path: Path) -> Path:
        key = hashlib.sha256(path.resolve().as_posix().encode()).hexdigest()
        return self.cache_dir / f"{key[:32]}.json"

    def load(self, path: Path, digest: str) -> dict[str, Any] | None:
        """The stored record for ``path`` if it matches ``digest``."""
        if not self.enabled:
            return None
        entry = self._entry_path(path)
        try:
            data = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (
            data.get("signature") != self._signature
            or data.get("digest") != digest
        ):
            return None
        return data

    def store(self, path: Path, digest: str, record: dict[str, Any]) -> None:
        """Persist ``record`` for ``path`` at ``digest`` (best-effort)."""
        if not self.enabled:
            return
        record = dict(record)
        record["signature"] = self._signature
        record["digest"] = digest
        record["path"] = path.as_posix()
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            entry = self._entry_path(path)
            tmp = entry.with_suffix(".tmp")
            tmp.write_text(
                json.dumps(record, separators=(",", ":")), encoding="utf-8"
            )
            tmp.replace(entry)
        except OSError:
            pass  # caching is best-effort; linting still succeeds

    # -- the interprocedural (project-pass) record ----------------------

    def _project_path(self) -> Path:
        return self.cache_dir / f"project-{self._signature}.json"

    def load_project(self) -> dict[str, Any] | None:
        """The stored interprocedural record for this rule signature.

        Shape: ``{"modules": {module: {"digest": ..., "deps":
        {module: digest}, "diags": [...]}}}`` — per-module diagnostics
        of the call-graph rules, each keyed on the digests of every
        module its analysis depended on (see
        ``CallGraph.module_dependencies``)."""
        if not self.enabled:
            return None
        try:
            return json.loads(
                self._project_path().read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return None

    def store_project(self, record: dict[str, Any]) -> None:
        """Persist the interprocedural record (best-effort)."""
        if not self.enabled:
            return
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            entry = self._project_path()
            tmp = entry.with_suffix(".tmp")
            tmp.write_text(
                json.dumps(record, separators=(",", ":")), encoding="utf-8"
            )
            tmp.replace(entry)
        except OSError:
            pass


def diagnostic_to_json(diag: Diagnostic) -> dict[str, Any]:
    out = {
        "path": diag.path,
        "line": diag.line,
        "col": diag.col,
        "code": diag.code,
        "name": diag.name,
        "message": diag.message,
    }
    if diag.trace:
        out["trace"] = [
            {
                "path": s.path,
                "line": s.line,
                "col": s.col,
                "function": s.function,
                "note": s.note,
            }
            for s in diag.trace
        ]
    return out


def diagnostic_from_json(data: dict[str, Any]) -> Diagnostic:
    return Diagnostic(
        path=data["path"],
        line=data["line"],
        col=data["col"],
        code=data["code"],
        name=data["name"],
        message=data["message"],
        trace=tuple(TraceStep(**s) for s in data.get("trace", [])),
    )
