"""Interprocedural analyses shared by the flow rules R13-R15.

One :class:`InterAnalysis` is built per ``run_lint`` invocation (when
any interprocedural rule is selected) and handed to each rule's
``check_module``.  It owns the resolved call graph and computes, lazily
and once:

- **determinism taint** — per function, the ambient-state sources
  (wall clock, environment, entropy, legacy ``random``) it transitively
  reaches, with witness hops (R13).  The seeded
  ``np.random.default_rng``/``SeedSequence`` plumbing is not a source —
  that is the carve-out the whole reproduction is built on — and a
  source call site annotated ``# reprolint: clock-ok=<reason>`` is
  excluded before propagation;
- **kernel reachability** — whether a function drives any kernel
  (a function defined under ``core/``, ``simulation/`` or ``traces/``);
- **exception leaks** — per function, the unguarded ``raise``
  statements and raise-prone socket writes it can propagate to a
  caller, stopping at broad ``except`` boundaries (R15).

Witness hops reconstruct full chains as :class:`TraceStep` tuples for
``--explain`` and SARIF ``codeFlows``.
"""

from __future__ import annotations

from pathlib import PurePosixPath
from typing import TYPE_CHECKING

from repro.lint.callgraph import CallGraph, build_call_graph
from repro.lint.dataflow import Hop, reach_summaries, witness_chain
from repro.lint.diagnostics import TraceStep

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.project import CallSite, FunctionInfo, ModuleInfo, ProjectModel

__all__ = ["InterAnalysis", "KERNEL_SEGMENTS", "classify_source"]

#: Directory components that mark the deterministic kernel tier.
KERNEL_SEGMENTS = frozenset({"core", "simulation", "traces"})

#: Resolved external names that make results depend on ambient state,
#: mapped to the kind of state they read.
_SOURCES = {
    "time.time": "wall-clock",
    "time.time_ns": "wall-clock",
    "time.monotonic": "wall-clock",
    "time.monotonic_ns": "wall-clock",
    "time.perf_counter": "wall-clock",
    "time.perf_counter_ns": "wall-clock",
    "time.process_time": "wall-clock",
    "time.process_time_ns": "wall-clock",
    "datetime.datetime.now": "wall-clock",
    "datetime.datetime.utcnow": "wall-clock",
    "datetime.datetime.today": "wall-clock",
    "datetime.date.today": "wall-clock",
    "os.environ.get": "environment",
    "os.getenv": "environment",
    "os.getenvb": "environment",
    "os.urandom": "entropy",
    "uuid.uuid1": "entropy",
    "uuid.uuid4": "entropy",
    "secrets.token_bytes": "entropy",
    "secrets.token_hex": "entropy",
    "secrets.token_urlsafe": "entropy",
}

#: Dotted-name segments that identify raise-prone client-socket I/O
#: (BaseHTTPRequestHandler surfaces) for the leak analysis.
_SOCKET_ATTRS = frozenset({"wfile", "rfile"})
_SOCKET_TAILS = frozenset(
    {"send_response", "send_header", "end_headers", "send_error"}
)


def classify_source(resolved: str) -> str | None:
    """The ambient-state kind of a resolved external name, or None.

    Legacy stdlib ``random.*`` counts (global hidden state); numpy's
    explicit-seed API (``default_rng``, ``SeedSequence``, Generator
    methods) deliberately does not.
    """
    kind = _SOURCES.get(resolved)
    if kind is not None:
        return kind
    if resolved == "random" or resolved.startswith("random."):
        return "legacy-random"
    return None


def _is_socket_write(resolved: str) -> bool:
    parts = resolved.split(".")
    if _SOCKET_ATTRS & set(parts):
        return True
    return parts[0] == "self" and parts[-1] in _SOCKET_TAILS


def is_test_module(mod: "ModuleInfo") -> bool:
    name = PurePosixPath(mod.path).name
    return name.startswith("test_") or name == "conftest.py"


def in_kernel_tier(mod: "ModuleInfo") -> bool:
    """True for modules under a ``core``/``simulation``/``traces`` dir."""
    return bool(KERNEL_SEGMENTS & set(PurePosixPath(mod.path).parts[:-1]))


class InterAnalysis:
    """Lazily-computed interprocedural facts over one project model."""

    def __init__(self, model: "ProjectModel") -> None:
        self.model = model
        self.graph: CallGraph = build_call_graph(model)
        self._taint: dict[str, dict[str, Hop]] | None = None
        self._kernel: dict[str, dict[str, Hop]] | None = None
        self._leaks: dict[str, dict[str, Hop]] | None = None

    # -- determinism taint (R13) ---------------------------------------

    def direct_sources(
        self, mod: "ModuleInfo", fn: "FunctionInfo"
    ) -> list[tuple["CallSite", str, str]]:
        """Ambient-state reads written directly in ``fn``:
        ``(call site, resolved name, kind)``, clock-ok sites excluded."""
        fqid = f"{mod.module}.{fn.qualname}"
        out = []
        for site, resolved in self.graph.external.get(fqid, ()):
            kind = classify_source(resolved)
            if kind is None or site.lineno in mod.clock_ok:
                continue
            out.append((site, resolved, kind))
        return out

    def taint_summary(self) -> dict[str, dict[str, Hop]]:
        """fqid -> {source name -> witness hop} over call+ref edges."""
        if self._taint is None:
            sources: dict[str, dict[str, Hop]] = {}
            for mod, fn in self.model.functions():
                fqid = f"{mod.module}.{fn.qualname}"
                for site, resolved, _kind in self.direct_sources(mod, fn):
                    sources.setdefault(fqid, {}).setdefault(
                        resolved, Hop(None, site.lineno, site.col)
                    )
            self._taint = reach_summaries(self.graph.edge_map(), sources)
        return self._taint

    def taints(self, fqid: str) -> dict[str, Hop]:
        """Ambient-state sources ``fqid`` reaches, with witness hops."""
        return self.taint_summary().get(fqid, {})

    # -- kernel reachability -------------------------------------------

    _KERNEL_LABEL = "kernel"

    def kernel_summary(self) -> dict[str, dict[str, Hop]]:
        """fqid -> {"kernel": witness hop} for kernel-reaching code."""
        if self._kernel is None:
            sources = {
                f"{mod.module}.{fn.qualname}": {
                    self._KERNEL_LABEL: Hop(None, fn.lineno, fn.col)
                }
                for mod, fn in self.model.functions()
                if in_kernel_tier(mod) and not fn.is_test
            }
            self._kernel = reach_summaries(self.graph.edge_map(), sources)
        return self._kernel

    def reaches_kernel(self, fqid: str) -> str | None:
        """The first kernel function on a chain from ``fqid`` (its own
        fqid when the function *is* a kernel), or None."""
        if self._KERNEL_LABEL not in self.kernel_summary().get(fqid, {}):
            return None
        chain = witness_chain(self.kernel_summary(), fqid, self._KERNEL_LABEL)
        return chain[-1][0] if chain else None

    # -- exception leaks (R15) -----------------------------------------

    def leak_summary(self) -> dict[str, dict[str, Hop]]:
        """fqid -> {leak label -> witness hop} over *call* edges only
        (a reference runs on another thread: the creator's guards do
        not see its exceptions — the target is its own entry point).

        Labels are ``raise:<origin fqid>`` for explicit unguarded
        ``raise`` statements and ``io:<origin fqid>`` for unguarded
        client-socket writes.  Propagation stops at ``broad`` guards for
        every label and at ``oserror`` guards for ``io:`` labels.
        """
        if self._leaks is None:
            sources: dict[str, dict[str, Hop]] = {}
            for mod, fn in self.model.functions():
                fqid = f"{mod.module}.{fn.qualname}"
                seeds: dict[str, Hop] = {}
                if fn.raises:
                    seeds[f"raise:{fqid}"] = Hop(None, fn.raises[0], 0)
                # socket writes are matched on the callee *as written*
                # (``self.wfile.write`` never resolves to a project
                # function, so it is invisible to the call graph)
                for site in fn.calls:
                    if site.guard in ("broad", "oserror"):
                        continue
                    if _is_socket_write(site.callee):
                        seeds.setdefault(
                            f"io:{fqid}", Hop(None, site.lineno, site.col)
                        )
                if seeds:
                    sources[fqid] = seeds

            def propagate(label: str, guard: object) -> bool:
                if guard == "broad":
                    return False
                if guard == "oserror" and label.startswith("io:"):
                    return False
                return True

            self._leaks = reach_summaries(
                self.graph.edge_map(frozenset({"call"})), sources, propagate
            )
        return self._leaks

    def leaks(self, fqid: str) -> dict[str, Hop]:
        """Exception-leak labels reachable from ``fqid``, with hops."""
        return self.leak_summary().get(fqid, {})

    # -- trace reconstruction ------------------------------------------

    def trace(
        self,
        summary: dict[str, dict[str, Hop]],
        start: str,
        label: str,
        origin_note: str,
    ) -> tuple[TraceStep, ...]:
        """A chain from ``start`` to ``label``'s origin as trace steps."""
        chain = witness_chain(summary, start, label)
        steps: list[TraceStep] = []
        for i, (fqid, line, col) in enumerate(chain):
            located = self.model.function(fqid)
            path = located[0].path if located else ""
            if i + 1 < len(chain):
                note = f"calls {chain[i + 1][0].rsplit('.', 1)[-1]}()"
            else:
                note = origin_note
            steps.append(
                TraceStep(
                    path=path, line=line, col=col + 1, function=fqid, note=note
                )
            )
        return tuple(steps)

    def taint_trace(self, start: str, source: str) -> tuple[TraceStep, ...]:
        """Witness chain from ``start`` to a taint ``source`` read."""
        return self.trace(
            self.taint_summary(), start, source, f"reads {source}()"
        )

    def leak_trace(self, start: str, label: str) -> tuple[TraceStep, ...]:
        """Witness chain from an entry point to a leak origin."""
        note = (
            "raises here with no converting handler"
            if label.startswith("raise:")
            else "writes the client socket unguarded (OSError escapes)"
        )
        return self.trace(self.leak_summary(), start, label, note)

    def kernel_trace(self, start: str) -> tuple[TraceStep, ...]:
        """Witness chain from ``start`` down into the kernel tier."""
        return self.trace(
            self.kernel_summary(), start, self._KERNEL_LABEL,
            "kernel function",
        )

    # -- cache keying ---------------------------------------------------

    def module_dependencies(self) -> dict[str, set[str]]:
        """Transitive module deps, for call-graph-aware cache keys."""
        return self.graph.module_dependencies()
