"""Diagnostic record emitted by lint rules, plus machine-applicable fixes."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Edit:
    """Replace ``[col, end_col)`` (0-based) on 1-based ``line`` with ``text``."""

    line: int
    col: int
    end_col: int
    text: str


@dataclass(frozen=True)
class Fix:
    """A mechanical remedy the ``--fix`` engine can apply.

    ``edits`` are same-line text replacements; ``insert_line`` adds a
    whole new line *before* the given 1-based line number;
    ``add_units_import`` lists ``repro.units`` constant names the edited
    file must import for the replacement text to resolve;
    ``add_imports`` lists whole import statements (e.g.
    ``"from repro.service.envelope import hlog"``) the edited file must
    contain — each is inserted at the import block unless an identical
    line already exists.
    """

    edits: tuple[Edit, ...] = ()
    insert_line: tuple[int, str] | None = None
    add_units_import: tuple[str, ...] = ()
    add_imports: tuple[str, ...] = ()


@dataclass(frozen=True)
class TraceStep:
    """One hop of an interprocedural witness chain.

    The flow rules (R13, R15) attach a chain of these to each finding:
    the first step is the flagged function, each middle step the call
    site taking the chain one function deeper, the last step the
    origin (the ambient-state read, the escaping ``raise``).  Rendered
    under ``--explain`` in text output and always as SARIF
    ``codeFlows``.
    """

    path: str
    line: int
    col: int
    function: str
    note: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.function} — {self.note}"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: where, which rule, and what to do about it.

    Ordering is (path, line, col, code) so reports read top-to-bottom
    per file.  ``fix`` (when present) is the mechanical remedy applied
    by ``repro lint --fix``; ``trace`` (when present) is the witness
    call chain of an interprocedural finding.  Neither participates in
    equality.
    """

    path: str
    line: int
    col: int
    code: str = field(compare=False)
    name: str = field(compare=False)
    message: str = field(compare=False)
    fix: Fix | None = field(compare=False, default=None)
    trace: tuple[TraceStep, ...] = field(compare=False, default=())

    def render(self) -> str:
        """``path:line:col: CODE[name] message`` — the CLI report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code}[{self.name}] {self.message}"
