"""Diagnostic record emitted by lint rules."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: where, which rule, and what to do about it.

    Ordering is (path, line, col, code) so reports read top-to-bottom
    per file.
    """

    path: str
    line: int
    col: int
    code: str = field(compare=False)
    name: str = field(compare=False)
    message: str = field(compare=False)

    def render(self) -> str:
        """``path:line:col: CODE[name] message`` — the CLI report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code}[{self.name}] {self.message}"
