"""Lint baseline: adopt new rules without stopping the world.

A baseline file records the findings a team has decided to live with
for now, so ``repro lint --baseline`` fails only on *new* findings.
Entries are **fingerprints**, not locations: ``path|code|name|message``
with no line number, so reformatting or adding imports above a known
finding does not resurrect it — but changing the offending code enough
to alter the message does, which is the point.

Counts make the suppression exact: a fingerprint occurring twice in the
baseline absorbs at most two matching findings; a third is new and
fails the run.  The reverse direction is enforced too: a baseline entry
that no longer matches anything is **stale**, and ``--baseline`` fails
the run until ``--update-baseline`` prunes it — a baseline only shrinks
over time.

``E0`` parse errors are never suppressible: a baseline that hides a
file the linter cannot even read would hide everything in it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.diagnostics import Diagnostic

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE",
    "apply_baseline",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]

DEFAULT_BASELINE = ".reprolint-baseline.json"

_VERSION = 1


def fingerprint(diag: Diagnostic) -> str:
    """Line-independent identity of a finding."""
    return f"{diag.path}|{diag.code}|{diag.name}|{diag.message}"


@dataclass
class Baseline:
    """Fingerprint -> allowed count."""

    counts: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_diagnostics(cls, diags: list[Diagnostic]) -> "Baseline":
        counts: dict[str, int] = {}
        for d in diags:
            if d.code == "E0":
                continue
            key = fingerprint(d)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    def to_json(self) -> dict:
        """The on-disk document: sorted entries with counts."""
        entries = []
        for key in sorted(self.counts):
            path, code, name, message = key.split("|", 3)
            entries.append(
                {
                    "path": path,
                    "code": code,
                    "name": name,
                    "message": message,
                    "count": self.counts[key],
                }
            )
        return {"version": _VERSION, "entries": entries}

    @classmethod
    def from_json(cls, data: dict) -> "Baseline":
        counts: dict[str, int] = {}
        for e in data.get("entries", []):
            key = f"{e['path']}|{e['code']}|{e['name']}|{e['message']}"
            counts[key] = counts.get(key, 0) + int(e.get("count", 1))
        return cls(counts)


def load_baseline(path: str | Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    p = Path(path)
    try:
        data = json.loads(p.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return Baseline()
    except (OSError, ValueError) as exc:
        raise ValueError(f"cannot read baseline {p}: {exc}") from exc
    return Baseline.from_json(data)


def write_baseline(path: str | Path, diags: list[Diagnostic]) -> Baseline:
    """Snapshot the given findings as the new baseline file."""
    baseline = Baseline.from_diagnostics(diags)
    Path(path).write_text(
        json.dumps(baseline.to_json(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return baseline


def apply_baseline(
    diags: list[Diagnostic], baseline: Baseline
) -> tuple[list[Diagnostic], int, list[str]]:
    """Split findings against a baseline.

    Returns ``(surviving, suppressed_count, stale_fingerprints)``:
    each baseline entry absorbs up to its count of matching findings
    (``E0`` never matches); entries with capacity left over are stale —
    the code they excused no longer trips the rule, so the baseline
    must be re-snapshotted with ``--update-baseline``.
    """
    remaining = dict(baseline.counts)
    surviving: list[Diagnostic] = []
    suppressed = 0
    for d in diags:
        key = fingerprint(d)
        if d.code != "E0" and remaining.get(key, 0) > 0:
            remaining[key] -= 1
            suppressed += 1
        else:
            surviving.append(d)
    stale = sorted(key for key, count in remaining.items() if count > 0)
    return surviving, suppressed, stale
