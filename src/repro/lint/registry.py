"""Rule registry.

Two kinds of rule share one registry:

- **per-file rules** (R1-R5, R9, R10, R12) expose ``check(ctx)`` over a
  parsed :class:`~repro.lint.engine.FileContext`;
- **project rules** (R6-R8, R11) expose ``check_project(model)`` over
  the whole-program :class:`~repro.lint.project.ProjectModel` built
  from every linted file;
- **interprocedural rules** (R13-R15) expose
  ``check_module(analysis, mod)`` over one module against the shared
  :class:`~repro.lint.interproc.InterAnalysis` — per-module dispatch is
  what lets the incremental cache re-lint only a changed module and its
  transitive callers.

Either way a rule is a class with ``code`` (``"R1"``..), ``name``
(pragma-friendly slug) and ``description``; registration happens at
import time via the :func:`register` decorator, and importing
:mod:`repro.lint.rules` pulls in every built-in rule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.diagnostics import Diagnostic
    from repro.lint.engine import FileContext
    from repro.lint.project import ProjectModel


class LintRule(Protocol):
    """Interface every per-file rule satisfies."""

    code: str
    name: str
    description: str

    def check(self, ctx: "FileContext") -> Iterator["Diagnostic"]:
        """Yield diagnostics for one parsed file."""
        ...


@runtime_checkable
class ProjectRule(Protocol):
    """Interface every whole-program rule satisfies."""

    code: str
    name: str
    description: str

    def check_project(self, model: "ProjectModel") -> Iterator["Diagnostic"]:
        """Yield diagnostics over the cross-module semantic model."""
        ...


_REGISTRY: dict[str, LintRule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate and index the rule by code and name."""
    rule = cls()
    for key in (rule.code, rule.name):
        if key in _REGISTRY:
            raise ValueError(f"duplicate lint rule key {key!r}")
    _REGISTRY[rule.code] = rule
    _REGISTRY[rule.name] = rule
    return cls


def is_project_rule(rule: object) -> bool:
    """True for whole-program rules (``check_project`` or
    ``check_module``), False for per-file rules (``check`` only)."""
    return hasattr(rule, "check_project") or hasattr(rule, "check_module")


def is_interprocedural(rule: object) -> bool:
    """True for call-graph rules dispatched per module
    (``check_module(analysis, mod)``)."""
    return hasattr(rule, "check_module")


def _load_builtin_rules() -> None:
    # Import for the side effect of @register; idempotent.
    import repro.lint.rules  # noqa: F401


def all_rules() -> list[LintRule]:
    """Every registered rule, ordered by code (R1, R2, ... R10)."""
    _load_builtin_rules()
    unique = {id(r): r for r in _REGISTRY.values()}
    return sorted(unique.values(), key=lambda r: (len(r.code), r.code))


def get_rule(key: str) -> LintRule:
    """Look a rule up by code (``R2``) or name (``unit-safety``)."""
    _load_builtin_rules()
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted({r.code for r in all_rules()}))
        raise KeyError(f"unknown lint rule {key!r}; known codes: {known}") from None


def resolve_selection(select: Iterable[str] | None) -> list[LintRule]:
    """Turn ``--select`` values into rule objects (all rules if None)."""
    if select is None:
        return all_rules()
    picked = {id(get_rule(k)): get_rule(k) for k in select}
    return sorted(picked.values(), key=lambda r: (len(r.code), r.code))
