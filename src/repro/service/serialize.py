"""Bit-exact JSON codecs for :class:`ScenarioResult`.

The result store archives scenario outcomes as JSON so they are
inspectable with ``jq`` and diffable in CI, yet a load must reproduce
the in-memory :class:`~repro.simulation.runner.ScenarioResult`
*bit-identically* — the acceptance gate of the service is that a stored
result equals a fresh ``repro run`` of the same scenario byte for byte.

Exactness argument: finite floats survive ``json`` round-trips exactly
(the encoder emits ``repr``-faithful shortest forms, the decoder parses
them back to the same IEEE-754 double); the non-finite values strict
JSON cannot carry are spelled as the strings ``"NaN"`` / ``"Infinity"``
/ ``"-Infinity"`` by :func:`repro.service.envelope.jsonable` and turned
back into the canonical quiet NaN / infinities on load — the same
values ``np.full(n, np.nan)`` and ``math.inf`` produce.  Integers and
booleans are exact natively.  Makespan vectors are re-materialized as
``float64`` arrays, matching the runner's dtype.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.service.envelope import from_jsonable, jsonable
from repro.simulation.results import SimulationResult
from repro.simulation.runner import ScenarioResult

__all__ = [
    "RESULT_FORMAT",
    "RESULT_PAYLOAD_FIELDS",
    "comparable_result_payload",
    "scenario_result_from_dict",
    "scenario_result_to_dict",
]

#: Serialization format tag; bump on any layout change.
RESULT_FORMAT = "repro.result/1"

#: The *result payload*: the fields that are a pure function of the
#: scenario spec.  Everything else in a serialized result (elapsed,
#: n_jobs, cache/memo/disk counters, scheduler stats, reuse flags) is
#: execution metadata that legitimately differs between bit-identical
#: runs.  Identity gates (service smoke, sweep tests, benchmarks)
#: compare exactly this subset.
RESULT_PAYLOAD_FIELDS = (
    "format",
    "makespans",
    "details",
    "work_time",
    "best_period",
    "infeasible",
)


def comparable_result_payload(doc: dict[str, Any]) -> dict[str, Any]:
    """The spec-determined subset of a serialized result document —
    what "bit-identical results" means across execution modes."""
    return {name: doc[name] for name in RESULT_PAYLOAD_FIELDS}

_SIM_FIELDS = (
    "makespan",
    "work_time",
    "n_failures",
    "n_checkpoints",
    "n_attempts",
    "chunk_min",
    "chunk_max",
    "completed",
    "time_lost",
    "time_outage",
    "time_waiting",
)


def _sim_to_dict(res: SimulationResult | None) -> dict[str, Any] | None:
    if res is None:
        return None
    return {name: jsonable(getattr(res, name)) for name in _SIM_FIELDS}


def _sim_from_dict(raw: dict[str, Any] | None) -> SimulationResult | None:
    if raw is None:
        return None
    return SimulationResult(**{name: from_jsonable(raw[name])
                               for name in _SIM_FIELDS})


def scenario_result_to_dict(result: ScenarioResult) -> dict[str, Any]:
    """Lower a :class:`ScenarioResult` to strict-JSON-safe primitives."""
    return {
        "format": RESULT_FORMAT,
        "makespans": {
            name: jsonable(spans) for name, spans in result.makespans.items()
        },
        "details": {
            name: [_sim_to_dict(det) for det in dets]
            for name, dets in result.details.items()
        },
        "work_time": jsonable(result.work_time),
        "best_period": jsonable(result.best_period),
        "infeasible": {
            name: list(idxs) for name, idxs in result.infeasible.items()
        },
        "elapsed": jsonable(result.elapsed),
        "n_jobs": result.n_jobs,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "memo_hits": result.memo_hits,
        "memo_misses": result.memo_misses,
        "memo_unique_misses": result.memo_unique_misses,
        "disk_hits": result.disk_hits,
        "disk_misses": result.disk_misses,
        "disk_evictions": result.disk_evictions,
        "trace_gen_reused": result.trace_gen_reused,
        "ensemble_reused": result.ensemble_reused,
        "scheduler": jsonable(result.scheduler),
    }


def scenario_result_from_dict(raw: dict[str, Any]) -> ScenarioResult:
    """Rebuild the in-memory result; inverse of
    :func:`scenario_result_to_dict` (bit-identical fields)."""
    fmt = raw.get("format")
    if fmt != RESULT_FORMAT:
        raise ValueError(
            f"unsupported result format {fmt!r} (expected {RESULT_FORMAT!r})"
        )
    makespans = {
        name: np.asarray(from_jsonable(spans), dtype=np.float64)
        for name, spans in raw["makespans"].items()
    }
    details = {
        name: [_sim_from_dict(det) for det in dets]
        for name, dets in raw["details"].items()
    }
    return ScenarioResult(
        makespans=makespans,
        details=details,
        work_time=from_jsonable(raw["work_time"]),
        best_period=from_jsonable(raw["best_period"]),
        infeasible={
            name: [int(i) for i in idxs]
            for name, idxs in raw["infeasible"].items()
        },
        elapsed=from_jsonable(raw["elapsed"]),
        n_jobs=int(raw["n_jobs"]),
        cache_hits=int(raw["cache_hits"]),
        cache_misses=int(raw["cache_misses"]),
        memo_hits=int(raw["memo_hits"]),
        memo_misses=int(raw["memo_misses"]),
        # absent in results stored before the disk tier existed (the
        # store_version salt usually retires those, but stay tolerant)
        memo_unique_misses=int(raw.get("memo_unique_misses", 0)),
        disk_hits=int(raw.get("disk_hits", 0)),
        disk_misses=int(raw.get("disk_misses", 0)),
        disk_evictions=int(raw.get("disk_evictions", 0)),
        trace_gen_reused=bool(raw.get("trace_gen_reused", False)),
        ensemble_reused=bool(raw.get("ensemble_reused", False)),
        scheduler=from_jsonable(raw.get("scheduler", {})),
    )
