"""Canonical scenario descriptions and their content-addressed signatures.

A :class:`ScenarioSpec` is the service's unit of work: everything needed
to reproduce one scenario run bit-identically — distribution, platform,
policy list, trace count and seed.  Its JSON form is *canonical*
(defaults filled in, keys ordered, durations in seconds), so equal
scenarios have equal encodings, and its :meth:`~ScenarioSpec.signature`
is the SHA-256 of that encoding salted with the result-store code hash
(:func:`repro.service.store.store_version`).  The signature is the key
of the content-addressed result store and of the job-queue coalescing
logic: re-submitting an already-solved scenario is a store hit, not a
re-solve — the same contract as the PR-5 replan memo, one level up.

Execution knobs (``jobs``, ``use_cache`` …) are deliberately *not* part
of a spec: they never change results (bit-identity is guaranteed by the
runner), so two submissions that differ only in execution mode share
one signature and one archived result.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.units import DAY, MINUTE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.models import Platform
    from repro.policies.base import Policy
    from repro.simulation.runner import ScenarioResult

__all__ = [
    "POLICY_NAMES",
    "ScenarioSpec",
    "SpecError",
    "expand_grid",
    "policy_from_name",
]

#: Builtin policy spellings accepted in ``ScenarioSpec.policies`` (the
#: ``period:<seconds>`` family is accepted on top of these).
POLICY_NAMES = (
    "young",
    "dalylow",
    "dalyhigh",
    "optexp",
    "bouguerra",
    "liu",
    "dpnextfailure",
    "dpmakespan",
)


class SpecError(ValueError):
    """A scenario description that cannot be turned into a run."""


def policy_from_name(name: str) -> "Policy":
    """Instantiate a policy from its CLI/spec spelling.

    Accepts the builtin names of :data:`POLICY_NAMES` plus
    ``period:<seconds>`` (a float, e.g. ``period:7200``).  Raises
    :class:`SpecError` on anything else.
    """
    from repro.policies import (
        Bouguerra,
        DalyHigh,
        DalyLow,
        DPMakespanPolicy,
        DPNextFailurePolicy,
        Liu,
        OptExp,
        Young,
    )
    from repro.policies.base import PeriodicPolicy

    table: dict[str, Callable[[], Policy]] = {
        "young": Young,
        "dalylow": DalyLow,
        "dalyhigh": DalyHigh,
        "optexp": OptExp,
        "bouguerra": Bouguerra,
        "liu": Liu,
        "dpnextfailure": DPNextFailurePolicy,
        "dpmakespan": DPMakespanPolicy,
    }
    if name in table:
        return table[name]()
    if name.startswith("period:"):
        try:
            period = float(name.split(":", 1)[1])
        except ValueError as exc:
            raise SpecError(f"bad period in policy {name!r}") from exc
        if period <= 0 or not math.isfinite(period):
            raise SpecError(f"period must be positive and finite: {name!r}")
        return PeriodicPolicy(period)
    raise SpecError(
        f"unknown policy {name!r}; choose from {sorted(table)} "
        "or period:<seconds>"
    )


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario: distribution x platform x policies x traces.

    All durations are seconds (repo convention).  ``work`` is the total
    sequential workload ``W``; the job is embarrassingly parallel, so
    the failure-free execution time is ``W / p``.  ``horizon`` defaults
    to the simulate-subcommand budget ``60 * work / p + mtbf`` when not
    given.  ``shape`` only participates for Weibull distributions and is
    canonicalized away for exponential ones.
    """

    dist: str = "weibull"
    mtbf: float = DAY
    shape: float = 0.7
    p: int = 1
    work: float = 20 * DAY
    checkpoint: float = 10 * MINUTE
    recovery: float = 10 * MINUTE
    downtime: float = MINUTE
    policies: tuple[str, ...] = ("dpnextfailure",)
    n_traces: int = 3
    seed: int = 0
    t0: float = 0.0
    horizon: float | None = None
    include_lower_bound: bool = True
    include_period_lb: bool = False

    _FIELD_ORDER = (
        "dist",
        "mtbf",
        "shape",
        "p",
        "work",
        "checkpoint",
        "recovery",
        "downtime",
        "policies",
        "n_traces",
        "seed",
        "t0",
        "horizon",
        "include_lower_bound",
        "include_period_lb",
    )

    def __post_init__(self) -> None:
        if self.dist not in ("exponential", "weibull"):
            raise SpecError(f"dist must be exponential|weibull, got {self.dist!r}")
        for name in ("mtbf", "work", "checkpoint", "recovery"):
            value = getattr(self, name)
            if not (isinstance(value, (int, float)) and value > 0
                    and math.isfinite(value)):
                raise SpecError(f"{name} must be a positive finite number")
        if not (self.downtime >= 0 and math.isfinite(self.downtime)):
            raise SpecError("downtime must be non-negative and finite")
        if self.dist == "weibull" and not (
            math.isfinite(self.shape) and self.shape > 0
        ):
            raise SpecError("shape must be a positive finite number")
        if self.p < 1:
            raise SpecError("p must be >= 1")
        if self.n_traces < 1:
            raise SpecError("n_traces must be >= 1")
        if self.t0 < 0 or not math.isfinite(self.t0):
            raise SpecError("t0 must be non-negative and finite")
        if self.horizon is not None and not (
            math.isfinite(self.horizon) and self.horizon > 0
        ):
            raise SpecError("horizon must be a positive finite number or null")
        if not self.policies:
            raise SpecError("policies must name at least one policy")
        for name in self.policies:
            policy_from_name(name)  # raises SpecError on bad spellings

    # -- canonical encoding --------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-ready form: fixed key order, floats as floats,
        ``shape`` omitted for exponential distributions."""
        out: dict[str, Any] = {}
        for name in self._FIELD_ORDER:
            if name == "shape" and self.dist == "exponential":
                continue
            value = getattr(self, name)
            if name == "policies":
                value = list(value)
            elif isinstance(value, float) and name != "horizon":
                value = float(value)
            out[name] = value
        return out

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "ScenarioSpec":
        """Validated construction from an untrusted dict (HTTP body,
        ``--spec`` file).  Unknown keys are an error — silently ignoring
        them would let typos change what gets solved."""
        if not isinstance(raw, dict):
            raise SpecError(f"spec must be an object, got {type(raw).__name__}")
        unknown = set(raw) - set(cls._FIELD_ORDER)
        if unknown:
            raise SpecError(f"unknown spec keys: {sorted(unknown)}")
        kwargs: dict[str, Any] = {}
        for name in cls._FIELD_ORDER:
            if name not in raw:
                continue
            value = raw[name]
            if name == "policies":
                if isinstance(value, str):
                    value = [part for part in value.split(",") if part]
                if not isinstance(value, (list, tuple)):
                    raise SpecError("policies must be a list of names")
                value = tuple(str(v) for v in value)
            elif name in ("p", "n_traces", "seed"):
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise SpecError(f"{name} must be an integer")
                if float(value) != int(value):
                    raise SpecError(f"{name} must be an integer")
                value = int(value)
            elif name in ("include_lower_bound", "include_period_lb"):
                if not isinstance(value, bool):
                    raise SpecError(f"{name} must be a boolean")
            elif name == "dist":
                value = str(value)
            elif name == "horizon" and value is None:
                value = None
            else:
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise SpecError(f"{name} must be a number")
                value = float(value)
            kwargs[name] = value
        return cls(**kwargs)

    def canonical_json(self) -> str:
        """The signature preimage: compact, key-ordered, strict JSON."""
        return json.dumps(self.to_dict(), allow_nan=False,
                          separators=(",", ":"))

    def signature(self) -> str:
        """Content address of this scenario in the result store.

        SHA-256 over the canonical encoding, salted with the code hash
        of the result-determining packages (see
        :func:`repro.service.store.store_version`) so a code change that
        could alter results retires every archived entry at once.
        """
        from repro.service.store import store_version

        preimage = f"{store_version()}|{self.canonical_json()}"
        return hashlib.sha256(preimage.encode()).hexdigest()[:40]

    # -- materialization -----------------------------------------------

    def build_distribution(self):
        """The per-processor failure distribution this spec names."""
        from repro.distributions import Exponential, Weibull

        if self.dist == "exponential":
            return Exponential.from_mtbf(self.mtbf)
        return Weibull.from_mtbf(self.mtbf, self.shape)

    def build_platform(self) -> "Platform":
        """The platform: ``p`` processors, C/R overheads, downtime."""
        from repro.cluster.models import Platform, SplitOverhead

        return Platform(
            p=self.p,
            dist=self.build_distribution(),
            downtime=self.downtime,
            overhead=SplitOverhead(self.checkpoint, self.recovery),
        )

    def build_policies(self) -> list["Policy"]:
        """Fresh policy instances, one per spelled name, in order."""
        return [policy_from_name(name) for name in self.policies]

    @property
    def work_time(self) -> float:
        """Failure-free execution time ``W(p) = W / p``."""
        return self.work / self.p

    @property
    def effective_horizon(self) -> float:
        if self.horizon is not None:
            return self.horizon
        # the 60x on per-processor work is a horizon budget, not a minute
        return 60.0 * self.work / self.p + self.mtbf  # reprolint: disable=R2

    def run(
        self,
        jobs: int | None = None,
        use_cache: bool | None = None,
        use_batch: bool | None = None,
        use_memo: bool | None = None,
        use_shm: bool | None = None,
        use_disk_cache: bool | None = None,
        progress: Callable[[int, int], None] | None = None,
        shared=None,
        executor=None,
    ) -> "ScenarioResult":
        """Execute this scenario on the PR-1/4/5 execution tier.

        Results are a pure function of the spec (bit-identical for any
        execution knobs) — the property the content-addressed store and
        the service's cached-resubmit contract rest on.  ``shared`` /
        ``executor`` are sweep-group plumbing (pre-built trace set, one
        process pool per grid); see
        :func:`repro.simulation.runner.run_scenarios`.
        """
        from repro.simulation.runner import run_scenarios

        return run_scenarios(
            self.build_policies(),
            self.build_platform(),
            self.work_time,
            n_traces=self.n_traces,
            horizon=self.effective_horizon,
            t0=self.t0,
            seed=self.seed,
            include_lower_bound=self.include_lower_bound,
            include_period_lb=self.include_period_lb,
            jobs=jobs,
            use_cache=use_cache,
            use_batch=use_batch,
            use_memo=use_memo,
            use_shm=use_shm,
            use_disk_cache=use_disk_cache,
            progress=progress,
            shared=shared,
            executor=executor,
        )


def expand_grid(
    base: dict[str, Any], grid: dict[str, Sequence[Any]]
) -> list[ScenarioSpec]:
    """Expand a parameter grid into validated :class:`ScenarioSpec`\\ s.

    ``base`` is a raw spec dict (the ``--spec`` file / flag values);
    ``grid`` maps spec field names to the values each grid axis takes.
    The expansion is the cartesian product in deterministic order: axes
    iterate in ``grid``'s insertion order, values in their given order,
    with the last axis varying fastest — so the same request always
    yields the same point list, point ``i`` is reproducible from the
    request alone, and sweep results align positionally.  Every point
    goes through :meth:`ScenarioSpec.from_dict`, so unknown keys and
    bad values fail the whole expansion up front rather than midway
    through a sweep.
    """
    if not isinstance(grid, dict):
        raise SpecError(f"grid must be an object, got {type(grid).__name__}")
    for key, values in grid.items():
        if key not in ScenarioSpec._FIELD_ORDER:
            raise SpecError(f"unknown grid key {key!r}")
        if isinstance(values, (str, bytes)) or not isinstance(
            values, (list, tuple)
        ):
            raise SpecError(f"grid values for {key!r} must be a list")
        if not values:
            raise SpecError(f"grid axis {key!r} is empty")
    keys = list(grid)
    specs: list[ScenarioSpec] = []
    for combo in itertools.product(*(grid[key] for key in keys)):
        raw = dict(base)
        raw.update(zip(keys, combo))
        specs.append(ScenarioSpec.from_dict(raw))
    return specs
