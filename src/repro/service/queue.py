"""The daemon's job queue: submit/poll semantics over the runner tier.

Jobs move through ``queued -> running -> done | failed``; a submission
whose signature is already archived short-circuits to ``cached`` and
never enters the queue, and a submission whose signature is already
queued or running **coalesces** onto the live job instead of solving
the same scenario twice.  Worker threads drain the queue; each job's
scenario execution fans out over ParallelRunner processes, so the
queue's worker count bounds *concurrent scenarios* while the execution
config bounds *processes per scenario*.

Batch submission (``POST /v1/batches``, :meth:`JobQueue.submit_batch`)
layers the sweep planner on top: every point of a sweep becomes a
member job with the usual store-hit / live-coalesce semantics, and the
points that actually need solving are grouped by trace signature
(:func:`repro.simulation.sweep.trace_signature`) into *group tasks* —
one queue entry per group, executed by :func:`repro.simulation.sweep.
run_sweep` over one shared trace set.  Member jobs stay individually
addressable (status/result/stream by job id); the
:class:`BatchRecord` aggregates them into one batch-status envelope.

Thread-safety: one lock guards the job table; records hand out
JSON-ready snapshots (:meth:`JobRecord.to_status_dict`) rather than
live references.  Progress is fed by the runner's per-work-unit
callback (PR-6 plumbing in :class:`ParallelRunner`).
"""

from __future__ import annotations

import itertools
import queue as _queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any

from repro.service.serialize import scenario_result_to_dict
from repro.service.spec import ScenarioSpec
from repro.service.store import ResultStore

__all__ = ["BatchRecord", "ExecutionOptions", "JobQueue", "JobRecord"]

#: Job states; ``cached`` and ``done`` both carry a result.
STATES = ("queued", "running", "done", "failed", "cached")
_TERMINAL = ("done", "failed", "cached")


@dataclass(frozen=True)
class ExecutionOptions:
    """Execution knobs a submission may carry; never part of the
    signature (they cannot change results, only wall-clock)."""

    jobs: int | None = None
    use_cache: bool | None = None
    use_batch: bool | None = None
    use_memo: bool | None = None
    use_shm: bool | None = None
    use_disk_cache: bool | None = None

    @classmethod
    def from_dict(cls, raw: dict[str, Any] | None) -> "ExecutionOptions":
        if not raw:
            return cls()
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(raw) - known
        if unknown:
            raise ValueError(f"unknown execution keys: {sorted(unknown)}")
        return cls(**raw)


@dataclass
class JobRecord:
    """Mutable in-daemon state of one submitted scenario."""

    job_id: str
    signature: str
    spec: ScenarioSpec
    execution: ExecutionOptions
    state: str = "queued"
    error: str | None = None
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    progress_done: int = 0
    progress_total: int = 0
    store_hits: int = 0
    result_doc: dict[str, Any] | None = None
    _event: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    def to_status_dict(self) -> dict[str, Any]:
        """JSON-ready status snapshot (no result payload)."""
        return {
            "job_id": self.job_id,
            "signature": self.signature,
            "state": self.state,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "progress": {
                "done": self.progress_done,
                "total": self.progress_total,
            },
            "cached": self.state == "cached",
            "store_hits": self.store_hits,
            "spec": self.spec.to_dict(),
        }


@dataclass
class _GroupTask:
    """One sweep group's worth of member jobs, executed together over a
    shared trace set (a queue entry alongside plain job ids)."""

    job_ids: list[str]
    execution: ExecutionOptions
    use_sweep_plan: bool = True


@dataclass
class BatchRecord:
    """One batch submission: the member jobs of a sweep, point order."""

    batch_id: str
    point_jobs: list[str]  # job id per grid point, submission order
    n_groups: int
    submitted_at: float
    plan: dict[str, Any] = field(default_factory=dict)

    @property
    def job_ids(self) -> list[str]:
        """Unique member job ids, first-appearance order (duplicate
        signatures within a batch coalesce onto one job)."""
        seen: dict[str, None] = {}
        for job_id in self.point_jobs:
            seen.setdefault(job_id)
        return list(seen)


class JobQueue:
    """Thread-backed scenario queue in front of a :class:`ResultStore`."""

    def __init__(self, store: ResultStore | None = None, workers: int = 1):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store = store if store is not None else ResultStore()
        self._jobs: dict[str, JobRecord] = {}
        self._batches: dict[str, BatchRecord] = {}
        self._by_signature: dict[str, str] = {}
        self._ids = itertools.count(1)
        self._batch_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._tasks: _queue.Queue[str | _GroupTask | None] = _queue.Queue()
        self._workers = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"repro-job-worker-{i}")
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- submission ----------------------------------------------------

    def _register_locked(
        self, spec: ScenarioSpec, execution: ExecutionOptions
    ) -> tuple[JobRecord, bool]:
        """Store-hit / live-coalesce / new-job logic, lock held by the
        caller; returns ``(job, newly_queued)`` — the caller decides how
        a newly queued job reaches the task queue (alone or inside a
        batch's group task)."""
        signature = spec.signature()
        live_id = self._by_signature.get(signature)  # reprolint: disable=R9 caller holds _lock
        if live_id is not None and not self._jobs[live_id].terminal:  # reprolint: disable=R9 caller holds _lock
            return self._jobs[live_id], False  # reprolint: disable=R9 caller holds _lock
        entry = self.store.get(signature)
        job = JobRecord(
            job_id=f"job-{next(self._ids):06d}",
            signature=signature,
            spec=spec,
            execution=execution,
            submitted_at=time.time(),
        )
        if entry is not None:
            job.state = "cached"
            job.result_doc = entry.result
            job.store_hits = entry.hits
            job.finished_at = job.submitted_at
            job._event.set()
        else:
            self._by_signature[signature] = job.job_id  # reprolint: disable=R9 caller holds _lock
        self._jobs[job.job_id] = job  # reprolint: disable=R9 caller holds _lock
        return job, job.state == "queued"

    def submit(
        self,
        spec: ScenarioSpec,
        execution: ExecutionOptions | None = None,
    ) -> JobRecord:
        """Register a scenario; returns its (possibly pre-existing) job.

        Store hit -> a fresh ``cached`` job carrying the archived
        result.  Live job with the same signature -> that job (the
        caller polls the first submission's progress).  Otherwise a new
        ``queued`` job.
        """
        execution = execution if execution is not None else ExecutionOptions()
        with self._lock:
            job, newly_queued = self._register_locked(spec, execution)
            if newly_queued:
                self._tasks.put(job.job_id)
            return job

    def submit_batch(
        self,
        specs: list[ScenarioSpec],
        execution: ExecutionOptions | None = None,
        use_sweep_plan: bool = True,
    ) -> BatchRecord:
        """Register a sweep: one member job per grid point, coalesced
        into shared-trace group tasks.

        Every point gets the :meth:`submit` semantics (store hit ->
        ``cached``, live signature -> coalesce — including duplicates
        *within* the batch).  The points left to solve are grouped by
        :func:`~repro.simulation.sweep.trace_signature`; each group is
        one queue entry, executed over one generated trace set / one
        compiled ensemble / one shm publication by
        :func:`~repro.simulation.sweep.run_sweep`.  Results land in the
        store under each member's own signature, so later submissions
        hit regardless of how the batch was grouped.
        """
        if not specs:
            raise ValueError("batch must contain at least one spec")
        # grouping is simulation-layer logic; imported here to keep the
        # queue importable without pulling the whole execution tier
        from repro.simulation.sweep import trace_signature

        execution = execution if execution is not None else ExecutionOptions()
        with self._lock:
            point_jobs: list[str] = []
            new_jobs: list[JobRecord] = []
            cached = 0
            for spec in specs:
                job, newly_queued = self._register_locked(spec, execution)
                point_jobs.append(job.job_id)
                if newly_queued:
                    new_jobs.append(job)
                elif job.state == "cached":
                    cached += 1
            groups: dict[tuple, list[str]] = {}
            for job in new_jobs:
                key = trace_signature(job.spec)
                groups.setdefault(key, []).append(job.job_id)
            batch = BatchRecord(
                batch_id=f"batch-{next(self._batch_ids):06d}",
                point_jobs=point_jobs,
                n_groups=len(groups),
                submitted_at=time.time(),  # reprolint: clock-ok=submission timestamp, never reaches results
                plan={
                    "n_points": len(specs),
                    "n_groups": len(groups),
                    "group_sizes": sorted(
                        (len(ids) for ids in groups.values()), reverse=True
                    ),
                    "new_jobs": len(new_jobs),
                    "cached": cached,
                    "coalesced": len(specs) - len(new_jobs) - cached,
                    "use_sweep_plan": use_sweep_plan,
                },
            )
            self._batches[batch.batch_id] = batch
            for job_ids in groups.values():
                self._tasks.put(_GroupTask(
                    job_ids=job_ids,
                    execution=execution,
                    use_sweep_plan=use_sweep_plan,
                ))
            return batch

    # -- execution -----------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._tasks.get()
            if item is None:
                return
            if isinstance(item, _GroupTask):
                self._execute_group(item)
                continue
            with self._lock:
                job = self._jobs.get(item)
                if job is None or job.state != "queued":
                    continue
                job.state = "running"
                job.started_at = time.time()  # reprolint: clock-ok=job bookkeeping timestamp
            self._execute(job)

    def _execute(self, job: JobRecord) -> None:
        def on_progress(done: int, total: int) -> None:
            job.progress_done = done
            job.progress_total = total

        try:
            result = job.spec.run(
                jobs=job.execution.jobs,
                use_cache=job.execution.use_cache,
                use_batch=job.execution.use_batch,
                use_memo=job.execution.use_memo,
                use_shm=job.execution.use_shm,
                use_disk_cache=job.execution.use_disk_cache,
                progress=on_progress,
            )
            result_doc = scenario_result_to_dict(result)
            self.store.put(job.signature, job.spec.to_dict(), result_doc)
            with self._lock:
                job.result_doc = result_doc
                job.state = "done"
                job.finished_at = time.time()
                self._by_signature.pop(job.signature, None)
        except Exception as exc:
            with self._lock:
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = "failed"
                job.finished_at = time.time()
                self._by_signature.pop(job.signature, None)
            # full trace belongs in the daemon's stderr log, not the API
            traceback.print_exc()
        finally:
            job._event.set()

    def _execute_group(self, task: _GroupTask) -> None:
        """Run one sweep group's member jobs over a shared trace set.

        ``run_sweep`` drives the per-point lifecycle through callbacks:
        a member flips to ``running`` when its point starts, gets
        per-work-unit progress ticks while it replays, and is archived +
        marked ``done`` the moment its point finishes — so pollers see
        members complete one by one, exactly like individually submitted
        jobs.  A group-level failure fails every not-yet-done member
        with the same error."""
        with self._lock:
            jobs: list[JobRecord] = []
            for job_id in task.job_ids:
                job = self._jobs.get(job_id)
                if job is not None and job.state == "queued":
                    jobs.append(job)
        if not jobs:
            return
        from repro.simulation.sweep import run_sweep

        specs = [job.spec for job in jobs]

        def on_point_start(index: int) -> None:
            with self._lock:
                jobs[index].state = "running"
                jobs[index].started_at = time.time()  # reprolint: clock-ok=job bookkeeping timestamp

        def point_progress(index: int, done: int, total: int) -> None:
            jobs[index].progress_done = done
            jobs[index].progress_total = total

        def on_point_done(index: int, result: Any) -> None:
            job = jobs[index]
            result_doc = scenario_result_to_dict(result)
            self.store.put(job.signature, job.spec.to_dict(), result_doc)
            with self._lock:
                job.result_doc = result_doc
                job.state = "done"
                job.finished_at = time.time()  # reprolint: clock-ok=job bookkeeping timestamp
                self._by_signature.pop(job.signature, None)
            job._event.set()

        execution = task.execution
        try:
            run_sweep(
                specs,
                jobs=execution.jobs,
                use_cache=execution.use_cache,
                use_batch=execution.use_batch,
                use_memo=execution.use_memo,
                use_shm=execution.use_shm,
                use_disk_cache=execution.use_disk_cache,
                use_sweep_plan=task.use_sweep_plan,
                on_point_start=on_point_start,
                on_point_done=on_point_done,
                point_progress=point_progress,
            )
        except Exception as exc:
            with self._lock:
                for job in jobs:
                    if not job.terminal:
                        job.error = f"{type(exc).__name__}: {exc}"
                        job.state = "failed"
                        job.finished_at = time.time()  # reprolint: clock-ok=job bookkeeping timestamp
                        self._by_signature.pop(job.signature, None)
            # full trace belongs in the daemon's stderr log, not the API
            traceback.print_exc()
        finally:
            for job in jobs:
                job._event.set()

    # -- queries -------------------------------------------------------

    def _job(self, job_id: str) -> JobRecord:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job

    def status(self, job_id: str) -> dict[str, Any]:
        """JSON-ready status snapshot of one job (KeyError if unknown).

        The snapshot is taken under the job-table lock: a worker flips
        ``state``/``finished_at``/``result_doc`` together under the same
        lock, so the dict can never mix fields from two states.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                return job.to_status_dict()
        raise KeyError(f"unknown job {job_id!r}")

    def result(self, job_id: str) -> dict[str, Any]:
        """The archived result document of a finished job.

        Raises :class:`KeyError` for unknown jobs and
        :class:`LookupError` for jobs that have no result (yet)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                result_doc, state = job.result_doc, job.state
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        if result_doc is None:
            raise LookupError(
                f"job {job_id} is {state}; no result available"
            )
        return result_doc

    def jobs(self) -> list[dict[str, Any]]:
        """Status snapshots of every job, oldest first (each snapshot
        taken under the lock, see :meth:`status`)."""
        with self._lock:
            records = sorted(self._jobs.values(), key=lambda j: j.job_id)
            return [job.to_status_dict() for job in records]

    def wait(self, job_id: str, timeout: float | None = None) -> bool:
        """Block until the job is terminal; True if it finished in time."""
        return self._job(job_id)._event.wait(timeout)

    def _batch(self, batch_id: str) -> BatchRecord:
        with self._lock:
            batch = self._batches.get(batch_id)
        if batch is None:
            raise KeyError(f"unknown batch {batch_id!r}")
        return batch

    def batch_status(self, batch_id: str) -> dict[str, Any]:
        """One JSON-ready envelope for a whole batch (KeyError if
        unknown): overall state, per-state member counts, aggregate
        progress, the submission-time plan, member snapshots in point
        order, and a counter roll-up over the members that already
        carry a result.

        Overall state: ``failed`` if any member failed, ``done`` once
        every member is terminal, ``running`` while any member runs,
        else ``queued``."""
        from repro.simulation.runner import COUNTER_FIELDS

        batch = self._batch(batch_id)
        with self._lock:
            members = [
                self._jobs[job_id].to_status_dict()
                for job_id in batch.point_jobs
            ]
            result_docs = [
                self._jobs[job_id].result_doc for job_id in batch.job_ids
            ]
        states = [m["state"] for m in members]
        if "failed" in states:
            overall = "failed"
        elif all(s in _TERMINAL for s in states):
            overall = "done"
        elif "running" in states:
            overall = "running"
        else:
            overall = "queued"
        counters: dict[str, int] = {}
        scenarios_with_counters = 0
        for doc in result_docs:
            if not doc:
                continue
            scenarios_with_counters += 1
            for name in COUNTER_FIELDS:
                counters[name] = counters.get(name, 0) + int(doc.get(name, 0))
        counters["scenarios"] = scenarios_with_counters
        return {
            "batch_id": batch.batch_id,
            "state": overall,
            "submitted_at": batch.submitted_at,
            "plan": dict(batch.plan),
            "n_points": len(batch.point_jobs),
            "n_groups": batch.n_groups,
            "states": {s: states.count(s) for s in STATES if s in states},
            "progress": {
                "done": sum(m["progress"]["done"] for m in members),
                "total": sum(m["progress"]["total"] for m in members),
            },
            "counters": counters,
            "jobs": members,
        }

    def batches(self) -> list[dict[str, Any]]:
        """Status snapshots of every batch, oldest first."""
        with self._lock:
            batch_ids = sorted(self._batches)
        return [self.batch_status(batch_id) for batch_id in batch_ids]

    def wait_batch(self, batch_id: str, timeout: float | None = None) -> bool:
        """Block until every member job is terminal; True if the whole
        batch finished in time."""
        batch = self._batch(batch_id)
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        for job_id in batch.job_ids:
            remaining: float | None = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            if not self.wait(job_id, timeout=remaining):
                return False
        return True

    # -- lifecycle -----------------------------------------------------

    def shutdown(self) -> None:
        """Stop the worker threads after their current job."""
        for _ in self._workers:
            self._tasks.put(None)
        for thread in self._workers:
            thread.join(timeout=30.0)
