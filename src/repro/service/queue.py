"""The daemon's job queue: submit/poll semantics over the runner tier.

Jobs move through ``queued -> running -> done | failed``; a submission
whose signature is already archived short-circuits to ``cached`` and
never enters the queue, and a submission whose signature is already
queued or running **coalesces** onto the live job instead of solving
the same scenario twice.  Worker threads drain the queue; each job's
scenario execution fans out over ParallelRunner processes, so the
queue's worker count bounds *concurrent scenarios* while the execution
config bounds *processes per scenario*.

Thread-safety: one lock guards the job table; records hand out
JSON-ready snapshots (:meth:`JobRecord.to_status_dict`) rather than
live references.  Progress is fed by the runner's per-work-unit
callback (PR-6 plumbing in :class:`ParallelRunner`).
"""

from __future__ import annotations

import itertools
import queue as _queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any

from repro.service.serialize import scenario_result_to_dict
from repro.service.spec import ScenarioSpec
from repro.service.store import ResultStore

__all__ = ["ExecutionOptions", "JobQueue", "JobRecord"]

#: Job states; ``cached`` and ``done`` both carry a result.
STATES = ("queued", "running", "done", "failed", "cached")
_TERMINAL = ("done", "failed", "cached")


@dataclass(frozen=True)
class ExecutionOptions:
    """Execution knobs a submission may carry; never part of the
    signature (they cannot change results, only wall-clock)."""

    jobs: int | None = None
    use_cache: bool | None = None
    use_batch: bool | None = None
    use_memo: bool | None = None
    use_shm: bool | None = None
    use_disk_cache: bool | None = None

    @classmethod
    def from_dict(cls, raw: dict[str, Any] | None) -> "ExecutionOptions":
        if not raw:
            return cls()
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(raw) - known
        if unknown:
            raise ValueError(f"unknown execution keys: {sorted(unknown)}")
        return cls(**raw)


@dataclass
class JobRecord:
    """Mutable in-daemon state of one submitted scenario."""

    job_id: str
    signature: str
    spec: ScenarioSpec
    execution: ExecutionOptions
    state: str = "queued"
    error: str | None = None
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    progress_done: int = 0
    progress_total: int = 0
    store_hits: int = 0
    result_doc: dict[str, Any] | None = None
    _event: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    def to_status_dict(self) -> dict[str, Any]:
        """JSON-ready status snapshot (no result payload)."""
        return {
            "job_id": self.job_id,
            "signature": self.signature,
            "state": self.state,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "progress": {
                "done": self.progress_done,
                "total": self.progress_total,
            },
            "cached": self.state == "cached",
            "store_hits": self.store_hits,
            "spec": self.spec.to_dict(),
        }


class JobQueue:
    """Thread-backed scenario queue in front of a :class:`ResultStore`."""

    def __init__(self, store: ResultStore | None = None, workers: int = 1):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store = store if store is not None else ResultStore()
        self._jobs: dict[str, JobRecord] = {}
        self._by_signature: dict[str, str] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._tasks: _queue.Queue[str | None] = _queue.Queue()
        self._workers = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"repro-job-worker-{i}")
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- submission ----------------------------------------------------

    def submit(
        self,
        spec: ScenarioSpec,
        execution: ExecutionOptions | None = None,
    ) -> JobRecord:
        """Register a scenario; returns its (possibly pre-existing) job.

        Store hit -> a fresh ``cached`` job carrying the archived
        result.  Live job with the same signature -> that job (the
        caller polls the first submission's progress).  Otherwise a new
        ``queued`` job.
        """
        execution = execution if execution is not None else ExecutionOptions()
        signature = spec.signature()
        with self._lock:
            live_id = self._by_signature.get(signature)
            if live_id is not None and not self._jobs[live_id].terminal:
                return self._jobs[live_id]
            entry = self.store.get(signature)
            job = JobRecord(
                job_id=f"job-{next(self._ids):06d}",
                signature=signature,
                spec=spec,
                execution=execution,
                submitted_at=time.time(),
            )
            if entry is not None:
                job.state = "cached"
                job.result_doc = entry.result
                job.store_hits = entry.hits
                job.finished_at = job.submitted_at
                job._event.set()
            else:
                self._by_signature[signature] = job.job_id
            self._jobs[job.job_id] = job
            if job.state == "queued":
                self._tasks.put(job.job_id)
            return job

    # -- execution -----------------------------------------------------

    def _worker(self) -> None:
        while True:
            job_id = self._tasks.get()
            if job_id is None:
                return
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None or job.state != "queued":
                    continue
                job.state = "running"
                job.started_at = time.time()
            self._execute(job)

    def _execute(self, job: JobRecord) -> None:
        def on_progress(done: int, total: int) -> None:
            job.progress_done = done
            job.progress_total = total

        try:
            result = job.spec.run(
                jobs=job.execution.jobs,
                use_cache=job.execution.use_cache,
                use_batch=job.execution.use_batch,
                use_memo=job.execution.use_memo,
                use_shm=job.execution.use_shm,
                use_disk_cache=job.execution.use_disk_cache,
                progress=on_progress,
            )
            result_doc = scenario_result_to_dict(result)
            self.store.put(job.signature, job.spec.to_dict(), result_doc)
            with self._lock:
                job.result_doc = result_doc
                job.state = "done"
                job.finished_at = time.time()
                self._by_signature.pop(job.signature, None)
        except Exception as exc:
            with self._lock:
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = "failed"
                job.finished_at = time.time()
                self._by_signature.pop(job.signature, None)
            # full trace belongs in the daemon's stderr log, not the API
            traceback.print_exc()
        finally:
            job._event.set()

    # -- queries -------------------------------------------------------

    def _job(self, job_id: str) -> JobRecord:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job

    def status(self, job_id: str) -> dict[str, Any]:
        """JSON-ready status snapshot of one job (KeyError if unknown).

        The snapshot is taken under the job-table lock: a worker flips
        ``state``/``finished_at``/``result_doc`` together under the same
        lock, so the dict can never mix fields from two states.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                return job.to_status_dict()
        raise KeyError(f"unknown job {job_id!r}")

    def result(self, job_id: str) -> dict[str, Any]:
        """The archived result document of a finished job.

        Raises :class:`KeyError` for unknown jobs and
        :class:`LookupError` for jobs that have no result (yet)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                result_doc, state = job.result_doc, job.state
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        if result_doc is None:
            raise LookupError(
                f"job {job_id} is {state}; no result available"
            )
        return result_doc

    def jobs(self) -> list[dict[str, Any]]:
        """Status snapshots of every job, oldest first (each snapshot
        taken under the lock, see :meth:`status`)."""
        with self._lock:
            records = sorted(self._jobs.values(), key=lambda j: j.job_id)
            return [job.to_status_dict() for job in records]

    def wait(self, job_id: str, timeout: float | None = None) -> bool:
        """Block until the job is terminal; True if it finished in time."""
        return self._job(job_id)._event.wait(timeout)

    # -- lifecycle -----------------------------------------------------

    def shutdown(self) -> None:
        """Stop the worker threads after their current job."""
        for _ in self._workers:
            self._tasks.put(None)
        for thread in self._workers:
            thread.join(timeout=30.0)
