"""Content-addressed, disk-backed archive of scenario results.

Maps a :meth:`ScenarioSpec.signature` to its archived
:class:`~repro.simulation.runner.ScenarioResult` so a re-submitted
scenario is served from disk instead of re-solved — across processes,
CI runs and hosts.  The layout mirrors ``.reprolint-cache/``:

.. code-block:: text

    .repro-service/
      store/
        <code-hash>/            one directory per code version
          <sig[:2]>/<sig>.json  one entry per scenario signature
      solvecache/               sibling tier: persistent DP/replan
        <code-hash>/            solves (:mod:`repro.core.diskcache`),
          <kind>/<d[:2]>/<d>.npz  salted by the same store_version()

Each entry is a single JSON document carrying the spec (for
inspection), the serialized result, and a **hit counter** that the
service surfaces in its status JSON.  Writes are atomic
(write-temp + ``os.replace``), so a crashed run never leaves a
half-entry that later reads would trust.

Versioning: :func:`store_version` digests the *source bytes* of every
package that determines simulation results (core, simulation, policies,
distributions, traces, cluster, units).  Any code change in those
packages changes the hash, which both salts every new signature and
moves the store to a fresh subdirectory — stale results are never
served, and a wipe is ``rm -rf .repro-service/`` at any time (the store
is a cache, not a database).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.service.envelope import dumps

__all__ = [
    "ResultStore",
    "StoreEntry",
    "default_store_dir",
    "store_version",
]

_STORE_DIR_NAME = ".repro-service"

#: Bump to retire every archived entry on a semantic change that the
#: source hash cannot see (e.g. a serialization layout change).
_STORE_LAYOUT_VERSION = 1

#: Packages whose source determines simulation results; a change to any
#: of them must retire archived results.
_RESULT_PACKAGES = (
    "core",
    "simulation",
    "policies",
    "distributions",
    "traces",
    "cluster",
)

_version_memo: dict[str, str] = {}


def store_version() -> str:
    """Code hash of the result-determining packages (16 hex chars).

    Computed once per process: SHA-256 over ``(relative path, content
    digest)`` of every ``.py`` file under the result-determining
    subpackages of :mod:`repro`, plus ``units.py`` and the layout
    version.  Falls back to the package version string if the source
    tree is unreadable (e.g. a zipapp install).
    """
    cached = _version_memo.get("version")
    if cached is not None:
        return cached
    try:
        import repro

        root = Path(repro.__file__).resolve().parent
        parts: list[str] = [f"layout={_STORE_LAYOUT_VERSION}"]
        files: list[Path] = [root / "units.py"]
        for package in _RESULT_PACKAGES:
            files.extend(sorted((root / package).rglob("*.py")))
        for path in files:
            digest = hashlib.sha256(path.read_bytes()).hexdigest()
            parts.append(f"{path.relative_to(root).as_posix()}:{digest}")
        version = hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]
    except OSError:
        from repro._version import __version__

        version = f"pkg-{__version__}"
    _version_memo["version"] = version
    return version


def default_store_dir() -> Path:
    """``$REPRO_SERVICE_DIR`` or ``.repro-service`` under the CWD."""
    env = os.environ.get("REPRO_SERVICE_DIR")  # reprolint: clock-ok=cache/store location only, never feeds a result
    return Path(env) if env else Path.cwd() / _STORE_DIR_NAME


@dataclass
class StoreEntry:
    """One archived scenario: spec + result + usage accounting."""

    signature: str
    spec: dict[str, Any]
    result: dict[str, Any]
    created_at: float
    hits: int

    def to_doc(self) -> dict[str, Any]:
        """The on-disk JSON document of this entry."""
        return {
            "format": "repro.store/1",
            "store_version": store_version(),
            "signature": self.signature,
            "spec": self.spec,
            "result": self.result,
            "created_at": self.created_at,
            "hits": self.hits,
        }


class ResultStore:
    """The on-disk signature -> result archive.

    Not a server: plain files, safe to share through any filesystem.
    Concurrent writers of the *same* signature are idempotent (they
    write identical content, and ``os.replace`` is atomic); the hit
    counter is advisory and may under-count under races, never
    over-count.
    """

    def __init__(self, root: Path | None = None):
        base = Path(root) if root is not None else default_store_dir()
        self._base = base
        self.root = base / "store" / store_version()

    # -- paths ---------------------------------------------------------

    def _entry_path(self, signature: str) -> Path:
        return self.root / signature[:2] / f"{signature}.json"

    # -- read ----------------------------------------------------------

    def _load(self, signature: str) -> StoreEntry | None:
        path = self._entry_path(signature)
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if doc.get("signature") != signature:
            return None
        return StoreEntry(
            signature=signature,
            spec=doc.get("spec", {}),
            result=doc.get("result", {}),
            created_at=float(doc.get("created_at", 0.0)),
            hits=int(doc.get("hits", 0)),
        )

    def peek(self, signature: str) -> StoreEntry | None:
        """Read an entry without touching its hit counter."""
        return self._load(signature)

    def get(self, signature: str) -> StoreEntry | None:
        """Read an entry and record the hit (persisted best-effort)."""
        entry = self._load(signature)
        if entry is None:
            return None
        entry.hits += 1
        try:
            self._write(entry)
        except OSError:
            pass  # the result is still served; only the counter lags
        return entry

    # -- write ---------------------------------------------------------

    def _write(self, entry: StoreEntry) -> None:
        path = self._entry_path(entry.signature)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        tmp.write_text(dumps(entry.to_doc(), indent=2) + "\n")
        os.replace(tmp, path)

    def put(
        self,
        signature: str,
        spec: dict[str, Any],
        result: dict[str, Any],
    ) -> StoreEntry:
        """Archive a solved scenario (idempotent per signature)."""
        existing = self._load(signature)
        if existing is not None:
            return existing
        entry = StoreEntry(
            signature=signature,
            spec=spec,
            result=result,
            created_at=time.time(),
            hits=0,
        )
        self._write(entry)
        return entry

    # -- maintenance ---------------------------------------------------

    def entries(self) -> Iterator[StoreEntry]:
        """Every readable entry of the current code version."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            entry = self._load(path.stem)
            if entry is not None:
                yield entry

    def stats(self) -> dict[str, Any]:
        """Aggregate counters for the status/store JSON, including the
        sibling persistent solve tier (the daemon and every CLI process
        share both through the same ``.repro-service/`` root)."""
        n = 0
        hits = 0
        for entry in self.entries():
            n += 1
            hits += entry.hits
        from repro.core.diskcache import DiskSolveCache, get_disk_cache

        # the process-wide cache when it shares this store's base (live
        # counters), else a read view rooted beside this store
        disk = get_disk_cache()
        if disk.tier_root.parent != self._base:
            disk = DiskSolveCache(root=self._base)
        return {
            "root": str(self.root),
            "store_version": store_version(),
            "entries": n,
            "total_hits": hits,
            "solvecache": disk.usage(),
        }

    def wipe(self) -> int:
        """Delete every entry of the current code version; returns the
        number removed.  (Old-version subdirectories are dead weight —
        remove the whole ``.repro-service/`` directory to reclaim them.)
        """
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed
