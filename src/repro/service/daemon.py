"""``repro serve``: the scenario daemon's HTTP surface.

A deliberately small, stdlib-only server (no framework dependency) that
fronts a :class:`~repro.service.queue.JobQueue` on localhost TCP or a
unix socket.  Every response body is the same JSON envelope the CLI
prints (:mod:`repro.service.envelope`), so ``curl | jq`` and the
``repro submit``/``status``/``result`` subcommands see one contract.

Routes (all under ``/v1``):

========  ======================  ==========================================
method    path                    meaning
========  ======================  ==========================================
GET       /v1/health              liveness + version + store stats
POST      /v1/jobs                submit ``{"spec": {...}, "execution": {}}``
GET       /v1/jobs                list all jobs (status snapshots)
GET       /v1/jobs/<id>           one job's status
GET       /v1/jobs/<id>/result    archived result (409 until terminal)
GET       /v1/jobs/<id>/stream    NDJSON status stream until terminal
POST      /v1/batches             submit a sweep: ``{"specs": [...]}`` or
                                  ``{"base": {...}, "grid": {...}}``
GET       /v1/batches             list all batches (status snapshots)
GET       /v1/batches/<id>        one batch's aggregate status
GET       /v1/store               result-store stats
POST      /v1/shutdown            graceful stop
========  ======================  ==========================================

A batch is one sweep: every point becomes a member job with the usual
coalesce/cached semantics, points are grouped by trace signature and
each group executes over one shared trace set
(:meth:`~repro.service.queue.JobQueue.submit_batch`).  The batch body
may carry ``"execution"`` knobs and ``"use_sweep_plan": false`` (the
bit-identical independent-runs escape hatch).  Member jobs stay
individually addressable under ``/v1/jobs/<id>``.

HTTP status mirrors envelope exit codes: 200 for ``ok``, 400 for bad
requests, 404 for unknown jobs, 409 for not-ready results, 500 for
internal failures.  Request logs go to stderr (the human channel).
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro._version import __version__
from repro.service.envelope import dumps, envelope, error_envelope, hlog
from repro.service.queue import ExecutionOptions, JobQueue
from repro.service.spec import ScenarioSpec, SpecError, expand_grid

__all__ = ["ServiceDaemon"]

_MAX_BODY = 1 << 20  # 1 MiB: specs are tiny; reject anything bigger
_STREAM_POLL = 0.1  # seconds between stream status snapshots


class _UnixHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to a unix-domain socket path."""

    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        path = self.server_address
        if isinstance(path, (bytes, str)) and os.path.exists(path):
            os.unlink(path)  # stale socket from a dead daemon
        socketserver.TCPServer.server_bind(self)

    def server_close(self) -> None:
        super().server_close()
        path = self.server_address
        try:
            if isinstance(path, (bytes, str)):
                os.unlink(path)
        except OSError:
            pass  # already removed; nothing to clean up


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the daemon; one instance per request."""

    daemon: "ServiceDaemon"  # injected by the factory
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        hlog(f"[serve] {self.command} {self.path} {args[1] if len(args) > 1 else ''}")

    def address_string(self) -> str:
        # AF_UNIX peers have no address tuple
        if isinstance(self.client_address, str):
            return self.client_address or "unix"
        return super().address_string()

    def _send(self, status: int, env: dict[str, Any]) -> None:
        body = (dumps(env, indent=2) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _safe_send(
        self, status: int, exc_type: str, message: str, exit_code: int = 2
    ) -> None:
        """Build and send an error envelope without letting the attempt
        itself kill the handler thread: when the peer is gone (broken
        pipe) or the envelope cannot serialize, the failure is logged
        and swallowed — there is no further channel to report it on."""
        try:
            env = error_envelope(
                "service.error", exc_type, message, exit_code=exit_code
            )
            self._send(status, env)
        except Exception as exc:
            hlog(f"[serve] failed to send error response: {exc!r}")

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            raise ValueError(f"request body too large ({length} bytes)")
        if length == 0:
            return {}
        doc = json.loads(self.rfile.read(length).decode())
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        return doc

    # -- verbs ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._route("POST")

    def _route(self, method: str) -> None:
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        try:
            self._dispatch(method, parts)
        except (ValueError, SpecError) as exc:
            self._safe_send(400, type(exc).__name__, str(exc))
        except KeyError as exc:
            self._safe_send(
                404, "NotFound", str(exc.args[0] if exc.args else exc))
        except LookupError as exc:
            self._safe_send(409, "NotReady", str(exc), exit_code=1)
        except Exception as exc:
            self._safe_send(500, type(exc).__name__, str(exc))

    def _dispatch(self, method: str, parts: list[str]) -> None:
        queue = self.daemon.queue
        if parts[:1] != ["v1"]:
            raise KeyError(f"unknown path {self.path!r}")
        tail = parts[1:]
        if method == "GET" and tail == ["health"]:
            self._send(200, envelope("service.health", self.daemon.health()))
        elif method == "POST" and tail == ["jobs"]:
            body = self._read_body()
            spec = ScenarioSpec.from_dict(body.get("spec") or {})
            execution = ExecutionOptions.from_dict(body.get("execution"))
            job = queue.submit(spec, execution)
            self._send(200, envelope("service.submit", job.to_status_dict()))
        elif method == "GET" and tail == ["jobs"]:
            self._send(200, envelope("service.jobs", {"jobs": queue.jobs()}))
        elif method == "GET" and len(tail) == 2 and tail[0] == "jobs":
            self._send(200, envelope("service.status", queue.status(tail[1])))
        elif method == "GET" and len(tail) == 3 and tail[:1] == ["jobs"] \
                and tail[2] == "result":
            doc = queue.result(tail[1])
            self._send(200, envelope("service.result", {
                "job_id": tail[1],
                "status": queue.status(tail[1]),
                "result": doc,
            }))
        elif method == "GET" and len(tail) == 3 and tail[:1] == ["jobs"] \
                and tail[2] == "stream":
            self._stream(tail[1])
        elif method == "POST" and tail == ["batches"]:
            body = self._read_body()
            specs = self._batch_specs(body)
            execution = ExecutionOptions.from_dict(body.get("execution"))
            use_sweep_plan = body.get("use_sweep_plan", True)
            if not isinstance(use_sweep_plan, bool):
                raise ValueError("use_sweep_plan must be a boolean")
            batch = queue.submit_batch(
                specs, execution, use_sweep_plan=use_sweep_plan
            )
            self._send(200, envelope(
                "service.batch", queue.batch_status(batch.batch_id)
            ))
        elif method == "GET" and tail == ["batches"]:
            self._send(200, envelope(
                "service.batches", {"batches": queue.batches()}
            ))
        elif method == "GET" and len(tail) == 2 and tail[0] == "batches":
            self._send(200, envelope(
                "service.batch", queue.batch_status(tail[1])
            ))
        elif method == "GET" and tail == ["store"]:
            self._send(200, envelope("service.store", queue.store.stats()))
        elif method == "POST" and tail == ["shutdown"]:
            self._send(200, envelope("service.shutdown", {"stopping": True}))
            self.daemon.stop_async()
        else:
            raise KeyError(f"unknown route {method} {self.path!r}")

    def _batch_specs(self, body: dict[str, Any]) -> list[ScenarioSpec]:
        """The point list of a batch body: an explicit ``"specs"`` list
        or a ``"base"`` + ``"grid"`` pair expanded server-side (exactly
        one of the two forms)."""
        has_specs = "specs" in body
        has_grid = "base" in body or "grid" in body
        if has_specs and has_grid:
            raise ValueError("give either 'specs' or 'base'+'grid', not both")
        if has_specs:
            raw_specs = body["specs"]
            if not isinstance(raw_specs, list) or not raw_specs:
                raise ValueError("'specs' must be a non-empty list")
            return [ScenarioSpec.from_dict(raw) for raw in raw_specs]
        if has_grid:
            base = body.get("base") or {}
            grid = body.get("grid") or {}
            if not isinstance(base, dict) or not isinstance(grid, dict):
                raise ValueError("'base' and 'grid' must be objects")
            return expand_grid(base, grid)
        raise ValueError("batch body needs 'specs' or 'base'+'grid'")

    def _stream(self, job_id: str) -> None:
        """NDJSON stream of status snapshots until the job is terminal."""
        queue = self.daemon.queue
        status = queue.status(job_id)  # raises KeyError before headers go out
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

        def write_chunk(doc: dict[str, Any]) -> None:
            data = (dumps(doc) + "\n").encode()
            self.wfile.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
            self.wfile.flush()

        while True:
            write_chunk(status)
            if status["state"] in ("done", "failed", "cached"):
                break
            queue.wait(job_id, timeout=_STREAM_POLL)
            status = queue.status(job_id)
        self.wfile.write(b"0\r\n\r\n")


class ServiceDaemon:
    """Owns the HTTP server + job queue pair behind ``repro serve``."""

    def __init__(
        self,
        queue: JobQueue | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: str | None = None,
    ):
        self.queue = queue if queue is not None else JobQueue()
        self.socket_path = socket_path
        self.started_at = time.time()
        handler = type("_BoundHandler", (_Handler,), {"daemon": self})
        if socket_path is not None:
            self._server: ThreadingHTTPServer = _UnixHTTPServer(
                socket_path, handler
            )
            self.endpoint = f"unix:{socket_path}"
        else:
            self._server = ThreadingHTTPServer((host, port), handler)
            bound_host, bound_port = self._server.server_address[:2]
            self.endpoint = f"http://{bound_host}:{bound_port}"
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop`."""
        hlog(f"[serve] listening on {self.endpoint}")
        try:
            self._server.serve_forever(poll_interval=0.2)
        finally:
            self._server.server_close()
            self.queue.shutdown()
            hlog("[serve] stopped")

    def start(self) -> None:
        """Serve on a background thread (tests, embedded use)."""
        self._thread = threading.Thread(
            target=self.serve_forever, daemon=True, name="repro-serve"
        )
        self._thread.start()

    def stop(self) -> None:
        """Graceful stop; waits for the server thread if one exists."""
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def stop_async(self) -> None:
        """Initiate a stop from inside a request handler (shutdown()
        blocks until the serve loop exits, so it must not run on a
        handler thread)."""
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    # -- status --------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """The ``/v1/health`` payload: liveness, version, store stats."""
        return {
            "status": "ok",
            "version": __version__,
            "endpoint": self.endpoint,
            "uptime": time.time() - self.started_at,
            "store": self.queue.store.stats(),
        }
