"""Stdlib client for the scenario daemon.

Speaks the envelope protocol of :mod:`repro.service.daemon` over
localhost TCP (``http://host:port``) or a unix socket
(``unix:/path/to.sock``).  Used by the ``repro submit`` / ``status`` /
``result`` subcommands and by tests; has no dependency beyond
``http.client``.

Transport problems and non-envelope responses raise
:class:`ServiceError`; *domain* failures (unknown job, job failed)
come back as normal envelopes with ``ok: false`` so callers can relay
them verbatim.
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import time
from typing import Any, Iterator

from repro.service.envelope import dumps, jsonable, validate_envelope

__all__ = ["DEFAULT_ENDPOINT", "ServiceClient", "ServiceError"]

#: Where ``repro serve`` listens unless told otherwise, and where the
#: client subcommands connect unless ``--endpoint`` / $REPRO_ENDPOINT says
#: otherwise.
DEFAULT_ENDPOINT = "http://127.0.0.1:8642"


class ServiceError(RuntimeError):
    """The daemon could not be reached or spoke a foreign protocol."""


class _UnixHTTPConnection(http.client.HTTPConnection):
    """HTTPConnection whose transport is a unix-domain socket."""

    def __init__(self, path: str, timeout: float | None = None):
        super().__init__("localhost", timeout=timeout)
        self._path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._path)
        self.sock = sock


def default_endpoint() -> str:
    """``$REPRO_ENDPOINT`` or the well-known localhost port."""
    return os.environ.get("REPRO_ENDPOINT", DEFAULT_ENDPOINT)


class ServiceClient:
    """Thin request/response wrapper over one daemon endpoint."""

    def __init__(self, endpoint: str | None = None, timeout: float = 30.0):
        self.endpoint = endpoint if endpoint is not None else default_endpoint()
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self.endpoint.startswith("unix:"):
            return _UnixHTTPConnection(
                self.endpoint[len("unix:"):], timeout=self.timeout
            )
        if self.endpoint.startswith("http://"):
            hostport = self.endpoint[len("http://"):].rstrip("/")
            return http.client.HTTPConnection(hostport, timeout=self.timeout)
        raise ServiceError(
            f"endpoint must be http://host:port or unix:/path, "
            f"got {self.endpoint!r}"
        )

    def request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """One envelope round-trip; raises :class:`ServiceError` on
        transport failure or a malformed response."""
        conn = self._connection()
        try:
            payload = dumps(jsonable(body)) if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read().decode()
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceError(
                f"cannot reach daemon at {self.endpoint}: {exc}"
            ) from exc
        finally:
            conn.close()
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"daemon at {self.endpoint} returned non-JSON: {raw[:200]!r}"
            ) from exc
        problems = validate_envelope(doc)
        if problems:
            raise ServiceError(
                f"daemon returned a malformed envelope: {problems}"
            )
        return doc

    # -- API -----------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Daemon liveness, version and store stats."""
        return self.request("GET", "/v1/health")

    def submit(
        self,
        spec: dict[str, Any],
        execution: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Submit a scenario spec (plus optional execution knobs)."""
        body: dict[str, Any] = {"spec": spec}
        if execution:
            body["execution"] = execution
        return self.request("POST", "/v1/jobs", body)

    def jobs(self) -> dict[str, Any]:
        """Status snapshots of every job the daemon knows."""
        return self.request("GET", "/v1/jobs")

    def status(self, job_id: str) -> dict[str, Any]:
        """One job's status snapshot (state, progress, hit counter)."""
        return self.request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict[str, Any]:
        """A finished job's archived result document."""
        return self.request("GET", f"/v1/jobs/{job_id}/result")

    def submit_batch(
        self,
        specs: list[dict[str, Any]] | None = None,
        base: dict[str, Any] | None = None,
        grid: dict[str, Any] | None = None,
        execution: dict[str, Any] | None = None,
        use_sweep_plan: bool = True,
    ) -> dict[str, Any]:
        """Submit a sweep batch: an explicit spec list, or a base spec
        plus grid axes expanded server-side (exactly one of the two)."""
        body: dict[str, Any] = {}
        if specs is not None:
            body["specs"] = specs
        if base is not None:
            body["base"] = base
        if grid is not None:
            body["grid"] = grid
        if execution:
            body["execution"] = execution
        if not use_sweep_plan:
            body["use_sweep_plan"] = False
        return self.request("POST", "/v1/batches", body)

    def batches(self) -> dict[str, Any]:
        """Status snapshots of every batch the daemon knows."""
        return self.request("GET", "/v1/batches")

    def batch_status(self, batch_id: str) -> dict[str, Any]:
        """One batch's aggregate status (overall state, member jobs)."""
        return self.request("GET", f"/v1/batches/{batch_id}")

    def wait_batch(
        self,
        batch_id: str,
        timeout: float | None = None,
        poll: float = 0.2,
    ) -> dict[str, Any]:
        """Poll until every member job is terminal; returns the final
        batch envelope.  Raises :class:`ServiceError` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            env = self.batch_status(batch_id)
            state = (env.get("data") or {}).get("state")
            if state in ("done", "failed") or not env["ok"]:
                return env
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout}s waiting for {batch_id}"
                )
            time.sleep(poll)

    def store_stats(self) -> dict[str, Any]:
        """Result-store counters (entries, total hits, root, version)."""
        return self.request("GET", "/v1/store")

    def shutdown(self) -> dict[str, Any]:
        """Ask the daemon to stop after answering this request."""
        return self.request("POST", "/v1/shutdown")

    def wait(
        self,
        job_id: str,
        timeout: float | None = None,
        poll: float = 0.2,
    ) -> dict[str, Any]:
        """Poll until the job is terminal; returns the final envelope.

        Raises :class:`ServiceError` on timeout — polling longer is the
        caller's decision, not a silent hang.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            env = self.status(job_id)
            state = (env.get("data") or {}).get("state")
            if state in ("done", "failed", "cached") or not env["ok"]:
                return env
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout}s waiting for {job_id}"
                )
            time.sleep(poll)

    def stream(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Yield NDJSON status snapshots until the job is terminal."""
        conn = self._connection()
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/stream")
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read().decode()
                raise ServiceError(f"stream failed: {raw[:200]}")
            buffer = b""
            while True:
                chunk = response.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line)
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceError(f"stream transport failure: {exc}") from exc
        finally:
            conn.close()
