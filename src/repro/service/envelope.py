"""The CLI/service JSON envelope: stdout is always machine-readable.

Design rule (modelled on SimCash's CLI plan, SNIPPETS.md section 2):
**stdout carries exactly one JSON document; every human-readable line
goes to stderr.**  The document is an *envelope* with a fixed shape so
pipelines never have to sniff which subcommand produced it:

.. code-block:: json

    {
      "schema": "repro/v1",
      "command": "run",
      "ok": true,
      "exit_code": 0,
      "data": { "...": "command-specific payload" },
      "error": null
    }

On failure ``ok`` is false, ``data`` may be null, and ``error`` holds
``{"type", "message"}``.  Exit-code semantics are uniform:

- ``0`` — success;
- ``1`` — domain failure (infeasible policy, lint findings, job failed);
- ``2`` — usage or internal error (bad arguments, unreachable daemon,
  parse errors).

The one documented exemption is ``repro lint --format sarif``, whose
stdout is a raw SARIF document — still a single valid JSON document,
just not wrapped (CI archives it as-is).

Floats are encoded exactly: finite values round-trip bit-identically
through ``json`` (repr-based), and the non-finite values JSON cannot
carry are spelled as the strings ``"NaN"``, ``"Infinity"`` and
``"-Infinity"`` (see :func:`jsonable` / :func:`from_jsonable`).
"""

from __future__ import annotations

import json
import math
import sys
from typing import Any, TextIO

__all__ = [
    "SCHEMA",
    "dumps",
    "emit",
    "emit_raw",
    "envelope",
    "error_envelope",
    "from_jsonable",
    "hlog",
    "jsonable",
    "validate_envelope",
]

#: Envelope schema identifier; bump on any breaking envelope change.
SCHEMA = "repro/v1"

_NONFINITE = {"NaN": math.nan, "Infinity": math.inf, "-Infinity": -math.inf}


def jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into strict-JSON-safe primitives.

    Finite floats pass through untouched (``json`` preserves them
    bit-exactly); NaN and the infinities become their string names so
    the output stays valid under strict parsers (``allow_nan=False``).
    Numpy scalars and arrays are lowered to Python numbers and lists.
    """
    # Lazy numpy lowering keeps this importable without the array stack.
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "shape", None) == ():
        return jsonable(item())
    tolist = getattr(value, "tolist", None)
    if tolist is not None:
        return jsonable(tolist())
    raise TypeError(f"not JSON-encodable: {type(value).__name__}")


def from_jsonable(value: Any) -> Any:
    """Inverse of :func:`jsonable` for float payloads: turn the string
    spellings of non-finite floats back into floats, recursively."""
    if isinstance(value, str) and value in _NONFINITE:
        return _NONFINITE[value]
    if isinstance(value, dict):
        return {k: from_jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [from_jsonable(v) for v in value]
    return value


def dumps(payload: Any, indent: int | None = None) -> str:
    """Strict JSON encoding of an already-:func:`jsonable` payload."""
    return json.dumps(payload, allow_nan=False, indent=indent, sort_keys=False)


def envelope(
    command: str,
    data: Any,
    ok: bool = True,
    exit_code: int = 0,
    error: dict[str, str] | None = None,
) -> dict[str, Any]:
    """Assemble the stable envelope around a command payload."""
    return {
        "schema": SCHEMA,
        "command": command,
        "ok": bool(ok),
        "exit_code": int(exit_code),
        "data": jsonable(data),
        "error": error,
    }


def error_envelope(
    command: str, exc_type: str, message: str, exit_code: int = 2
) -> dict[str, Any]:
    """Envelope for a failed command; ``data`` is null."""
    return envelope(
        command,
        None,
        ok=False,
        exit_code=exit_code,
        error={"type": exc_type, "message": str(message)},
    )


def emit(env: dict[str, Any], stream: TextIO | None = None) -> int:
    """Print an envelope to stdout and return its exit code.

    The single place CLI subcommands write stdout through, so the
    "stdout is one JSON document" contract has one enforcement point.
    """
    out = stream if stream is not None else sys.stdout
    out.write(dumps(env, indent=2))
    out.write("\n")
    out.flush()
    return int(env["exit_code"])


def emit_raw(document: str, stream: TextIO | None = None) -> None:
    """Print a pre-rendered JSON document to stdout, unwrapped.

    The escape hatch for the documented envelope exemptions (the SARIF
    report): still one JSON document on stdout, just not an envelope.
    Going through here keeps ``emit``/``emit_raw`` the only two stdout
    writers, which is what R11 statically enforces.
    """
    out = stream if stream is not None else sys.stdout
    out.write(document)
    if not document.endswith("\n"):
        out.write("\n")
    out.flush()


def hlog(message: str, stream: TextIO | None = None) -> None:
    """Human-readable log line; always stderr, never stdout."""
    err = stream if stream is not None else sys.stderr
    err.write(message)
    err.write("\n")


_REQUIRED_KEYS = ("schema", "command", "ok", "exit_code", "data", "error")


def validate_envelope(doc: Any) -> list[str]:
    """Structural check of an envelope; returns problems (empty = valid).

    Used by the JSON-contract tests and by clients that want to fail
    fast on a foreign or corrupted document.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"envelope must be an object, got {type(doc).__name__}"]
    for key in _REQUIRED_KEYS:
        if key not in doc:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems
    if doc["schema"] != SCHEMA:
        problems.append(f"schema {doc['schema']!r} != {SCHEMA!r}")
    if not isinstance(doc["command"], str):
        problems.append("command must be a string")
    if not isinstance(doc["ok"], bool):
        problems.append("ok must be a boolean")
    if not isinstance(doc["exit_code"], int) or isinstance(doc["exit_code"], bool):
        problems.append("exit_code must be an integer")
    if doc["error"] is not None:
        err = doc["error"]
        if not isinstance(err, dict) or not {"type", "message"} <= set(err):
            problems.append("error must be null or {type, message}")
    if doc["ok"] and doc["error"] is not None:
        problems.append("ok=true must carry error=null")
    if doc["ok"] and doc["exit_code"] != 0:
        problems.append("ok=true must carry exit_code=0")
    if not doc["ok"] and doc["exit_code"] == 0:
        problems.append("ok=false must carry a nonzero exit_code")
    return problems
