"""Scenario service: always-JSON CLI contract, job queue, result store.

The service layer turns the one-shot runner into a long-lived scenario
daemon (``repro serve``) with a submit/poll/stream API backed by the
PR-1/4/5 execution tier (:class:`~repro.simulation.parallel.ParallelRunner`,
batch replay, replan memo, shared-memory ensembles).  Its pieces:

- :mod:`repro.service.envelope` — the stable JSON envelope every
  ``repro`` subcommand prints on stdout (human logs go to stderr);
- :mod:`repro.service.spec` — :class:`ScenarioSpec`, the canonical
  scenario description and its content-addressed signature;
- :mod:`repro.service.serialize` — bit-exact
  :class:`~repro.simulation.runner.ScenarioResult` <-> JSON codecs;
- :mod:`repro.service.store` — the on-disk content-addressed result
  store (signature -> archived result, versioned by code hash);
- :mod:`repro.service.queue` — the in-daemon job queue that shards
  scenario batches across ParallelRunner workers;
- :mod:`repro.service.daemon` — the local HTTP / unix-socket server;
- :mod:`repro.service.client` — the stdlib client the CLI subcommands
  ``submit`` / ``status`` / ``result`` speak through.

See ``docs/service.md`` for the architecture and lifecycle, and
``docs/usage.md`` for the CLI contract.
"""

from __future__ import annotations

from repro.service.client import ServiceClient, ServiceError
from repro.service.envelope import (
    SCHEMA,
    envelope,
    error_envelope,
    hlog,
    validate_envelope,
)
from repro.service.queue import JobQueue, JobRecord
from repro.service.serialize import (
    scenario_result_from_dict,
    scenario_result_to_dict,
)
from repro.service.spec import ScenarioSpec
from repro.service.store import ResultStore, store_version

__all__ = [
    "SCHEMA",
    "JobQueue",
    "JobRecord",
    "ResultStore",
    "ScenarioSpec",
    "ServiceClient",
    "ServiceError",
    "envelope",
    "error_envelope",
    "hlog",
    "scenario_result_from_dict",
    "scenario_result_to_dict",
    "store_version",
    "validate_envelope",
]
