"""End-to-end service smoke check (``make service-smoke``).

Boots a real daemon as a subprocess, drives it through the real CLI
(``repro submit`` / ``status`` / ``result``), and asserts the two
acceptance properties of the scenario service:

1. **bit-identity** — the result fetched through submit → poll →
   result equals a direct ``repro run`` of the same spec, field for
   field, under canonical JSON;
2. **store hit** — re-submitting the same scenario signature is
   answered from the result store (state ``cached``) with the hit
   counter visible in the status JSON.

Run it as ``python -m repro.service.smoke``; exits 0 on success, 1 on
any property violation, with a step-by-step narrative on stderr.  CI
runs this against every push (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.service.envelope import validate_envelope

__all__ = ["main"]

#: A deliberately tiny scenario: two fast analytical policies, two
#: traces, two hours of work — seconds of wall clock, yet it exercises
#: spec canonicalization, the queue, the store and serialization.
_SPEC_ARGS = [
    "--work", "2h", "--mtbf", "4h", "--traces", "2",
    "--policies", "young,dalylow",
]

_STARTUP_DEADLINE = 30.0


def _say(message: str) -> None:
    print(f"[smoke] {message}", file=sys.stderr)


def _cli(*args: str, check: bool = True) -> dict[str, Any]:
    """Run one ``repro`` subcommand; parse + validate its envelope."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
    )
    if check and proc.returncode != 0:
        _say(f"command {' '.join(args)} exited {proc.returncode}")
        _say(proc.stderr)
        raise SystemExit(1)
    try:
        env = json.loads(proc.stdout)
    except json.JSONDecodeError:
        _say(f"non-JSON stdout from {' '.join(args)}: {proc.stdout[:200]!r}")
        raise SystemExit(1) from None
    problems = validate_envelope(env)
    if problems:
        _say(f"malformed envelope from {' '.join(args)}: {problems}")
        raise SystemExit(1)
    return env


def _wait_for_endpoint(daemon: subprocess.Popen[str]) -> str:
    """Read the daemon's startup envelope from its stdout."""
    deadline = time.monotonic() + _STARTUP_DEADLINE
    assert daemon.stdout is not None
    buffer = ""
    while time.monotonic() < deadline:
        if daemon.poll() is not None:
            _say(f"daemon exited early with {daemon.returncode}")
            raise SystemExit(1)
        buffer += daemon.stdout.readline()
        try:
            env = json.loads(buffer)
        except json.JSONDecodeError:
            continue
        return str(env["data"]["endpoint"])
    _say("daemon did not announce an endpoint in time")
    raise SystemExit(1)


def _result_payload(env: dict[str, Any]) -> dict[str, Any]:
    """The comparable part of a result doc: everything that is a
    *result*, excluding run metadata (elapsed wall-clock, worker count,
    cache counters, scheduler stats) that legitimately differs between
    executions."""
    from repro.service.serialize import comparable_result_payload

    return comparable_result_payload(env["data"]["result"])


def main() -> int:
    """Run the smoke sequence; 0 = all properties hold, 1 = violation."""
    tmp = tempfile.mkdtemp(prefix="repro-smoke-")
    store_dir = Path(tmp) / ".repro-service"
    _say(f"store at {store_dir}")

    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--store-dir", str(store_dir)],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    try:
        endpoint = _wait_for_endpoint(daemon)
        _say(f"daemon up at {endpoint}")
        os.environ["REPRO_ENDPOINT"] = endpoint

        # 1. submit → wait → result through the daemon
        env = _cli("submit", *_SPEC_ARGS, "--wait", "--timeout", "120")
        job_id = env["data"]["job_id"]
        signature = env["data"]["signature"]
        state = env["data"]["state"]
        _say(f"{job_id} ({signature[:12]}) -> {state}")
        if state != "done":
            _say(f"expected first submit to end 'done', got {state!r}")
            return 1
        via_daemon = _cli("result", job_id)

        # 2. the same spec run directly, no daemon involved
        direct = _cli("run", *_SPEC_ARGS)
        if direct["data"]["signature"] != signature:
            _say("CLI and daemon disagree on the scenario signature")
            return 1
        a = json.dumps(_result_payload(via_daemon), sort_keys=True)
        b = json.dumps(_result_payload(direct), sort_keys=True)
        if a != b:
            _say("FAIL: daemon result differs from direct run")
            return 1
        _say("bit-identity: daemon result == direct run")

        # 3. resubmit: must be served from the store, hit counter up
        env = _cli("submit", *_SPEC_ARGS)
        if env["data"]["state"] != "cached":
            _say(f"expected resubmit state 'cached', got "
                 f"{env['data']['state']!r}")
            return 1
        if int(env["data"]["store_hits"]) < 1:
            _say("store hit counter did not advance")
            return 1
        _say(f"resubmit served from store "
             f"(hits={env['data']['store_hits']})")

        # 4. the status listing shows both jobs, terminal
        env = _cli("status")
        states = {j["job_id"]: j["state"] for j in env["data"]["jobs"]}
        if len(states) != 2 or set(states.values()) != {"done", "cached"}:
            _say(f"unexpected job listing: {states}")
            return 1

        # 5. store stats agree
        env = _cli("store", "--store-dir", str(store_dir))
        if env["data"]["entries"] != 1 or env["data"]["total_hits"] < 1:
            _say(f"unexpected store stats: {env['data']}")
            return 1
        _say("service smoke PASSED")
        return 0
    finally:
        daemon.terminate()
        try:
            daemon.wait(timeout=10)
        except subprocess.TimeoutExpired:
            daemon.kill()


if __name__ == "__main__":
    sys.exit(main())
