"""Discrete-event engine executing a tightly-coupled job against a
failure trace.

The engine walks the merged, sorted platform failure stream and handles:

- failures during chunk execution and during checkpointing (the work of
  the current chunk is lost);
- downtime ``D`` of the failed unit while the other units idle;
- *cascading* failures: units failing while another unit is down extend
  the outage (the platform resumes only when every unit is up);
- failures during recovery ``R`` (the recovery is restarted);
- per-unit lifetime tracking so that policies can query processor ages.

Two entry points: :func:`simulate_job` runs a
:class:`repro.policies.base.Policy`; :func:`simulate_lower_bound` runs
the omniscient LowerBound that checkpoints exactly ``C`` before each
failure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.distributions.base import FailureDistribution
from repro.simulation.results import SimulationResult
from repro.traces.generation import JobTraces

__all__ = ["JobContext", "simulate_job", "simulate_lower_bound"]

_WORK_EPS = 1e-6  # seconds of work considered "done"


@dataclass
class JobContext:
    """Runtime information exposed to checkpointing policies."""

    checkpoint: float
    recovery: float
    downtime: float
    dist: FailureDistribution
    work_time: float
    n_units: int
    platform_mtbf: float
    t0: float
    time: float = 0.0
    # None until the context is bound to a running simulation (the batch
    # engine probes static schedules with an unbound context).
    _lifetime_start: np.ndarray | None = None

    @property
    def ages(self) -> np.ndarray:
        """Per-unit time since the start of the current lifetime."""
        if self._lifetime_start is None:
            raise ValueError(
                "context is not bound to a running simulation; per-unit "
                "ages are only available from the scalar engine"
            )
        return np.maximum(self.time - self._lifetime_start, 0.0)

    @property
    def age(self) -> float:
        """Age of the single unit (sequential-job convenience)."""
        if self._lifetime_start is None or self._lifetime_start.size != 1:
            raise ValueError("age is only defined for single-unit jobs")
        return float(max(self.time - self._lifetime_start[0], 0.0))


class _Engine:
    """Shared failure-handling machinery."""

    def __init__(self, traces: JobTraces, recovery: float, t0: float):
        self.times = traces.times
        self.units = traces.units
        self.n = self.times.size
        self.d = traces.downtime
        self.r = recovery
        self.lifetime_start = traces.lifetime_starts_at(t0)
        self.i = traces.next_event_index(t0)
        self.n_failures = 0
        # Wait for any unit still in downtime at submission.
        self.t = max(t0, float(self.lifetime_start.max(initial=0.0)))

    def peek_next_failure(self) -> float:
        """Time of the next live failure event (inf if none), skipping
        events that fall inside the emitting unit's own downtime."""
        while self.i < self.n and (
            self.times[self.i] < self.lifetime_start[self.units[self.i]]
        ):
            self.i += 1
        return float(self.times[self.i]) if self.i < self.n else math.inf

    def _absorb_outage(self, avail: float) -> float:
        """Consume every failure event up to ``avail`` (cascades extend
        the window); return the time all units are up again."""
        while self.i < self.n and self.times[self.i] <= avail:
            tf = float(self.times[self.i])
            u = self.units[self.i]
            if tf >= self.lifetime_start[u]:
                self.lifetime_start[u] = tf + self.d
                avail = max(avail, tf + self.d)
                self.n_failures += 1
            self.i += 1
        return avail

    def handle_failure(self, tf: float) -> float:
        """Process the failure at ``tf`` (and any cascades), then perform
        the recovery, restarting it if interrupted.  Returns the time at
        which the platform holds a restored checkpoint and can compute.
        """
        u = self.units[self.i]
        self.lifetime_start[u] = tf + self.d
        self.n_failures += 1
        self.i += 1
        avail = self._absorb_outage(tf + self.d)
        while True:
            next_tf = self.peek_next_failure()
            if avail + self.r <= next_tf:
                self.t = avail + self.r
                return self.t
            # recovery interrupted: the failing unit goes down, cascades
            # may extend the outage, then recovery restarts
            u = self.units[self.i]
            self.lifetime_start[u] = next_tf + self.d
            self.n_failures += 1
            self.i += 1
            avail = self._absorb_outage(next_tf + self.d)


def simulate_job(
    policy,
    work_time: float,
    traces: JobTraces,
    checkpoint: float,
    recovery: float,
    dist: FailureDistribution,
    t0: float = 0.0,
    platform_mtbf: float = math.nan,
    max_makespan: float = math.inf,
) -> SimulationResult:
    """Execute ``work_time`` seconds of tightly-coupled computation under
    ``policy`` against the failure trace.

    The policy is consulted at every decision point (job start, after
    each checkpoint, after each recovery) for the next chunk size; a
    chunk costs ``chunk + checkpoint`` seconds and is lost if any unit
    fails before the checkpoint completes.
    """
    eng = _Engine(traces, recovery, t0)
    time_waiting = eng.t - t0
    time_lost = 0.0
    time_outage = 0.0
    ctx = JobContext(
        checkpoint=checkpoint,
        recovery=recovery,
        downtime=traces.downtime,
        dist=dist,
        work_time=work_time,
        n_units=traces.n_units,
        platform_mtbf=platform_mtbf,
        t0=t0,
        time=eng.t,
        _lifetime_start=eng.lifetime_start,
    )
    policy.setup(ctx)
    remaining = work_time
    n_checkpoints = 0
    n_attempts = 0
    chunk_min, chunk_max = math.inf, 0.0
    while remaining > _WORK_EPS:
        ctx.time = eng.t
        w = float(policy.next_chunk(remaining, ctx))
        if not (w > 0):
            raise ValueError(
                f"policy {getattr(policy, 'name', policy)!r} proposed "
                f"non-positive chunk {w!r}"
            )
        w = min(w, remaining)
        chunk_min = min(chunk_min, w)
        chunk_max = max(chunk_max, w)
        n_attempts += 1
        attempt_end = eng.t + w + checkpoint
        tf = eng.peek_next_failure()
        if attempt_end <= tf:
            eng.t = attempt_end
            remaining -= w
            n_checkpoints += 1
        else:
            time_lost += tf - eng.t
            resumed = eng.handle_failure(tf)
            time_outage += resumed - tf
            ctx.time = eng.t
            policy.on_failure(ctx)
        if eng.t - t0 > max_makespan:
            return SimulationResult(
                makespan=math.inf,
                work_time=work_time,
                n_failures=eng.n_failures,
                n_checkpoints=n_checkpoints,
                n_attempts=n_attempts,
                chunk_min=chunk_min if n_attempts else math.nan,
                chunk_max=chunk_max if n_attempts else math.nan,
                completed=False,
                time_lost=time_lost,
                time_outage=time_outage,
                time_waiting=time_waiting,
            )
    return SimulationResult(
        makespan=eng.t - t0,
        work_time=work_time,
        n_failures=eng.n_failures,
        n_checkpoints=n_checkpoints,
        n_attempts=n_attempts,
        chunk_min=chunk_min if n_attempts else math.nan,
        chunk_max=chunk_max if n_attempts else math.nan,
        time_lost=time_lost,
        time_outage=time_outage,
        time_waiting=time_waiting,
    )


def simulate_lower_bound(
    work_time: float,
    traces: JobTraces,
    checkpoint: float,
    recovery: float,
    t0: float = 0.0,
) -> SimulationResult:
    """Omniscient LowerBound: knows every failure date in advance and
    checkpoints exactly ``C`` before each one, losing no work; pays only
    the unavoidable downtimes and recoveries.  Unattainable in practice;
    used as the normalization floor of the degradation metric.
    """
    eng = _Engine(traces, recovery, t0)
    time_waiting = eng.t - t0
    time_lost = 0.0
    time_outage = 0.0
    remaining = work_time
    n_checkpoints = 0
    while remaining > _WORK_EPS:
        tf = eng.peek_next_failure()
        window = tf - eng.t
        if remaining <= window:
            eng.t += remaining
            remaining = 0.0
            break
        useful = max(0.0, window - checkpoint)
        if useful > 0:
            n_checkpoints += 1
        else:
            # window shorter than a checkpoint: the whole window is lost
            time_lost += window
        remaining -= useful
        resumed = eng.handle_failure(tf)
        time_outage += resumed - tf
    return SimulationResult(
        makespan=eng.t - t0,
        work_time=work_time,
        n_failures=eng.n_failures,
        n_checkpoints=n_checkpoints,
        n_attempts=n_checkpoints,
        time_lost=time_lost,
        time_outage=time_outage,
        time_waiting=time_waiting,
    )
