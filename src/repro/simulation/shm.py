"""Shared-memory publication of a scenario's traces and compiled ensemble.

The parallel runner's workers used to *regenerate* every trace batch
they were handed (and recompile a per-batch :class:`TraceEnsemble`) —
once per phase, so a trace could be rebuilt three times per scenario.
This module moves that work to the parent, once:

1. **Publish** (:func:`publish_scenario`): the parent generates all
   traces, compiles one scenario-wide ensemble, and copies the arrays
   into a single ``multiprocessing.shared_memory`` segment.  Only the
   picklable :class:`ScenarioLayout` (segment name + per-array
   offset/shape/dtype + scenario constants) travels to workers.
2. **Attach** (:func:`attach_scenario`): a worker maps the segment,
   copies out the rows its work unit needs — per-trace
   :class:`~repro.traces.generation.JobTraces` slices and a row-subset
   of the ensemble — and detaches immediately.  Row-slicing the global
   ensemble is replay-equivalent to compiling the subset alone: padding
   columns hold ``+inf`` failure times and never influence a replay.

Lifecycle: the parent owns the segment and unlinks it when the scenario
finishes (``ScenarioPublication.close``); workers never unlink.  On
Python < 3.13 attaching registers the segment with the process's
``resource_tracker``, which would unlink it when the *worker* exits, so
the attach path unregisters it (``track=False`` where available).

Failure anywhere — segment creation (size limits, permissions), attach,
reconstruction — must never break a run: callers fall back to per-task
regeneration, which is bit-identical by the determinism anchor
(trace ``i`` is a pure function of ``(platform, horizon, seed, i)``).
Shared memory changes IPC volume only, never results.

Cross-process memo sharing
--------------------------
The second IPC concern of a ``--jobs N`` run is the DPNextFailure
replan memo (:mod:`repro.core.cache`): workers inherit the parent's
memo at fork time but then populate *private* copies — N workers solve
N copies of every replan signature the parent has never seen.  The
memo-delta helpers here close that loop at work-unit exit:

1. a worker snapshots its memo keys before running a unit
   (:func:`memo_snapshot`), and ships the entries it *added* back with
   the unit result (:func:`export_memo_delta` — replan results are a
   chunk array plus scalars, so deltas are cheap to pickle);
2. the parent folds every delta into its own memo
   (:func:`merge_memo_delta`), so the pools of later phases fork
   already warm, and in-process callers (the daemon, subsequent
   scenarios) hit immediately.

Within a single phase, workers additionally share solves through the
persistent disk tier (:mod:`repro.core.diskcache`): the first worker
to solve a signature persists it and every other worker's memo miss
becomes a disk hit.  Both channels move bit-identical result objects
around — the memo key captures the full solve input — so sharing never
changes results, only who computes them.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from repro.simulation.batch import TraceEnsemble
from repro.traces.generation import JobTraces

__all__ = [
    "ScenarioLayout",
    "ScenarioPublication",
    "AttachedScenario",
    "publish_scenario",
    "attach_scenario",
    "memo_snapshot",
    "export_memo_delta",
    "merge_memo_delta",
]


@dataclass(frozen=True)
class _ArraySpec:
    """Location of one array inside the shared segment."""

    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class ScenarioLayout:
    """Picklable recipe a worker needs to attach to a publication."""

    shm_name: str
    specs: dict[str, _ArraySpec]
    n_units: int
    downtime: float
    horizon: float
    recovery: float
    t0: float
    has_ensemble: bool


class ScenarioPublication:
    """Parent-side handle: owns the segment until :meth:`close`."""

    def __init__(self, shm: shared_memory.SharedMemory, layout: ScenarioLayout):
        self._shm = shm
        self.layout = layout

    @property
    def nbytes(self) -> int:
        """Size of the shared segment in bytes (sweep/runner stats:
        with grouped scenarios this is paid once per group, not once
        per grid point)."""
        return self._shm.size

    def close(self) -> None:
        """Release and remove the segment (idempotent)."""
        with contextlib.suppress(Exception):
            self._shm.close()
        with contextlib.suppress(Exception):
            self._shm.unlink()


def publish_scenario(
    traces: Sequence[JobTraces],
    ensemble: TraceEnsemble | None,
    n_units: int,
    downtime: float,
    horizon: float,
    recovery: float,
    t0: float,
) -> ScenarioPublication:
    """Copy a scenario's trace set (and optional compiled ensemble) into
    one shared-memory segment; returns the owning handle."""
    if not traces:
        raise ValueError("cannot publish an empty trace set")
    arrays: dict[str, np.ndarray] = {}
    sizes = np.asarray([tr.times.size for tr in traces], dtype=np.int64)
    offsets = np.zeros(sizes.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    arrays["offsets"] = offsets
    arrays["times"] = np.concatenate(
        [np.asarray(tr.times, dtype=float) for tr in traces]
    )
    arrays["units"] = np.concatenate(
        [np.asarray(tr.units, dtype=np.int64) for tr in traces]
    )
    if ensemble is not None:
        arrays["t_start"] = np.ascontiguousarray(ensemble.t_start, dtype=float)
        arrays["fail"] = np.ascontiguousarray(ensemble.fail, dtype=float)
        arrays["resume"] = np.ascontiguousarray(ensemble.resume, dtype=float)
        arrays["cumfail"] = np.ascontiguousarray(ensemble.cumfail, dtype=np.int64)

    total = sum(arr.nbytes for arr in arrays.values())
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    try:
        specs: dict[str, _ArraySpec] = {}
        offset = 0
        for name, arr in arrays.items():
            dest: np.ndarray = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offset
            )
            dest[...] = arr
            specs[name] = _ArraySpec(
                offset=offset, shape=tuple(arr.shape), dtype=str(arr.dtype)
            )
            offset += arr.nbytes
            del dest  # release the buffer view before any close()
        layout = ScenarioLayout(
            shm_name=shm.name,
            specs=specs,
            n_units=int(n_units),
            downtime=float(downtime),
            horizon=float(horizon),
            recovery=float(recovery),
            t0=float(t0),
            has_ensemble=ensemble is not None,
        )
        return ScenarioPublication(shm, layout)
    except Exception:
        with contextlib.suppress(Exception):
            shm.close()
        with contextlib.suppress(Exception):
            shm.unlink()
        raise


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach without handing ownership to this process's resource
    tracker (the parent owns the unlink).

    On Python < 3.13 there is no ``track=False``, and forked workers
    *share* the parent's tracker process — an attach-then-unregister
    would erase the parent's own registration.  Instead the registration
    is suppressed at the source: ``resource_tracker.register`` is
    swapped for a no-op for the duration of the attach (workers are
    single-threaded at this point)."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shared_memory(name: str, rtype: str) -> None:
            if rtype != "shared_memory":  # pragma: no cover - not hit here
                original(name, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class AttachedScenario:
    """Worker-side view of a publication.

    Accessors *copy* out of the segment, so the attachment can (and
    should) be closed as soon as the needed rows are extracted —
    usually via the context-manager form.
    """

    def __init__(self, layout: ScenarioLayout):
        self.layout = layout
        self._shm = _attach_segment(layout.shm_name)
        try:
            self._arrays = {
                name: np.ndarray(
                    spec.shape,
                    dtype=np.dtype(spec.dtype),
                    buffer=self._shm.buf,
                    offset=spec.offset,
                )
                for name, spec in layout.specs.items()
            }
        except Exception:
            # a corrupt layout (bad dtype/shape/offset) must not leak
            # the attachment: close before propagating
            self._shm.close()
            raise

    def __enter__(self) -> "AttachedScenario":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def job_traces(self, index: int) -> JobTraces:
        """Reconstruct trace ``index`` (copies its slice)."""
        offsets = self._arrays["offsets"]
        lo, hi = int(offsets[index]), int(offsets[index + 1])
        layout = self.layout
        return JobTraces(
            times=np.array(self._arrays["times"][lo:hi]),
            units=np.array(self._arrays["units"][lo:hi]),
            n_units=layout.n_units,
            downtime=layout.downtime,
            horizon=layout.horizon,
        )

    def ensemble_rows(self, indices: Sequence[int]) -> TraceEnsemble | None:
        """Row-subset of the published ensemble (copies the rows), or
        None when the publication carried no ensemble."""
        if not self.layout.has_ensemble:
            return None
        rows = np.asarray(indices, dtype=np.int64)
        return TraceEnsemble.from_arrays(
            t_start=self._arrays["t_start"][rows],
            fail=self._arrays["fail"][rows],
            resume=self._arrays["resume"][rows],
            cumfail=self._arrays["cumfail"][rows],
            recovery=self.layout.recovery,
            t0=self.layout.t0,
        )

    def close(self) -> None:
        """Drop the buffer views and detach (idempotent; never unlinks)."""
        self._arrays.clear()
        with contextlib.suppress(Exception):
            self._shm.close()


def attach_scenario(layout: ScenarioLayout) -> AttachedScenario:
    """Attach to a published scenario (worker side)."""
    return AttachedScenario(layout)


# ----------------------------------------------------------------------
# cross-process replan-memo sharing (delta merge at work-unit exit)
# ----------------------------------------------------------------------


def memo_snapshot() -> frozenset:
    """The worker's current replan-memo key set (taken before a work
    unit runs, so the delta afterwards is exactly what the unit added)."""
    from repro.core.cache import get_replan_memo

    return get_replan_memo().snapshot_keys()


def export_memo_delta(before: frozenset) -> list:
    """The ``(key, DPNextFailureResult)`` pairs this process's memo
    gained since ``before`` — the worker's contribution to the shared
    memo, shipped back with its work-unit result."""
    from repro.core.cache import get_replan_memo

    return get_replan_memo().export_entries(exclude=before)


def merge_memo_delta(delta: list) -> int:
    """Fold a worker's memo delta into this process's memo (parent
    side); returns how many entries were new.  Merged entries carry the
    bit-identical result a local solve would have produced (the memo
    key captures the full solve input), so merging never changes
    results — later phases and scenarios just start warm."""
    from repro.core.cache import get_replan_memo

    return get_replan_memo().merge_entries(delta)
