"""Vectorized batch replay of static-schedule policies over a whole
trace ensemble.

The scalar engine (:mod:`repro.simulation.engine`) walks each trace's
failure events one Python iteration at a time, consulting the policy at
every decision point.  Seven of the paper's ten policies (Young,
DalyLow, DalyHigh, OptExp, PeriodLB candidates, Liu, Bouguerra) choose
chunks from a *fixed schedule* that never depends on runtime platform
state — declared via :meth:`repro.policies.base.Policy.static_schedule`.
For those, this module simulates the **entire ensemble at once** with
NumPy, in two phases:

1. **Compile** (:class:`TraceEnsemble`): the sequence of failure/resume
   windows of a trace is *policy-independent* — an outage opened by a
   failure at ``t`` absorbs every later event ``t' < (t_last + D) + R``
   (cascades extend the downtime window, events during the recovery
   restart it; both continue the outage), and the platform resumes at
   ``(t_last + D) + R``.  On sorted merged event streams that grouping
   is a single vectorized gap comparison per trace.  Traces with
   events inside a unit's own downtime (only possible in hand-crafted
   traces or ``t0 > 0`` submissions into a downtime window) fall back to
   an exact scan built on the scalar engine's machinery.  The compiled
   ensemble is shared by every policy replayed against it.

2. **Replay** (:func:`simulate_job_batch`): all traces advance in
   lockstep, one *attempt* per step, entirely with array operations.
   Each step performs, per still-active trace, the identical IEEE-754
   double operations the scalar engine performs for that attempt —
   ``min(schedule, remaining)``, ``(t + w) + C``, the ``attempt_end <=
   next_failure`` test, the loss/outage accounting, the ``max_makespan``
   early exit — so every :class:`~repro.simulation.results
   .SimulationResult` field is **bit-identical** to the scalar engine's,
   by construction rather than by tolerance.

:func:`simulate_lower_bound_batch` replays the omniscient LowerBound the
same way (one *window* per lockstep step), and
:func:`simulate_policy_ensemble` is the dispatch used by the runner:
batch when the policy declares a static schedule, scalar fallback
otherwise.
"""

from __future__ import annotations

import math

from typing import Sequence

import numpy as np

from repro.distributions.base import FailureDistribution
from repro.policies.base import Policy, PolicyInfeasibleError, StaticSchedule
from repro.simulation.engine import (
    _WORK_EPS,
    _Engine,
    JobContext,
    simulate_job,
)
from repro.simulation.results import SimulationResult
from repro.traces.generation import JobTraces

__all__ = [
    "TraceEnsemble",
    "simulate_job_batch",
    "simulate_lower_bound_batch",
    "simulate_policy_ensemble",
]


# ----------------------------------------------------------------------
# phase 1: compile traces into policy-independent failure windows
# ----------------------------------------------------------------------


def _compile_fast(
    times: np.ndarray, d: float, r: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group an all-live sorted event stream into outage windows.

    An outage continues while the next event lands before the current
    recovery would finish, i.e. ``t_next < (t_prev + d) + r`` (the exact
    float expression the scalar engine compares against): cascades
    (``t_next <= t_prev + d``) extend the downtime, later events
    interrupt the recovery; either way the availability horizon becomes
    ``t_next + d``.  The platform resumes at ``(t_last + d) + r``.
    """
    if times.size == 0:
        empty = np.empty(0)
        return empty, empty, np.empty(0, dtype=np.int64)
    # both scalar clauses, in their exact float forms: cascade absorption
    # (t <= avail = t_prev + d; only reachable with r == 0) and recovery
    # interruption (avail + r > t)
    avail = times[:-1] + d
    cont = (times[1:] <= avail) | (times[1:] < avail + r)
    breaks = np.flatnonzero(~cont)
    starts = np.concatenate([[0], breaks + 1])
    ends = np.concatenate([breaks, [times.size - 1]])
    fail = times[starts]
    resume = (times[ends] + d) + r
    cumfail = (ends + 1).astype(np.int64)
    return fail, resume, cumfail


def _compile_exact(
    traces: JobTraces, recovery: float, t0: float
) -> tuple[float, np.ndarray, np.ndarray, np.ndarray]:
    """Reference compilation driving the scalar engine's event walk.

    Used when dead events (a unit failing inside its own downtime) are
    possible; exact by construction because it *is* the scalar walk.
    """
    eng = _Engine(traces, recovery, t0)
    t_start = eng.t
    fails: list[float] = []
    resumes: list[float] = []
    cumfail: list[int] = []
    while True:
        tf = eng.peek_next_failure()
        if math.isinf(tf):
            break
        resumed = eng.handle_failure(tf)
        fails.append(tf)
        resumes.append(resumed)
        cumfail.append(eng.n_failures)
    return (
        t_start,
        np.asarray(fails),
        np.asarray(resumes),
        np.asarray(cumfail, dtype=np.int64),
    )


def _compile_one(
    traces: JobTraces, recovery: float, t0: float
) -> tuple[float, np.ndarray, np.ndarray, np.ndarray]:
    """(t_start, fail[], resume[], cumfail[]) for one trace."""
    d = traces.downtime
    ls0 = traces.lifetime_starts_at(t0)
    t_start = max(t0, float(ls0.max(initial=0.0)))
    # events strictly after t0 (the scalar engine starts its cursor
    # there; events exactly at t0 are neither replayed nor aged)
    active = traces.times > t0
    at = traces.times[active]
    au = traces.units[active]
    if at.size:
        dead_vs_start = ls0[au] > at
        if dead_vs_start.any():
            return _compile_exact(traces, recovery, t0)
        # dead-event guard in the scalar engine's exact comparison form
        # (t_next < lifetime_start = t_prev + d); the first dead event of
        # any unit is always preceded by a live one, so a consecutive
        # same-unit pairwise check catches every dead-event trace
        if traces.n_units == 1:
            if np.any(at[1:] < at[:-1] + d):
                return _compile_exact(traces, recovery, t0)
        else:
            order = np.lexsort((at, au))
            st, su = at[order], au[order]
            same = su[1:] == su[:-1]
            if np.any(same & (st[1:] < st[:-1] + d)):
                return _compile_exact(traces, recovery, t0)
    fail, resume, cumfail = _compile_fast(at, d, recovery)
    return t_start, fail, resume, cumfail


class TraceEnsemble:
    """Policy-independent failure-window structure of a trace list.

    Compiled once per (trace set, recovery, t0) and reused by every
    static-schedule replay — including every PeriodLB candidate period.
    Window ``j`` of trace ``r`` spans from its previous resume time (or
    ``t_start``) to ``fail[r, j]``; columns beyond a trace's last
    failure hold ``+inf`` so replay treats the tail as failure-free.
    """

    def __init__(
        self, traces: Sequence[JobTraces], recovery: float, t0: float = 0.0
    ):
        self.n_traces = len(traces)
        self.recovery = float(recovery)
        self.t0 = float(t0)
        compiled = [_compile_one(tr, recovery, t0) for tr in traces]
        self.t_start = np.asarray([c[0] for c in compiled])
        n_windows = max((c[1].size for c in compiled), default=0)
        self.fail = np.full((self.n_traces, n_windows + 1), np.inf)
        self.resume = np.zeros((self.n_traces, n_windows + 1))
        self.cumfail = np.zeros((self.n_traces, n_windows + 1), dtype=np.int64)
        for row, (_t, fail, resume, cumfail) in enumerate(compiled):
            self.fail[row, : fail.size] = fail
            self.resume[row, : fail.size] = resume
            self.cumfail[row, : fail.size] = cumfail
            self.cumfail[row, fail.size :] = cumfail[-1] if fail.size else 0

    @classmethod
    def compile(
        cls, traces: Sequence[JobTraces], recovery: float, t0: float = 0.0
    ) -> "TraceEnsemble":
        return cls(traces, recovery, t0)

    @classmethod
    def from_arrays(
        cls,
        t_start: np.ndarray,
        fail: np.ndarray,
        resume: np.ndarray,
        cumfail: np.ndarray,
        recovery: float,
        t0: float,
    ) -> "TraceEnsemble":
        """Rehydrate an ensemble from already-compiled window arrays
        (shared-memory attach, row subsets).  The arrays are adopted as
        given — callers pass copies when the backing store is transient.
        """
        obj = cls.__new__(cls)
        obj.n_traces = int(t_start.shape[0])
        obj.recovery = float(recovery)
        obj.t0 = float(t0)
        obj.t_start = t_start
        obj.fail = fail
        obj.resume = resume
        obj.cumfail = cumfail
        return obj

    def take(self, indices: Sequence[int]) -> "TraceEnsemble":
        """Row-subset ensemble for the given trace indices.

        Replay over the subset is bit-identical to compiling those
        traces alone: window columns beyond a trace's last failure hold
        ``+inf`` and never influence a replay, so keeping the global
        column width is inert.
        """
        rows = np.asarray(indices, dtype=np.int64)
        return TraceEnsemble.from_arrays(
            t_start=self.t_start[rows],
            fail=self.fail[rows],
            resume=self.resume[rows],
            cumfail=self.cumfail[rows],
            recovery=self.recovery,
            t0=self.t0,
        )


# ----------------------------------------------------------------------
# phase 2: lockstep replay
# ----------------------------------------------------------------------


def _replay_static(
    ensemble: TraceEnsemble,
    schedule: StaticSchedule,
    work_time: float,
    checkpoint: float,
    max_makespan: float,
) -> list[SimulationResult | None]:
    """Replay one static schedule against the compiled ensemble.

    All traces advance in lockstep, one attempt per step; every float
    update below mirrors the scalar engine's expression for the same
    attempt, operand for operand.
    """
    n = ensemble.n_traces
    t0 = ensemble.t0
    periodic = schedule.period is not None
    if not periodic:
        chunks = np.asarray(schedule.chunks, dtype=float)

    t = ensemble.t_start.copy()
    waiting = t - t0
    remaining = np.full(n, float(work_time))
    widx = np.zeros(n, dtype=np.int64)
    kidx = np.zeros(n, dtype=np.int64)
    fail_now = ensemble.fail[:, 0].copy() if n else np.empty(0)
    n_fail = np.zeros(n, dtype=np.int64)
    n_ckpt = np.zeros(n, dtype=np.int64)
    n_att = np.zeros(n, dtype=np.int64)
    lost = np.zeros(n)
    outage = np.zeros(n)
    chmin = np.full(n, np.inf)
    chmax = np.zeros(n)
    makespan = t - t0  # overwritten on completion; exact for 0-attempt runs
    completed = np.ones(n, dtype=bool)
    infeasible = np.zeros(n, dtype=bool)
    active = remaining > _WORK_EPS

    while active.any():
        if periodic:
            w = np.minimum(schedule.period, remaining)
        else:
            exhausted = active & (kidx >= chunks.size)
            if exhausted.any():
                infeasible[exhausted] = True
                active = active & ~exhausted
                if not active.any():
                    break
            w = np.minimum(chunks[np.minimum(kidx, chunks.size - 1)], remaining)
        chmin = np.where(active, np.minimum(chmin, w), chmin)
        chmax = np.where(active, np.maximum(chmax, w), chmax)
        n_att += active

        attempt_end = (t + w) + checkpoint
        success = active & (attempt_end <= fail_now)
        failure = active & ~success

        t = np.where(success, attempt_end, t)
        remaining = np.where(success, remaining - w, remaining)
        n_ckpt += success
        kidx += success

        f = np.flatnonzero(failure)
        if f.size:
            wi = widx[f]
            tf = ensemble.fail[f, wi]
            rs = ensemble.resume[f, wi]
            lost[f] += tf - t[f]
            outage[f] += rs - tf
            t[f] = rs
            n_fail[f] = ensemble.cumfail[f, wi]
            widx[f] = wi + 1
            kidx[f] = 0
            fail_now[f] = ensemble.fail[f, wi + 1]

        # scalar loop order: the max_makespan abort is checked right
        # after the attempt, before the remaining-work loop condition
        over = active & (t - t0 > max_makespan)
        if over.any():
            makespan = np.where(over, np.inf, makespan)
            completed = completed & ~over
            active = active & ~over
        done = active & (remaining <= _WORK_EPS)
        if done.any():
            makespan = np.where(done, t - t0, makespan)
            active = active & ~done

    results: list[SimulationResult | None] = []
    for i in range(n):
        if infeasible[i]:
            results.append(None)
            continue
        att = int(n_att[i])
        results.append(
            SimulationResult(
                makespan=float(makespan[i]),
                work_time=work_time,
                n_failures=int(n_fail[i]),
                n_checkpoints=int(n_ckpt[i]),
                n_attempts=att,
                chunk_min=float(chmin[i]) if att else math.nan,
                chunk_max=float(chmax[i]) if att else math.nan,
                completed=bool(completed[i]),
                time_lost=float(lost[i]),
                time_outage=float(outage[i]),
                time_waiting=float(waiting[i]),
            )
        )
    return results


def _probe_context(
    traces: Sequence[JobTraces],
    work_time: float,
    checkpoint: float,
    recovery: float,
    dist: FailureDistribution,
    t0: float,
    platform_mtbf: float,
) -> JobContext:
    """Scenario-level context for setup/static_schedule probing.

    Static schedules must not depend on runtime state, so the context is
    left unbound (``_lifetime_start=None``) — a policy that peeks at
    ``ctx.ages`` fails loudly instead of silently desynchronizing.
    """
    return JobContext(
        checkpoint=checkpoint,
        recovery=recovery,
        downtime=traces[0].downtime,
        dist=dist,
        work_time=work_time,
        n_units=traces[0].n_units,
        platform_mtbf=platform_mtbf,
        t0=t0,
        time=t0,
        _lifetime_start=None,
    )


def simulate_job_batch(
    policy: Policy,
    work_time: float,
    traces: Sequence[JobTraces],
    checkpoint: float,
    recovery: float,
    dist: FailureDistribution,
    t0: float = 0.0,
    platform_mtbf: float = math.nan,
    max_makespan: float = math.inf,
    ensemble: TraceEnsemble | None = None,
) -> list[SimulationResult | None] | None:
    """Batch-simulate ``policy`` over every trace at once.

    Returns None when the policy declares no static schedule (caller
    falls back to the scalar engine).  Otherwise returns one
    :class:`SimulationResult` per trace, bit-identical to
    :func:`repro.simulation.engine.simulate_job` on that trace; entries
    are None for traces on which a restarting schedule was exhausted
    (the scalar engine's mid-run :class:`PolicyInfeasibleError`).
    Setup-time infeasibility (e.g. Liu on large Weibull platforms)
    propagates as the exception, exactly as the scalar path raises it.

    Pass a precompiled ``ensemble`` to amortize window extraction across
    many policies of the same scenario.
    """
    if not traces:
        return []
    ctx = _probe_context(
        traces, work_time, checkpoint, recovery, dist, t0, platform_mtbf
    )
    policy.setup(ctx)
    schedule = policy.static_schedule(ctx)
    if schedule is None:
        return None
    if ensemble is None:
        ensemble = TraceEnsemble(traces, recovery, t0)
    return _replay_static(ensemble, schedule, work_time, checkpoint, max_makespan)


def simulate_lower_bound_batch(
    work_time: float,
    ensemble: TraceEnsemble,
    checkpoint: float,
) -> list[SimulationResult]:
    """Vectorized omniscient LowerBound over a compiled ensemble.

    Bit-identical to :func:`repro.simulation.engine.simulate_lower_bound`
    per trace; lockstep advances one failure window per step.
    """
    n = ensemble.n_traces
    t0 = ensemble.t0
    t = ensemble.t_start.copy()
    waiting = t - t0
    remaining = np.full(n, float(work_time))
    widx = np.zeros(n, dtype=np.int64)
    fail_now = ensemble.fail[:, 0].copy() if n else np.empty(0)
    n_fail = np.zeros(n, dtype=np.int64)
    n_ckpt = np.zeros(n, dtype=np.int64)
    lost = np.zeros(n)
    outage = np.zeros(n)
    makespan = t - t0
    active = remaining > _WORK_EPS

    while active.any():
        window = fail_now - t
        done = active & (remaining <= window)
        if done.any():
            t = np.where(done, t + remaining, t)
            makespan = np.where(done, t - t0, makespan)
            remaining = np.where(done, 0.0, remaining)
            active = active & ~done
        f = np.flatnonzero(active)
        if f.size == 0:
            break
        useful = np.maximum(0.0, window[f] - checkpoint)
        gained = useful > 0
        n_ckpt[f] += gained
        lost[f] += np.where(gained, 0.0, window[f])
        remaining[f] -= useful
        wi = widx[f]
        tf = ensemble.fail[f, wi]
        rs = ensemble.resume[f, wi]
        outage[f] += rs - tf
        t[f] = rs
        n_fail[f] = ensemble.cumfail[f, wi]
        widx[f] = wi + 1
        fail_now[f] = ensemble.fail[f, wi + 1]
        # the scalar loop re-checks remaining > eps before each window
        exhausted = active.copy()
        exhausted[f] = remaining[f] <= _WORK_EPS
        newly = active & exhausted
        if newly.any():
            makespan = np.where(newly, t - t0, makespan)
            active = active & ~newly

    return [
        SimulationResult(
            makespan=float(makespan[i]),
            work_time=work_time,
            n_failures=int(n_fail[i]),
            n_checkpoints=int(n_ckpt[i]),
            n_attempts=int(n_ckpt[i]),
            time_lost=float(lost[i]),
            time_outage=float(outage[i]),
            time_waiting=float(waiting[i]),
        )
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------


def simulate_policy_ensemble(
    policy: Policy,
    work_time: float,
    traces: Sequence[JobTraces],
    checkpoint: float,
    recovery: float,
    dist: FailureDistribution,
    t0: float = 0.0,
    platform_mtbf: float = math.nan,
    max_makespan: float = math.inf,
    ensemble: TraceEnsemble | None = None,
    use_batch: bool = True,
) -> list[SimulationResult | None]:
    """Run ``policy`` over ``traces``, batched when possible.

    The runner-facing dispatcher: one result per trace, with None
    marking (policy, trace) pairs on which the policy is infeasible —
    the same pairs, batched or not.  ``use_batch=False`` (the
    ``--no-batch`` escape hatch) forces the scalar engine.
    """
    if use_batch:
        try:
            batched = simulate_job_batch(
                policy,
                work_time,
                traces,
                checkpoint,
                recovery,
                dist,
                t0=t0,
                platform_mtbf=platform_mtbf,
                max_makespan=max_makespan,
                ensemble=ensemble,
            )
        except PolicyInfeasibleError:
            # setup-time infeasibility is scenario-wide: the scalar path
            # raises identically on every trace
            return [None] * len(traces)
        if batched is not None:
            return batched
    results: list[SimulationResult | None] = []
    for tr in traces:
        try:
            results.append(
                simulate_job(
                    policy,
                    work_time,
                    tr,
                    checkpoint,
                    recovery,
                    dist,
                    t0=t0,
                    platform_mtbf=platform_mtbf,
                    max_makespan=max_makespan,
                )
            )
        except PolicyInfeasibleError:
            results.append(None)
    return results
