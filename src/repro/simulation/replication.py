"""Extension: job replication on platform halves (Section 8).

The paper's future-work discussion proposes "replicating the execution
of a given job on, say, both halves of the platform, i.e., with
ptotal/2 processors each.  This could be done independently, or better,
by synchronizing the execution after each checkpoint."  This module
implements both options on top of the trace-driven engine:

- :func:`simulate_independent_replication` — two fully independent
  executions of the job on disjoint halves; the job completes when the
  first replica finishes.
- :func:`simulate_synchronized_replication` — both halves execute the
  same chunk simultaneously; the chunk succeeds if *at least one* half
  completes it (the surviving half's checkpoint is shared), and the
  halves resynchronize before the next chunk while a failed half
  recovers from the shared checkpoint.

Replication halves the failure-exposed group size (fewer wasted chunks)
at the price of doubling the per-chunk compute resources, so it wins
only when the platform MTBF is small relative to the chunk+checkpoint
length — the trade-off the extension benchmark maps out.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import FailureDistribution
from repro.simulation.engine import _Engine
from repro.simulation.results import SimulationResult
from repro.traces.generation import JobTraces, PlatformTraces

__all__ = [
    "split_traces",
    "simulate_independent_replication",
    "simulate_synchronized_replication",
]

_WORK_EPS = 1e-6


def split_traces(traces: PlatformTraces, n_units: int) -> tuple[JobTraces, JobTraces]:
    """Disjoint trace views for the two halves (``n_units`` each)."""
    if traces.n_units < 2 * n_units:
        raise ValueError(
            f"platform has {traces.n_units} units, need {2 * n_units}"
        )
    first = traces.for_job(n_units)
    second = PlatformTraces(
        traces.per_unit[n_units : 2 * n_units],
        horizon=traces.horizon,
        downtime=traces.downtime,
    ).for_job(n_units)
    return first, second


def simulate_independent_replication(
    policy_factory,
    work_time: float,
    traces: PlatformTraces,
    n_units_per_half: int,
    checkpoint: float,
    recovery: float,
    dist: FailureDistribution,
    t0: float = 0.0,
    platform_mtbf: float = math.nan,
    max_makespan: float = math.inf,
) -> SimulationResult:
    """Run the job independently on both halves; first finisher wins.

    ``policy_factory`` builds a fresh policy per replica (policies hold
    per-execution state).  ``work_time`` is the failure-free time on one
    half, i.e. ``W(p/2)``.
    """
    from repro.simulation.engine import simulate_job

    half_a, half_b = split_traces(traces, n_units_per_half)
    results = [
        simulate_job(
            policy_factory(),
            work_time,
            half,
            checkpoint,
            recovery,
            dist,
            t0=t0,
            platform_mtbf=platform_mtbf,
            max_makespan=max_makespan,
        )
        for half in (half_a, half_b)
    ]
    winner = min(results, key=lambda r: r.makespan)
    return SimulationResult(
        makespan=winner.makespan,
        work_time=work_time,
        n_failures=sum(r.n_failures for r in results),
        n_checkpoints=winner.n_checkpoints,
        n_attempts=sum(r.n_attempts for r in results),
        chunk_min=winner.chunk_min,
        chunk_max=winner.chunk_max,
        completed=winner.completed,
    )


def simulate_synchronized_replication(
    policy,
    work_time: float,
    traces: PlatformTraces,
    n_units_per_half: int,
    checkpoint: float,
    recovery: float,
    dist: FailureDistribution,
    t0: float = 0.0,
    platform_mtbf: float = math.nan,
    max_makespan: float = math.inf,
) -> SimulationResult:
    """Checkpoint-synchronized replication.

    Each chunk is attempted by both halves starting at a common time.
    Outcomes:

    - both halves survive ``chunk + C``: the chunk is committed at
      ``t + chunk + C``;
    - exactly one half fails: the chunk is still committed (the survivor
      checkpointed it); the failed half then restores the shared
      checkpoint (downtime + recovery via its own failure machinery) and
      the next chunk starts when both halves are ready;
    - both halves fail: the chunk is lost; both halves recover and the
      chunk is retried at the later of their ready times.
    """
    from repro.simulation.engine import JobContext

    half_a, half_b = split_traces(traces, n_units_per_half)
    engines = [
        _Engine(half_a, recovery, t0),
        _Engine(half_b, recovery, t0),
    ]
    t = max(e.t for e in engines)
    # Policy context reports the ages of the first half (the policy's
    # view; with iid halves this is statistically equivalent to either).
    ctx = JobContext(
        checkpoint=checkpoint,
        recovery=recovery,
        downtime=traces.downtime,
        dist=dist,
        work_time=work_time,
        n_units=n_units_per_half,
        platform_mtbf=platform_mtbf,
        t0=t0,
        time=t,
        _lifetime_start=engines[0].lifetime_start,
    )
    policy.setup(ctx)
    remaining = work_time
    n_checkpoints = 0
    n_attempts = 0
    chunk_min, chunk_max = math.inf, 0.0
    while remaining > _WORK_EPS:
        ctx.time = t
        w = float(policy.next_chunk(remaining, ctx))
        if not (w > 0):
            raise ValueError("policy proposed non-positive chunk")
        w = min(w, remaining)
        chunk_min = min(chunk_min, w)
        chunk_max = max(chunk_max, w)
        n_attempts += 1
        attempt_end = t + w + checkpoint
        ready = []
        survived = []
        for eng in engines:
            # a half idle-waits if it was still recovering at t
            eng.t = max(eng.t, t)
            tf = eng.peek_next_failure()
            if attempt_end <= tf:
                eng.t = attempt_end
                ready.append(attempt_end)
                survived.append(True)
            else:
                ready.append(eng.handle_failure(tf))
                survived.append(False)
        if any(survived):
            remaining -= w
            n_checkpoints += 1
        else:
            policy.on_failure(ctx)
        t = max(ready)
        if t - t0 > max_makespan:
            return SimulationResult(
                makespan=math.inf,
                work_time=work_time,
                n_failures=sum(e.n_failures for e in engines),
                n_checkpoints=n_checkpoints,
                n_attempts=n_attempts,
                chunk_min=chunk_min if n_attempts else math.nan,
                chunk_max=chunk_max if n_attempts else math.nan,
                completed=False,
            )
    return SimulationResult(
        makespan=t - t0,
        work_time=work_time,
        n_failures=sum(e.n_failures for e in engines),
        n_checkpoints=n_checkpoints,
        n_attempts=n_attempts,
        chunk_min=chunk_min if n_attempts else math.nan,
        chunk_max=chunk_max if n_attempts else math.nan,
    )
