"""Grid sweep engine: shared-trace planning over many scenarios.

The paper's simulation study (Sections 4-6) is a *grid*: policies x
period candidates x distributions x platforms, all replayed over the
same failure traces.  Executing each grid point as an independent
scenario (PR-1..9 path) regenerates the trace set, recompiles the
:class:`~repro.simulation.batch.TraceEnsemble` and republishes shared
memory once per point — for a 24-point sweep over one platform that is
24x the dominant fixed cost for identical bytes.

This module plans and executes the grid as a whole:

1. **Expand** — :func:`repro.service.expand_grid` turns a base spec +
   axis lists into validated :class:`~repro.service.spec.ScenarioSpec`
   points (deterministic cartesian order).
2. **Plan** (:func:`plan_sweep`) — points are grouped by *trace
   signature*: the exact spec fields trace generation and ensemble
   compilation depend on (distribution, platform size, downtime, seed,
   trace count, horizon, recovery, t0).  Policies, checkpoint cost and
   work only shape the *replay*, so e.g. a checkpoint-cost axis or a
   policy axis collapses into one group.
3. **Execute** (:func:`run_sweep`) — each group's traces are generated
   **once**, its ensemble compiled once, and (with ``jobs > 1`` and
   shm enabled) published to shared memory once; every point of the
   group runs over that single
   :class:`~repro.simulation.parallel.SharedTraces`.  One process pool
   serves the whole sweep, and a one-ahead prefetch thread builds the
   *next* group's trace set while the current group replays, so
   workers never idle on generation between groups.

Bit-identity: trace ``i`` is a pure function of ``(platform, horizon,
seed, i)`` (the determinism anchor), and a row subset of the group
ensemble is replay-equivalent to compiling the subset alone — so a
sweep's per-point results are bit-identical to N independent
``run_scenarios`` calls.  ``use_sweep_plan=False`` is the enforced
escape hatch (reprolint R14): it runs every point as an independent
scenario, which is both the reference for identity tests and the
fallback if shared planning ever misbehaves.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.simulation import shm as _shm
from repro.simulation.batch import TraceEnsemble
from repro.simulation.parallel import (
    SharedTraces,
    _job_trace,
    get_default_execution,
    resolve_jobs,
)
from repro.units import MINUTE

__all__ = [
    "SweepGroup",
    "SweepPlan",
    "SweepResult",
    "plan_sweep",
    "run_sweep",
    "trace_signature",
]


def trace_signature(spec) -> tuple:
    """The spec fields a group's shared trace set depends on.

    Two points may share one generated trace set + compiled ensemble
    iff these are equal: trace generation reads (distribution, p,
    downtime, horizon, seed, n_traces) and ensemble compilation adds
    (recovery, t0).  ``checkpoint``, ``work`` and ``policies`` only
    shape the replay — but note ``work`` feeds the *default* horizon
    (``60*W/p + mtbf``), so a work axis only groups when the spec pins
    ``horizon`` explicitly.  ``shape`` is canonicalized away for
    exponential distributions, matching the spec signature.
    """
    shape = None if spec.dist == "exponential" else float(spec.shape)
    return (
        spec.dist,
        float(spec.mtbf),
        shape,
        int(spec.p),
        float(spec.downtime),
        int(spec.n_traces),
        int(spec.seed),
        float(spec.t0),
        float(spec.effective_horizon),
        float(spec.recovery),
    )


@dataclass(frozen=True)
class SweepGroup:
    """One shared-trace group: the point indices (positions in the
    sweep's spec list, submission order) that share one trace set."""

    key: tuple
    indices: tuple[int, ...]


@dataclass
class SweepPlan:
    """The sweep's execution shape: points and their trace groups,
    groups in first-seen order."""

    specs: list
    groups: list[SweepGroup]

    @property
    def n_points(self) -> int:
        return len(self.specs)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready plan summary (group sizes, sharing factor)."""
        return {
            "n_points": len(self.specs),
            "n_groups": len(self.groups),
            "group_sizes": [len(g.indices) for g in self.groups],
            "shared_trace_gens_saved": len(self.specs) - len(self.groups),
        }


def plan_sweep(specs: Sequence) -> SweepPlan:
    """Group grid points by :func:`trace_signature`.

    Groups appear in first-seen order and each group's indices stay in
    submission order, so execution order — and therefore any
    order-dependent observable like parent-memo warmth — is a
    deterministic function of the point list alone.
    """
    specs = list(specs)
    by_key: dict[tuple, list[int]] = {}
    for i, spec in enumerate(specs):
        by_key.setdefault(trace_signature(spec), []).append(i)
    groups = [
        SweepGroup(key=key, indices=tuple(indices))
        for key, indices in by_key.items()
    ]
    return SweepPlan(specs=specs, groups=groups)


@dataclass
class SweepResult:
    """Everything a sweep produced: per-point results (input order),
    the plan, per-group reuse stats and the run-level counter roll-up."""

    results: list
    plan: SweepPlan
    group_stats: list[dict] = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    elapsed: float = math.nan
    n_jobs: int = 1
    sweep_planned: bool = True

    def scheduler_summary(self) -> dict[str, Any]:
        """Aggregate scheduler imbalance over every point that
        recorded stats (max of maxes, weighted means)."""
        units = 0
        cost_max = 0.0
        cost_sum = 0.0
        sec_max = 0.0
        sec_sum = 0.0
        sec_units = 0
        for res in self.results:
            sched = getattr(res, "scheduler", None) or {}
            n = int(sched.get("units", 0))
            if n and "est_cost_mean" in sched:
                units += n
                cost_max = max(cost_max, float(sched["est_cost_max"]))
                cost_sum += float(sched["est_cost_mean"]) * n
            if n and "unit_seconds_mean" in sched:
                sec_units += n
                sec_max = max(sec_max, float(sched["unit_seconds_max"]))
                sec_sum += float(sched["unit_seconds_mean"]) * n
        out: dict[str, Any] = {"units": units}
        if units:
            mean = cost_sum / units
            out["est_cost_max"] = cost_max
            out["est_cost_mean"] = mean
            out["est_imbalance"] = cost_max / mean if mean > 0 else 1.0
        if sec_units:
            mean_s = sec_sum / sec_units
            out["unit_seconds_max"] = sec_max
            out["unit_seconds_mean"] = mean_s
            out["seconds_imbalance"] = sec_max / mean_s if mean_s > 0 else 1.0
        return out


@dataclass
class _GroupResources:
    """One group's shared trace set + the shm publication backing it
    (closed by the sweep loop when the group finishes)."""

    shared: SharedTraces
    publication: object | None = None
    build_seconds: float = 0.0
    prefetched: bool = False

    def close(self) -> None:
        if self.publication is not None:
            self.publication.close()
            self.publication = None


def _build_group(spec, jobs: int, use_batch: bool, use_shm: bool) -> _GroupResources:
    """Generate one group's traces (from its first spec — every member
    shares the trace signature), compile the ensemble, and publish to
    shared memory when parallel workers will consume it."""
    build_start = time.perf_counter()  # reprolint: clock-ok=sweep build diagnostics
    platform = spec.build_platform()
    horizon = spec.effective_horizon
    traces = [
        _job_trace(platform, horizon, spec.seed, i)
        for i in range(spec.n_traces)
    ]
    if use_batch:
        ensemble = TraceEnsemble(traces, platform.recovery, spec.t0)
    else:
        ensemble = None
    publication = None
    layout = None
    if use_shm and jobs > 1 and traces:
        try:
            publication = _shm.publish_scenario(
                traces,
                ensemble,
                n_units=platform.num_nodes,
                downtime=platform.downtime,
                horizon=horizon,
                recovery=platform.recovery,
                t0=spec.t0,
            )
            layout = publication.layout
        except Exception:
            # no shared memory on this platform / size limits: parallel
            # workers fall back to per-task regeneration (bit-identical)
            publication = None
            layout = None
    shared = SharedTraces(traces=traces, ensemble=ensemble, layout=layout)
    return _GroupResources(
        shared=shared,
        publication=publication,
        build_seconds=time.perf_counter() - build_start,  # reprolint: clock-ok=sweep build diagnostics
    )


def _start_prefetch(build: Callable[[], _GroupResources]):
    """Kick off a one-ahead group build on a background thread; returns
    ``(thread, box)`` where ``box`` receives ``resources`` or
    ``error``.  Trace generation is a pure function of the spec, so
    overlapping it with the current group's replay cannot change what
    gets built — only when."""
    box: dict[str, Any] = {}

    def work() -> None:
        try:
            box["resources"] = build()
        except BaseException as exc:  # consumer re-raises on the main thread
            box["error"] = exc

    thread = threading.Thread(
        target=work, daemon=True, name="repro-sweep-prefetch"
    )
    thread.start()
    return thread, box


def run_sweep(  # reprolint: disable=R6 each point's seed lives in its spec (trace i = f(platform, horizon, spec.seed, i))
    specs: Sequence,
    jobs: int | None = None,
    use_cache: bool | None = None,
    use_batch: bool | None = None,
    use_memo: bool | None = None,
    use_shm: bool | None = None,
    use_disk_cache: bool | None = None,
    use_sweep_plan: bool = True,
    progress: Callable[[int, int], None] | None = None,
    on_point_start: Callable[[int], None] | None = None,
    on_point_done: Callable[[int, Any], None] | None = None,
    point_progress: Callable[[int, int, int], None] | None = None,
) -> SweepResult:
    """Execute a list of :class:`ScenarioSpec` points as one sweep.

    With ``use_sweep_plan`` (default) points are grouped by trace
    signature and each group replays over one shared trace set /
    ensemble / shm publication, with one process pool serving the whole
    sweep and the next group's traces prefetched in the background.
    With ``use_sweep_plan=False`` every point runs as an independent
    scenario — the bit-identical reference path (``--no-sweep-plan``).

    Callbacks: ``progress(done_points, total_points)`` after each point;
    ``on_point_start(i)`` / ``on_point_done(i, result)`` around each
    point (service batch bookkeeping); ``point_progress(i, done,
    total)`` relays the runner's per-work-unit ticks.  None of them
    affect results; callback exceptions propagate.
    """
    sweep_start = time.perf_counter()  # reprolint: clock-ok=diagnostic elapsed time
    # runner knob semantics: None = read the process-wide default
    from repro.simulation.runner import aggregate_counters

    specs = list(specs)
    plan = plan_sweep(specs)
    results: list = [None] * len(specs)
    done = 0

    def _point_progress(index: int):
        if point_progress is None:
            return None
        return lambda d, t: point_progress(index, d, t)

    def _run_point(index: int, shared=None, executor=None):
        nonlocal done
        if on_point_start is not None:
            on_point_start(index)
        result = specs[index].run(
            jobs=jobs,
            use_cache=use_cache,
            use_batch=use_batch,
            use_memo=use_memo,
            use_shm=use_shm,
            use_disk_cache=use_disk_cache,
            progress=_point_progress(index),
            shared=shared,
            executor=executor,
        )
        results[index] = result
        done += 1
        if on_point_done is not None:
            on_point_done(index, result)
        if progress is not None:
            progress(done, len(specs))
        return result

    if not use_sweep_plan:
        # reference path: N independent scenario runs, exactly what a
        # loop of `repro run` calls would execute
        for index in range(len(specs)):
            _run_point(index)
        return SweepResult(
            results=results,
            plan=plan,
            group_stats=[],
            counters=aggregate_counters(results),
            elapsed=time.perf_counter() - sweep_start,  # reprolint: clock-ok=diagnostic elapsed time
            n_jobs=resolve_jobs(jobs),
            sweep_planned=False,
        )

    cfg = get_default_execution()
    jobs_n = resolve_jobs(jobs)
    batch_on = cfg.use_batch if use_batch is None else bool(use_batch)
    shm_on = cfg.use_shm if use_shm is None else bool(use_shm)

    group_stats: list[dict] = []
    executor = ProcessPoolExecutor(max_workers=jobs_n) if jobs_n > 1 else None
    pending: tuple | None = None  # (thread, box) of the next group's build
    try:
        for gi, group in enumerate(plan.groups):
            if pending is None:
                resources = _build_group(
                    specs[group.indices[0]], jobs_n, batch_on, shm_on
                )
            else:
                thread, box = pending
                thread.join()
                pending = None
                if "error" in box:
                    raise box["error"]
                resources = box["resources"]
                resources.prefetched = True
            if gi + 1 < len(plan.groups):
                next_spec = specs[plan.groups[gi + 1].indices[0]]
                pending = _start_prefetch(
                    lambda spec=next_spec: _build_group(
                        spec, jobs_n, batch_on, shm_on
                    )
                )
            shm_bytes = (
                resources.publication.nbytes
                if resources.publication is not None
                else 0
            )
            try:
                for index in group.indices:
                    _run_point(index, shared=resources.shared, executor=executor)
            finally:
                resources.close()
            first = results[group.indices[0]]
            group_stats.append({
                "n_points": len(group.indices),
                "point_indices": list(group.indices),
                "trace_gen_reused": bool(first.trace_gen_reused),
                "ensemble_reused": bool(first.ensemble_reused),
                "shm": resources.shared.layout is not None,
                "shm_bytes": shm_bytes,
                "build_seconds": resources.build_seconds,
                "prefetched": resources.prefetched,
            })
    finally:
        if pending is not None:
            thread, box = pending
            thread.join(timeout=MINUTE)
            leftover = box.get("resources")
            if leftover is not None:
                leftover.close()
        if executor is not None:
            executor.shutdown()

    return SweepResult(
        results=results,
        plan=plan,
        group_stats=group_stats,
        counters=aggregate_counters(results),
        elapsed=time.perf_counter() - sweep_start,  # reprolint: clock-ok=diagnostic elapsed time
        n_jobs=jobs_n,
        sweep_planned=True,
    )
