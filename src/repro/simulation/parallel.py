"""Parallel execution layer for the simulation study.

The paper's experiments (Sections 4-6) evaluate ~10 policies over
hundreds of independent failure traces per scenario — embarrassingly
parallel work that the serial runner executed one (policy, trace) pair
at a time.  :class:`ParallelRunner` fans that work out over a
``concurrent.futures.ProcessPoolExecutor`` in three phases:

1. **trace phase** — batches of trace indices; each worker regenerates
   its traces and runs every policy (plus the omniscient LowerBound);
2. **period-search phase** — batches of PeriodLB candidate periods,
   each evaluated over the search-subset traces;
3. **winner phase** — the best period's policy over all traces.

Determinism guarantee
---------------------
Results are **bit-identical** to the serial path for a fixed ``seed``,
by construction:

- trace ``i`` is always generated from
  ``numpy.random.SeedSequence([seed, i])`` — a function of the trace
  *index* alone, never of the batch it lands in or the worker that runs
  it;
- :func:`repro.simulation.engine.simulate_job` is deterministic given
  (policy parameters, trace), and every policy's per-trace state is
  reset by ``setup()``;
- batches are stitched back by index, and the PeriodLB winner is the
  ``argmin`` over the same sorted candidate array the serial path scans.

Running with ``jobs=1`` executes the identical unit functions in
process, so the serial path is the parallel path with a trivial
executor — there is no second implementation to drift.

Infeasible policies (:class:`repro.policies.base.PolicyInfeasibleError`,
e.g. Liu on large Weibull platforms) are recorded explicitly in
``ScenarioResult.infeasible`` as ``{policy name: [trace indices]}`` on
both paths; their makespans stay ``NaN`` as before, but the error is no
longer silently swallowed.

DP table caching is controlled per run (``use_cache``) and observable:
workers return per-unit hit/miss deltas of :mod:`repro.core.cache`,
aggregated into ``ScenarioResult.cache_hits`` / ``cache_misses``.  The
DPNextFailure replan memo (``use_memo``) is handled the same way, with
deltas aggregated into ``memo_hits`` / ``memo_misses``.  Because those
sums add up *per-worker* counters, a signature solved independently by
N workers contributes N misses; ``ScenarioResult.memo_unique_misses``
reports the deduplicated view — the number of distinct memo entries
actually solved — so shared-memo gains are visible rather than drowned
in double counts.

The persistent disk tier (``use_disk_cache``,
:mod:`repro.core.diskcache`) sits below both in-memory caches: workers
report per-unit disk hit/miss/evict deltas, aggregated into
``ScenarioResult.disk_hits`` / ``disk_misses`` / ``disk_evictions``.
With ``jobs > 1`` the replan memo is additionally **shared across
workers**: each work unit ships the memo entries it added back to the
parent, which merges them (:func:`repro.simulation.shm.merge_memo_delta`)
so later phases fork warm, while the disk tier shares solves between
workers inside a phase.

Shared-memory trace publication (``use_shm``, default on): with
``jobs > 1`` the parent generates all traces and compiles the scenario
ensemble once, publishes the arrays via
:mod:`repro.simulation.shm`, and workers attach and copy out only the
rows of their work unit instead of regenerating per task (previously a
trace could be rebuilt once per phase).  Any publish/attach failure
falls back silently to regeneration — bit-identical by the determinism
anchor above, shared memory only changes who computes the traces.

Sweep-shared traces (:class:`SharedTraces`): the grid sweep engine
(:mod:`repro.simulation.sweep`) generates a group's trace set once and
hands it to every scenario of the group via ``run(..., shared=...)`` —
serial runs read the in-process trace list (ensemble row subsets via
:meth:`TraceEnsemble.take`), parallel runs reuse the group's single shm
publication.  Both channels carry the exact arrays the scenario would
have generated itself, so sharing never changes results.

Cost-model scheduling: work units are not all equal — a trace batch
replaying a DP policy costs orders of magnitude more than a vectorized
static-schedule replay.  The runner estimates each unit's cost (policy
family x trace count x DP grid size, discounted by the persistent disk
tier's lifetime hit rate), splits trace batches finer when units are
expensive (dynamic chunking), and dispatches units longest-first (LPT)
so a straggler never lands last on an otherwise idle pool.  Results are
stitched by trace index, so dispatch order is invisible to results; the
estimates and per-unit wall-clock land in ``ScenarioResult.scheduler``.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.cluster.models import Platform
from repro.core.cache import (
    cache_stats,
    configure_cache,
    configure_replan_memo,
    get_cache,
    get_replan_memo,
    replan_memo_stats,
)
from repro.core.diskcache import (
    configure_disk_cache,
    disk_cache_stats,
    get_disk_cache,
)
from repro.simulation import shm as _shm
from repro.policies.base import PeriodicPolicy
from repro.simulation.batch import (
    TraceEnsemble,
    simulate_lower_bound_batch,
    simulate_policy_ensemble,
)
from repro.simulation.engine import simulate_lower_bound
from repro.traces.generation import generate_platform_traces

__all__ = [
    "ExecutionConfig",
    "ParallelRunner",
    "SharedTraces",
    "get_default_execution",
    "set_default_execution",
    "resolve_jobs",
]


@dataclass
class ExecutionConfig:
    """Process-wide defaults for scenario execution.

    ``jobs``: worker processes (1 = in-process serial; 0 or negative =
    one per available CPU).  ``use_cache``: consult the shared DP table
    cache.  ``batch_size``: trace indices per work unit (None = split
    evenly, ~4 units per worker for load balancing).  ``use_batch``:
    replay static-schedule policies with the vectorized batch engine
    (:mod:`repro.simulation.batch`); results are bit-identical either
    way, so False is only an escape hatch / A-B check.  ``use_memo``:
    consult the DPNextFailure replan memo (:mod:`repro.core.cache`).
    ``use_shm``: publish traces/ensembles to workers via shared memory
    (:mod:`repro.simulation.shm`); falls back to per-task regeneration
    on any failure.  ``use_disk_cache``: consult the persistent disk
    solve tier (:mod:`repro.core.diskcache`) under the in-memory
    caches.  All five toggles leave results bit-identical.
    """

    jobs: int = 1
    use_cache: bool = True
    batch_size: int | None = None
    use_batch: bool = True
    use_memo: bool = True
    use_shm: bool = True
    use_disk_cache: bool = True


_DEFAULT = ExecutionConfig()


def get_default_execution() -> ExecutionConfig:
    """A copy of the current default execution configuration."""
    return replace(_DEFAULT)


def set_default_execution(
    jobs: int | None = None,
    use_cache: bool | None = None,
    batch_size: int | None = None,
    use_batch: bool | None = None,
    use_memo: bool | None = None,
    use_shm: bool | None = None,
    use_disk_cache: bool | None = None,
) -> None:
    """Set process-wide execution defaults (CLI flags, benchmark env)."""
    if jobs is not None:
        _DEFAULT.jobs = int(jobs)
    if use_cache is not None:
        _DEFAULT.use_cache = bool(use_cache)
    if batch_size is not None:
        _DEFAULT.batch_size = int(batch_size)
    if use_batch is not None:
        _DEFAULT.use_batch = bool(use_batch)
    if use_memo is not None:
        _DEFAULT.use_memo = bool(use_memo)
    if use_shm is not None:
        _DEFAULT.use_shm = bool(use_shm)
    if use_disk_cache is not None:
        _DEFAULT.use_disk_cache = bool(use_disk_cache)


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` request: None -> default config, 0 or
    negative -> one worker per available CPU."""
    if jobs is None:
        jobs = _DEFAULT.jobs
    jobs = int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


@dataclass
class SharedTraces:
    """A scenario trace set owned by someone else (the sweep engine).

    ``traces`` / ``ensemble`` are in-process references used on the
    serial path (``jobs <= 1``); ``layout`` is the shared-memory recipe
    parallel workers attach to.  Either channel delivers exactly the
    arrays the scenario would have generated from the determinism
    anchor, so handing a runner a ``SharedTraces`` can never change
    results — only who pays for generation and compilation.  The owner
    keeps the publication alive for the runner's whole ``run()`` and
    unlinks it afterwards.
    """

    traces: list | None = None
    ensemble: TraceEnsemble | None = None
    layout: object | None = None


# ----------------------------------------------------------------------
# per-unit cost model (estimates only: scheduling, never results)
# ----------------------------------------------------------------------

#: Relative cost of replaying one trace under a DP policy with the
#: reference grid (n_grid=96) versus one vectorized static-schedule
#: replay.  Order-of-magnitude calibration from BENCH_dp: adaptive
#: replays are dominated by replan solves, static replays are a few
#: array passes.
_DP_TRACE_WEIGHT = 48.0


def _policy_weight(policy, disk_discount: float) -> float:
    """Estimated per-trace replay cost of ``policy`` (1.0 = one
    vectorized static-schedule replay).  DP policies scale with their
    grid resolution and are discounted by the persistent solve tier's
    observed hit rate — a warm tier turns most solves into loads."""
    n_grid = getattr(policy, "n_grid", None)
    if n_grid is None:
        return 1.0
    return max(1.0, _DP_TRACE_WEIGHT * (float(n_grid) / 96.0) * disk_discount)


def _disk_discount(use_disk_cache: bool) -> float:
    """Fraction of a DP policy's solve cost expected to be actually
    paid, calibrated from the disk tier's lifetime hit counters: a tier
    that historically answers 80% of lookups makes adaptive units ~5x
    cheaper than their cold estimate.  Returns 1.0 (no discount) when
    the tier is off or unreadable; floor 0.1 keeps even a perfectly
    warm tier's units ordered above static replays."""
    if not use_disk_cache:
        return 1.0
    try:
        lifetime = get_disk_cache().usage()["lifetime"]
        rate = float(lifetime.get("hit_rate", 0.0))
    except Exception:
        return 1.0
    return max(0.1, 1.0 - 0.9 * min(max(rate, 0.0), 1.0))


# ----------------------------------------------------------------------
# work units (module level: picklable by ProcessPoolExecutor)
# ----------------------------------------------------------------------


def _job_trace(platform: Platform, horizon: float, seed: int, index: int):
    """Trace ``index`` of the scenario — a pure function of
    ``(platform, horizon, seed, index)``, the determinism anchor."""
    return generate_platform_traces(
        platform.dist,
        platform.num_nodes,
        horizon,
        downtime=platform.downtime,
        seed=np.random.SeedSequence([int(seed), int(index)]),
    ).for_job(platform.num_nodes)


def _task_traces(
    platform: Platform,
    horizon: float,
    seed: int,
    indices: list[int],
    t0: float,
    use_batch: bool,
    layout,
    local: SharedTraces | None = None,
):
    """Materialize a work unit's traces + compiled ensemble.

    Preferred sources, in order: an in-process :class:`SharedTraces`
    (``local``, serial sweep groups — never crosses a process
    boundary), then the scenario's shared-memory publication
    (``layout``) — attach, copy the unit's rows, detach.  Fallback (no
    layout, or any attach failure): regenerate from the determinism
    anchor and compile per batch, exactly the pre-shm path.  All
    sources yield bit-identical traces, and a row subset of the global
    ensemble is replay-equivalent to a per-batch compilation (padding
    columns are inert), so the choice never affects results.
    """
    if local is not None and local.traces is not None:
        traces = [local.traces[i] for i in indices]
        if use_batch and traces:
            ensemble = (
                local.ensemble.take(indices)
                if local.ensemble is not None
                else TraceEnsemble(traces, platform.recovery, t0)
            )
        else:
            ensemble = None
        return traces, ensemble
    if layout is not None:
        try:
            with _shm.attach_scenario(layout) as scenario:
                traces = [scenario.job_traces(i) for i in indices]
                ensemble = (
                    scenario.ensemble_rows(indices)
                    if use_batch and traces
                    else None
                )
            return traces, ensemble
        except Exception:
            # segment gone / platform quirk: drop the layout and
            # regenerate below (bit-identical by the determinism anchor)
            layout = None
    traces = [_job_trace(platform, horizon, seed, index) for index in indices]
    ensemble = (
        TraceEnsemble(traces, platform.recovery, t0)
        if use_batch and traces
        else None
    )
    return traces, ensemble


@dataclass
class _TraceTask:
    """Phase 1/3 unit: run ``policies`` over the traces in ``indices``."""

    platform: Platform
    work_time: float
    horizon: float
    t0: float
    seed: int
    indices: list[int]
    policies: list
    include_lower_bound: bool
    max_makespan: float
    use_cache: bool
    use_batch: bool = True
    use_memo: bool = True
    use_disk_cache: bool = True
    collect_memo_delta: bool = False
    layout: object | None = None
    # in-process trace source (sweep groups, jobs<=1); never pickled —
    # parallel dispatch always leaves it None and uses ``layout``
    local: SharedTraces | None = None


@dataclass
class _TraceTaskResult:
    indices: list[int]
    # per policy name: list of (makespan, SimulationResult | None) in
    # index order; None marks an infeasible (policy, trace) pair
    per_policy: dict[str, list[tuple[float, object]]]
    infeasible: dict[str, list[int]] = field(default_factory=dict)
    lower_bound: list[float] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    disk_evictions: int = 0
    # replan-memo entries this unit added (shipped back for the parent
    # to merge; empty unless collect_memo_delta was set)
    memo_delta: list = field(default_factory=list)
    # wall-clock the unit took in its worker (scheduler diagnostics)
    unit_seconds: float = 0.0


def _run_trace_task(task: _TraceTask) -> _TraceTaskResult:
    unit_start = time.perf_counter()  # reprolint: clock-ok=scheduler diagnostics
    configure_cache(enabled=task.use_cache)
    configure_replan_memo(enabled=task.use_memo)
    configure_disk_cache(enabled=task.use_disk_cache)
    before = cache_stats()
    memo_before = replan_memo_stats()
    disk_before = disk_cache_stats()
    memo_keys = _shm.memo_snapshot() if task.collect_memo_delta else None
    platform = task.platform
    per_policy: dict[str, list[tuple[float, object]]] = {}
    infeasible: dict[str, list[int]] = {}
    lower_bound: list[float] = []
    # One compiled ensemble serves every static-schedule policy of the
    # batch (and the LowerBound); dynamic policies fall back to the
    # scalar engine inside simulate_policy_ensemble.
    traces, ensemble = _task_traces(
        platform,
        task.horizon,
        task.seed,
        task.indices,
        task.t0,
        task.use_batch,
        task.layout,
        task.local,
    )
    for policy in task.policies:
        results = simulate_policy_ensemble(
            policy,
            task.work_time,
            traces,
            platform.checkpoint,
            platform.recovery,
            platform.dist,
            t0=task.t0,
            platform_mtbf=platform.platform_mtbf,
            max_makespan=task.max_makespan,
            ensemble=ensemble,
            use_batch=task.use_batch,
        )
        pairs: list[tuple[float, object]] = []
        for index, res in zip(task.indices, results):
            if res is None:
                pairs.append((math.nan, None))
                infeasible.setdefault(policy.name, []).append(index)
            else:
                pairs.append((res.makespan, res))
        per_policy[policy.name] = pairs
    if task.include_lower_bound:
        if ensemble is not None:
            lower_bound = [
                res.makespan
                for res in simulate_lower_bound_batch(
                    task.work_time, ensemble, platform.checkpoint
                )
            ]
        else:
            lower_bound = [
                simulate_lower_bound(
                    task.work_time,
                    tr,
                    platform.checkpoint,
                    platform.recovery,
                    t0=task.t0,
                ).makespan
                for tr in traces
            ]
    after = cache_stats()
    memo_after = replan_memo_stats()
    disk_after = disk_cache_stats()
    # persist hit counters a hit-only worker would otherwise never flush
    get_disk_cache().flush_counters()
    return _TraceTaskResult(
        indices=list(task.indices),
        per_policy=per_policy,
        infeasible=infeasible,
        lower_bound=lower_bound,
        cache_hits=after.hits - before.hits,
        cache_misses=after.misses - before.misses,
        memo_hits=memo_after.hits - memo_before.hits,
        memo_misses=memo_after.misses - memo_before.misses,
        disk_hits=disk_after.hits - disk_before.hits,
        disk_misses=disk_after.misses - disk_before.misses,
        disk_evictions=disk_after.evictions - disk_before.evictions,
        memo_delta=(
            _shm.export_memo_delta(memo_keys) if memo_keys is not None else []
        ),
        unit_seconds=time.perf_counter() - unit_start,  # reprolint: clock-ok=scheduler diagnostics
    )


@dataclass
class _PeriodTask:
    """Phase 2 unit: mean makespan of each candidate period over the
    search-subset traces."""

    platform: Platform
    work_time: float
    horizon: float
    t0: float
    seed: int
    subset_indices: list[int]
    periods: list[float]
    max_makespan: float
    use_cache: bool
    use_batch: bool = True
    use_memo: bool = True
    use_disk_cache: bool = True
    collect_memo_delta: bool = False
    layout: object | None = None
    # in-process trace source (sweep groups, jobs<=1); never pickled
    local: SharedTraces | None = None


@dataclass
class _PeriodTaskResult:
    means: list[float]
    cache_hits: int = 0
    cache_misses: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    disk_evictions: int = 0
    memo_delta: list = field(default_factory=list)
    unit_seconds: float = 0.0


def _run_period_task(task: _PeriodTask) -> _PeriodTaskResult:
    unit_start = time.perf_counter()  # reprolint: clock-ok=scheduler diagnostics
    configure_cache(enabled=task.use_cache)
    configure_replan_memo(enabled=task.use_memo)
    configure_disk_cache(enabled=task.use_disk_cache)
    before = cache_stats()
    memo_before = replan_memo_stats()
    disk_before = disk_cache_stats()
    memo_keys = _shm.memo_snapshot() if task.collect_memo_delta else None
    platform = task.platform
    # The compiled ensemble is period-independent: one compilation is
    # amortized over the entire candidate sweep of this work unit.
    traces, ensemble = _task_traces(
        platform,
        task.horizon,
        task.seed,
        task.subset_indices,
        task.t0,
        task.use_batch,
        task.layout,
        task.local,
    )
    means = []
    for period in task.periods:
        policy = PeriodicPolicy(period, name="PeriodCandidate")
        results = simulate_policy_ensemble(
            policy,
            task.work_time,
            traces,
            platform.checkpoint,
            platform.recovery,
            platform.dist,
            t0=task.t0,
            platform_mtbf=platform.platform_mtbf,
            max_makespan=task.max_makespan,
            ensemble=ensemble,
            use_batch=task.use_batch,
        )
        # a PeriodicPolicy is never infeasible: every entry is a result
        spans = [res.makespan for res in results if res is not None]
        means.append(float(np.mean(spans)))
    after = cache_stats()
    memo_after = replan_memo_stats()
    disk_after = disk_cache_stats()
    # persist hit counters a hit-only worker would otherwise never flush
    get_disk_cache().flush_counters()
    return _PeriodTaskResult(
        means=means,
        cache_hits=after.hits - before.hits,
        cache_misses=after.misses - before.misses,
        memo_hits=memo_after.hits - memo_before.hits,
        memo_misses=memo_after.misses - memo_before.misses,
        disk_hits=disk_after.hits - disk_before.hits,
        disk_misses=disk_after.misses - disk_before.misses,
        disk_evictions=disk_after.evictions - disk_before.evictions,
        memo_delta=(
            _shm.export_memo_delta(memo_keys) if memo_keys is not None else []
        ),
        unit_seconds=time.perf_counter() - unit_start,  # reprolint: clock-ok=scheduler diagnostics
    )


def _chunk(items: list, size: int) -> list[list]:
    return [items[i : i + size] for i in range(0, len(items), size)]


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------


class ParallelRunner:
    """Scenario executor: serial in process (``jobs=1``) or fanned out
    over worker processes (``jobs>1``), with identical results.

    Parameters
    ----------
    jobs:
        Worker processes; None reads the process-wide default
        (:func:`set_default_execution`), 0 or negative uses every CPU.
    batch_size:
        Trace indices per work unit; None splits the trace set into
        about four units per worker.
    use_cache:
        Consult the shared DP table cache (None reads the default).
    use_batch:
        Replay static-schedule policies with the vectorized batch
        engine; None reads the default.  Results are bit-identical
        either way (``--no-batch`` forces the scalar engine).
    use_memo:
        Consult the DPNextFailure replan memo; None reads the default
        (``--no-memo`` disables).  Bit-identical either way.
    use_shm:
        Publish traces/ensembles to workers through shared memory; None
        reads the default.  Only engaged with ``jobs > 1``; falls back
        to per-task regeneration on any failure.  Bit-identical either
        way (``--no-shm`` forces regeneration).
    use_disk_cache:
        Consult the persistent disk solve tier below the in-memory
        caches; None reads the default (``--no-disk-cache`` disables).
        Bit-identical either way — the disk tier only changes which
        process pays for a solve.
    progress:
        Optional callback ``progress(done, total)`` invoked after every
        completed work unit (trace batch, period batch, winner batch).
        ``total`` grows as later phases enqueue their units, so treat it
        as the best current estimate, not a constant.  Used by the
        scenario service for its status/stream JSON; never affects
        results.  Exceptions raised by the callback propagate.
    executor:
        Optional externally-owned ``ProcessPoolExecutor`` to dispatch
        on instead of spinning one pool per phase.  The sweep engine
        passes one pool for a whole grid, amortizing worker startup
        over every scenario; the caller owns its shutdown.  Ignored on
        serial runs.
    """

    def __init__(
        self,
        jobs: int | None = None,
        batch_size: int | None = None,
        use_cache: bool | None = None,
        use_batch: bool | None = None,
        use_memo: bool | None = None,
        use_shm: bool | None = None,
        use_disk_cache: bool | None = None,
        progress: Callable[[int, int], None] | None = None,
        executor: ProcessPoolExecutor | None = None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.batch_size = (
            batch_size if batch_size is not None else _DEFAULT.batch_size
        )
        self.use_cache = (
            _DEFAULT.use_cache if use_cache is None else bool(use_cache)
        )
        self.use_batch = (
            _DEFAULT.use_batch if use_batch is None else bool(use_batch)
        )
        self.use_memo = (
            _DEFAULT.use_memo if use_memo is None else bool(use_memo)
        )
        self.use_shm = _DEFAULT.use_shm if use_shm is None else bool(use_shm)
        self.use_disk_cache = (
            _DEFAULT.use_disk_cache
            if use_disk_cache is None
            else bool(use_disk_cache)
        )
        self.progress = progress
        self._executor = executor
        self._units_done = 0
        self._units_total = 0
        # per-unit cost estimates and measured seconds, accumulated
        # across phases for ScenarioResult.scheduler
        self._sched_costs: list[float] = []
        self._sched_seconds: list[float] = []

    # -- internal dispatch ---------------------------------------------

    def _unit_done(self) -> None:
        self._units_done += 1
        if self.progress is not None:
            self.progress(self._units_done, self._units_total)

    def _map(self, fn, tasks: list, costs: list[float] | None = None):
        """Run ``fn`` over ``tasks``, in process or on the pool; results
        come back in task order either way.  Each completed task ticks
        the progress callback.

        ``costs`` (estimated per-unit cost, same length as ``tasks``)
        turns on longest-first dispatch: units are *submitted* in
        descending cost order (LPT — workers pick up the expensive
        stragglers first), while collection stays in task order, so
        callers that rely on order (period means) see no difference.
        """
        self._units_total += len(tasks)
        if costs is not None:
            self._sched_costs.extend(costs)
        if self.jobs <= 1 or len(tasks) <= 1:
            out = []
            for t in tasks:
                out.append(fn(t))
                self._unit_done()
            return out
        order = list(range(len(tasks)))
        if costs is not None:
            order.sort(key=lambda i: (-costs[i], i))
        if self._executor is not None:
            pool, owns = self._executor, False
        else:
            workers = min(self.jobs, len(tasks))
            pool, owns = ProcessPoolExecutor(max_workers=workers), True
        try:
            futures = {i: pool.submit(fn, tasks[i]) for i in order}
            out = []
            for i in range(len(tasks)):
                out.append(futures[i].result())
                self._unit_done()
            return out
        finally:
            if owns:
                pool.shutdown()

    def _trace_batches(
        self, indices: list[int], per_trace_cost: float = 1.0
    ) -> list[list[int]]:
        """Split trace indices into work units.

        An explicit ``batch_size`` wins.  Otherwise the granularity
        adapts to the estimated per-trace cost: cheap vectorized
        replays stay chunky (~4 units per worker, little IPC), while
        expensive adaptive replays split finer — imbalance there costs
        whole DP solves, and the extra dispatch overhead is noise next
        to one unit's runtime.  Batching never affects results (traces
        are stitched back by index).
        """
        if self.batch_size is not None:
            size = max(1, int(self.batch_size))
        else:
            units_per_worker = int(
                min(16, max(4, round(2.0 * math.sqrt(max(per_trace_cost, 1.0)))))
            )
            size = max(
                1, math.ceil(len(indices) / max(1, self.jobs * units_per_worker))
            )
        return _chunk(indices, size)

    def _scheduler_stats(self) -> dict:
        """JSON-ready summary of the run's unit cost estimates and
        measured unit wall-clock (max/mean imbalance)."""
        costs = self._sched_costs
        seconds = [s for s in self._sched_seconds if s > 0.0]
        stats: dict = {
            "units": len(costs),
            "longest_first": self.jobs > 1,
        }
        if costs:
            mean = sum(costs) / len(costs)
            stats["est_cost_max"] = max(costs)
            stats["est_cost_mean"] = mean
            stats["est_imbalance"] = max(costs) / mean if mean > 0 else 1.0
        if seconds:
            mean_s = sum(seconds) / len(seconds)
            stats["unit_seconds_max"] = max(seconds)
            stats["unit_seconds_mean"] = mean_s
            stats["seconds_imbalance"] = (
                max(seconds) / mean_s if mean_s > 0 else 1.0
            )
        return stats

    # -- public API ----------------------------------------------------

    def run(
        self,
        policies: list,
        platform: Platform,
        work_time: float,
        n_traces: int,
        horizon: float,
        t0: float = 0.0,
        seed: int = 0,
        include_lower_bound: bool = True,
        include_period_lb: bool = True,
        period_lb_factors: list[float] | None = None,
        period_lb_traces: int | None = None,
        max_makespan: float = math.inf,
        shared: SharedTraces | None = None,
    ):
        """Run ``policies`` over ``n_traces`` generated traces; see
        :func:`repro.simulation.runner.run_scenarios` for semantics.

        ``shared`` hands the runner a pre-built trace set (sweep
        groups): generation/publication is skipped and the caller keeps
        the backing publication alive for the duration of the call.
        Bit-identical to self-generation by the determinism anchor.
        """
        # diagnostic elapsed-time only; never feeds simulation state
        start = time.perf_counter()  # reprolint: clock-ok=diagnostic elapsed time
        self._units_done = 0
        self._units_total = 0
        self._sched_costs = []
        self._sched_seconds = []
        prior_enabled = get_cache().enabled
        prior_memo = get_replan_memo().enabled
        prior_disk = get_disk_cache().enabled
        configure_cache(enabled=self.use_cache)
        configure_replan_memo(enabled=self.use_memo)
        configure_disk_cache(enabled=self.use_disk_cache)
        try:
            return self._run(
                policies,
                platform,
                work_time,
                n_traces,
                horizon,
                t0,
                seed,
                include_lower_bound,
                include_period_lb,
                period_lb_factors,
                period_lb_traces,
                max_makespan,
                start,
                shared,
            )
        finally:
            configure_cache(enabled=prior_enabled)
            configure_replan_memo(enabled=prior_memo)
            configure_disk_cache(enabled=prior_disk)

    def _run(
        self,
        policies,
        platform,
        work_time,
        n_traces,
        horizon,
        t0,
        seed,
        include_lower_bound,
        include_period_lb,
        period_lb_factors,
        period_lb_traces,
        max_makespan,
        start,
        shared=None,
    ):
        # Publish the scenario's traces (and compiled ensemble) once so
        # workers attach instead of regenerating per task.  Serial runs
        # skip it: the in-process path touches each trace exactly once.
        # A sweep-shared trace set short-circuits both: the group owner
        # already generated (and, with jobs>1, published) the arrays.
        publication = None
        layout = None
        local = None
        if shared is not None:
            layout = shared.layout
            if self.jobs <= 1:
                local = shared
        elif self.use_shm and self.jobs > 1 and n_traces > 0:
            try:
                all_traces = [
                    _job_trace(platform, horizon, seed, i)
                    for i in range(n_traces)
                ]
                ensemble = (
                    TraceEnsemble(all_traces, platform.recovery, t0)
                    if self.use_batch
                    else None
                )
                publication = _shm.publish_scenario(
                    all_traces,
                    ensemble,
                    n_units=platform.num_nodes,
                    downtime=platform.downtime,
                    horizon=horizon,
                    recovery=platform.recovery,
                    t0=t0,
                )
                layout = publication.layout
            except Exception:
                # no shared memory on this platform / size limits: fall
                # back to per-task regeneration (bit-identical)
                publication = None
                layout = None
        try:
            return self._run_phases(
                policies,
                platform,
                work_time,
                n_traces,
                horizon,
                t0,
                seed,
                include_lower_bound,
                include_period_lb,
                period_lb_factors,
                period_lb_traces,
                max_makespan,
                start,
                layout,
                local,
                shared is not None,
            )
        finally:
            if publication is not None:
                publication.close()

    def _run_phases(
        self,
        policies,
        platform,
        work_time,
        n_traces,
        horizon,
        t0,
        seed,
        include_lower_bound,
        include_period_lb,
        period_lb_factors,
        period_lb_traces,
        max_makespan,
        start,
        layout,
        local=None,
        from_shared=False,
    ):
        # Imported here: runner imports this module's config helpers, so
        # a module-level import would be circular.
        from repro.simulation.runner import LOWER_BOUND, PERIOD_LB, ScenarioResult
        from repro.simulation.runner import _optexp_period

        # Per-trace cost estimate drives chunk granularity and the
        # longest-first dispatch order; the disk-tier discount is read
        # once (it walks the tier directory) and only when an adaptive
        # policy makes it matter.
        discount = (
            _disk_discount(self.use_disk_cache)
            if any(getattr(p, "n_grid", None) is not None for p in policies)
            else 1.0
        )
        per_trace_cost = sum(_policy_weight(p, discount) for p in policies)
        if include_lower_bound:
            per_trace_cost += 1.0

        hits = misses = 0
        memo_hits = memo_misses = 0
        disk_hits = disk_misses = disk_evictions = 0
        # With several workers, each unit ships back the memo entries it
        # added; the parent merges them so later phases fork warm, and
        # the union of delta keys is the deduplicated miss count.
        collect_delta = self.jobs > 1 and self.use_memo
        merged_keys: set = set()

        def _absorb(res) -> None:
            nonlocal hits, misses, memo_hits, memo_misses
            nonlocal disk_hits, disk_misses, disk_evictions
            hits += res.cache_hits
            misses += res.cache_misses
            memo_hits += res.memo_hits
            memo_misses += res.memo_misses
            disk_hits += res.disk_hits
            disk_misses += res.disk_misses
            disk_evictions += res.disk_evictions
            self._sched_seconds.append(res.unit_seconds)
            if res.memo_delta:
                _shm.merge_memo_delta(res.memo_delta)
                merged_keys.update(key for key, _value in res.memo_delta)

        indices = list(range(n_traces))
        tasks = [
            _TraceTask(
                platform=platform,
                work_time=work_time,
                horizon=horizon,
                t0=t0,
                seed=seed,
                indices=batch,
                policies=policies,
                include_lower_bound=include_lower_bound,
                max_makespan=max_makespan,
                use_cache=self.use_cache,
                use_batch=self.use_batch,
                use_memo=self.use_memo,
                use_disk_cache=self.use_disk_cache,
                collect_memo_delta=collect_delta,
                layout=layout,
                local=local,
            )
            for batch in self._trace_batches(indices, per_trace_cost)
        ]
        results = self._map(
            _run_trace_task,
            tasks,
            costs=[len(t.indices) * per_trace_cost for t in tasks],
        )

        makespans: dict[str, np.ndarray] = {
            p.name: np.full(n_traces, np.nan) for p in policies
        }
        details: dict[str, list] = {p.name: [None] * n_traces for p in policies}
        infeasible: dict[str, list[int]] = {}
        lb_spans = np.full(n_traces, np.nan)
        for res in results:
            _absorb(res)
            for name, pairs in res.per_policy.items():
                for index, (span, det) in zip(res.indices, pairs):
                    makespans[name][index] = span
                    details[name][index] = det
            for name, idxs in res.infeasible.items():
                infeasible.setdefault(name, []).extend(idxs)
            if res.lower_bound:
                for index, span in zip(res.indices, res.lower_bound):
                    lb_spans[index] = span
        for name in infeasible:
            infeasible[name].sort()
        if include_lower_bound:
            makespans[LOWER_BOUND] = lb_spans

        best_period = math.nan
        if include_period_lb:
            from repro.policies.periodlb import candidate_factors

            factors = (
                period_lb_factors
                if period_lb_factors is not None
                else candidate_factors()
            )
            base = _optexp_period(platform, work_time)
            periods = np.asarray(sorted(base * np.asarray(factors, dtype=float)))
            subset = indices[: (period_lb_traces or n_traces)]
            per_unit = max(
                1, math.ceil(periods.size / max(1, self.jobs * 2))
            )
            period_tasks = [
                _PeriodTask(
                    platform=platform,
                    work_time=work_time,
                    horizon=horizon,
                    t0=t0,
                    seed=seed,
                    subset_indices=subset,
                    periods=batch,
                    max_makespan=max_makespan,
                    use_cache=self.use_cache,
                    use_batch=self.use_batch,
                    use_memo=self.use_memo,
                    use_disk_cache=self.use_disk_cache,
                    collect_memo_delta=collect_delta,
                    layout=layout,
                    local=local,
                )
                for batch in _chunk(list(periods), per_unit)
            ]
            # candidate periods replay vectorized (weight 1 per trace)
            period_costs = [
                len(t.periods) * len(t.subset_indices) for t in period_tasks
            ]
            means: list[float] = []
            for period_res in self._map(
                _run_period_task, period_tasks, costs=period_costs
            ):
                means.extend(period_res.means)
                _absorb(period_res)
            best = int(np.argmin(means))
            best_period = float(periods[best])

            winner_tasks = [
                _TraceTask(
                    platform=platform,
                    work_time=work_time,
                    horizon=horizon,
                    t0=t0,
                    seed=seed,
                    indices=batch,
                    policies=[PeriodicPolicy(best_period, name=PERIOD_LB)],
                    include_lower_bound=False,
                    max_makespan=max_makespan,
                    use_cache=self.use_cache,
                    use_batch=self.use_batch,
                    use_memo=self.use_memo,
                    use_disk_cache=self.use_disk_cache,
                    collect_memo_delta=collect_delta,
                    layout=layout,
                    local=local,
                )
                for batch in self._trace_batches(indices)
            ]
            lb_period_spans = np.full(n_traces, np.nan)
            for res in self._map(
                _run_trace_task,
                winner_tasks,
                costs=[float(len(t.indices)) for t in winner_tasks],
            ):
                _absorb(res)
                for index, (span, _det) in zip(res.indices, res.per_policy[PERIOD_LB]):
                    lb_period_spans[index] = span
            makespans[PERIOD_LB] = lb_period_spans

        # Shared traces count as reused only when a sharing channel was
        # actually wired up: the in-process list (serial) or the group's
        # shm layout (parallel) — jobs>1 without a layout regenerates.
        trace_gen_reused = from_shared and (local is not None or layout is not None)
        ensemble_reused = bool(
            trace_gen_reused
            and self.use_batch
            and (
                (local is not None and local.ensemble is not None)
                or (layout is not None and getattr(layout, "has_ensemble", False))
            )
        )
        return ScenarioResult(
            makespans=makespans,
            details=details,
            work_time=work_time,
            best_period=best_period,
            infeasible=infeasible,
            elapsed=time.perf_counter() - start,  # reprolint: clock-ok=diagnostic elapsed time
            n_jobs=self.jobs,
            cache_hits=hits,
            cache_misses=misses,
            memo_hits=memo_hits,
            memo_misses=memo_misses,
            memo_unique_misses=(
                len(merged_keys) if collect_delta else memo_misses
            ),
            disk_hits=disk_hits,
            disk_misses=disk_misses,
            disk_evictions=disk_evictions,
            trace_gen_reused=trace_gen_reused,
            ensemble_reused=ensemble_reused,
            scheduler=self._scheduler_stats(),
        )
