"""Parallel execution layer for the simulation study.

The paper's experiments (Sections 4-6) evaluate ~10 policies over
hundreds of independent failure traces per scenario — embarrassingly
parallel work that the serial runner executed one (policy, trace) pair
at a time.  :class:`ParallelRunner` fans that work out over a
``concurrent.futures.ProcessPoolExecutor`` in three phases:

1. **trace phase** — batches of trace indices; each worker regenerates
   its traces and runs every policy (plus the omniscient LowerBound);
2. **period-search phase** — batches of PeriodLB candidate periods,
   each evaluated over the search-subset traces;
3. **winner phase** — the best period's policy over all traces.

Determinism guarantee
---------------------
Results are **bit-identical** to the serial path for a fixed ``seed``,
by construction:

- trace ``i`` is always generated from
  ``numpy.random.SeedSequence([seed, i])`` — a function of the trace
  *index* alone, never of the batch it lands in or the worker that runs
  it;
- :func:`repro.simulation.engine.simulate_job` is deterministic given
  (policy parameters, trace), and every policy's per-trace state is
  reset by ``setup()``;
- batches are stitched back by index, and the PeriodLB winner is the
  ``argmin`` over the same sorted candidate array the serial path scans.

Running with ``jobs=1`` executes the identical unit functions in
process, so the serial path is the parallel path with a trivial
executor — there is no second implementation to drift.

Infeasible policies (:class:`repro.policies.base.PolicyInfeasibleError`,
e.g. Liu on large Weibull platforms) are recorded explicitly in
``ScenarioResult.infeasible`` as ``{policy name: [trace indices]}`` on
both paths; their makespans stay ``NaN`` as before, but the error is no
longer silently swallowed.

DP table caching is controlled per run (``use_cache``) and observable:
workers return per-unit hit/miss deltas of :mod:`repro.core.cache`,
aggregated into ``ScenarioResult.cache_hits`` / ``cache_misses``.  The
DPNextFailure replan memo (``use_memo``) is handled the same way, with
deltas aggregated into ``memo_hits`` / ``memo_misses``.  Because those
sums add up *per-worker* counters, a signature solved independently by
N workers contributes N misses; ``ScenarioResult.memo_unique_misses``
reports the deduplicated view — the number of distinct memo entries
actually solved — so shared-memo gains are visible rather than drowned
in double counts.

The persistent disk tier (``use_disk_cache``,
:mod:`repro.core.diskcache`) sits below both in-memory caches: workers
report per-unit disk hit/miss/evict deltas, aggregated into
``ScenarioResult.disk_hits`` / ``disk_misses`` / ``disk_evictions``.
With ``jobs > 1`` the replan memo is additionally **shared across
workers**: each work unit ships the memo entries it added back to the
parent, which merges them (:func:`repro.simulation.shm.merge_memo_delta`)
so later phases fork warm, while the disk tier shares solves between
workers inside a phase.

Shared-memory trace publication (``use_shm``, default on): with
``jobs > 1`` the parent generates all traces and compiles the scenario
ensemble once, publishes the arrays via
:mod:`repro.simulation.shm`, and workers attach and copy out only the
rows of their work unit instead of regenerating per task (previously a
trace could be rebuilt once per phase).  Any publish/attach failure
falls back silently to regeneration — bit-identical by the determinism
anchor above, shared memory only changes who computes the traces.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.cluster.models import Platform
from repro.core.cache import (
    cache_stats,
    configure_cache,
    configure_replan_memo,
    get_cache,
    get_replan_memo,
    replan_memo_stats,
)
from repro.core.diskcache import (
    configure_disk_cache,
    disk_cache_stats,
    get_disk_cache,
)
from repro.simulation import shm as _shm
from repro.policies.base import PeriodicPolicy
from repro.simulation.batch import (
    TraceEnsemble,
    simulate_lower_bound_batch,
    simulate_policy_ensemble,
)
from repro.simulation.engine import simulate_lower_bound
from repro.traces.generation import generate_platform_traces

__all__ = [
    "ExecutionConfig",
    "ParallelRunner",
    "get_default_execution",
    "set_default_execution",
    "resolve_jobs",
]


@dataclass
class ExecutionConfig:
    """Process-wide defaults for scenario execution.

    ``jobs``: worker processes (1 = in-process serial; 0 or negative =
    one per available CPU).  ``use_cache``: consult the shared DP table
    cache.  ``batch_size``: trace indices per work unit (None = split
    evenly, ~4 units per worker for load balancing).  ``use_batch``:
    replay static-schedule policies with the vectorized batch engine
    (:mod:`repro.simulation.batch`); results are bit-identical either
    way, so False is only an escape hatch / A-B check.  ``use_memo``:
    consult the DPNextFailure replan memo (:mod:`repro.core.cache`).
    ``use_shm``: publish traces/ensembles to workers via shared memory
    (:mod:`repro.simulation.shm`); falls back to per-task regeneration
    on any failure.  ``use_disk_cache``: consult the persistent disk
    solve tier (:mod:`repro.core.diskcache`) under the in-memory
    caches.  All five toggles leave results bit-identical.
    """

    jobs: int = 1
    use_cache: bool = True
    batch_size: int | None = None
    use_batch: bool = True
    use_memo: bool = True
    use_shm: bool = True
    use_disk_cache: bool = True


_DEFAULT = ExecutionConfig()


def get_default_execution() -> ExecutionConfig:
    """A copy of the current default execution configuration."""
    return replace(_DEFAULT)


def set_default_execution(
    jobs: int | None = None,
    use_cache: bool | None = None,
    batch_size: int | None = None,
    use_batch: bool | None = None,
    use_memo: bool | None = None,
    use_shm: bool | None = None,
    use_disk_cache: bool | None = None,
) -> None:
    """Set process-wide execution defaults (CLI flags, benchmark env)."""
    if jobs is not None:
        _DEFAULT.jobs = int(jobs)
    if use_cache is not None:
        _DEFAULT.use_cache = bool(use_cache)
    if batch_size is not None:
        _DEFAULT.batch_size = int(batch_size)
    if use_batch is not None:
        _DEFAULT.use_batch = bool(use_batch)
    if use_memo is not None:
        _DEFAULT.use_memo = bool(use_memo)
    if use_shm is not None:
        _DEFAULT.use_shm = bool(use_shm)
    if use_disk_cache is not None:
        _DEFAULT.use_disk_cache = bool(use_disk_cache)


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` request: None -> default config, 0 or
    negative -> one worker per available CPU."""
    if jobs is None:
        jobs = _DEFAULT.jobs
    jobs = int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


# ----------------------------------------------------------------------
# work units (module level: picklable by ProcessPoolExecutor)
# ----------------------------------------------------------------------


def _job_trace(platform: Platform, horizon: float, seed: int, index: int):
    """Trace ``index`` of the scenario — a pure function of
    ``(platform, horizon, seed, index)``, the determinism anchor."""
    return generate_platform_traces(
        platform.dist,
        platform.num_nodes,
        horizon,
        downtime=platform.downtime,
        seed=np.random.SeedSequence([int(seed), int(index)]),
    ).for_job(platform.num_nodes)


def _task_traces(
    platform: Platform,
    horizon: float,
    seed: int,
    indices: list[int],
    t0: float,
    use_batch: bool,
    layout,
):
    """Materialize a work unit's traces + compiled ensemble.

    Preferred source: the scenario's shared-memory publication
    (``layout``) — attach, copy the unit's rows, detach.  Fallback (no
    layout, or any attach failure): regenerate from the determinism
    anchor and compile per batch, exactly the pre-shm path.  Both
    sources yield bit-identical traces, and a row subset of the global
    ensemble is replay-equivalent to a per-batch compilation (padding
    columns are inert), so the choice never affects results.
    """
    if layout is not None:
        try:
            with _shm.attach_scenario(layout) as scenario:
                traces = [scenario.job_traces(i) for i in indices]
                ensemble = (
                    scenario.ensemble_rows(indices)
                    if use_batch and traces
                    else None
                )
            return traces, ensemble
        except Exception:
            # segment gone / platform quirk: drop the layout and
            # regenerate below (bit-identical by the determinism anchor)
            layout = None
    traces = [_job_trace(platform, horizon, seed, index) for index in indices]
    ensemble = (
        TraceEnsemble(traces, platform.recovery, t0)
        if use_batch and traces
        else None
    )
    return traces, ensemble


@dataclass
class _TraceTask:
    """Phase 1/3 unit: run ``policies`` over the traces in ``indices``."""

    platform: Platform
    work_time: float
    horizon: float
    t0: float
    seed: int
    indices: list[int]
    policies: list
    include_lower_bound: bool
    max_makespan: float
    use_cache: bool
    use_batch: bool = True
    use_memo: bool = True
    use_disk_cache: bool = True
    collect_memo_delta: bool = False
    layout: object | None = None


@dataclass
class _TraceTaskResult:
    indices: list[int]
    # per policy name: list of (makespan, SimulationResult | None) in
    # index order; None marks an infeasible (policy, trace) pair
    per_policy: dict[str, list[tuple[float, object]]]
    infeasible: dict[str, list[int]] = field(default_factory=dict)
    lower_bound: list[float] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    disk_evictions: int = 0
    # replan-memo entries this unit added (shipped back for the parent
    # to merge; empty unless collect_memo_delta was set)
    memo_delta: list = field(default_factory=list)


def _run_trace_task(task: _TraceTask) -> _TraceTaskResult:
    configure_cache(enabled=task.use_cache)
    configure_replan_memo(enabled=task.use_memo)
    configure_disk_cache(enabled=task.use_disk_cache)
    before = cache_stats()
    memo_before = replan_memo_stats()
    disk_before = disk_cache_stats()
    memo_keys = _shm.memo_snapshot() if task.collect_memo_delta else None
    platform = task.platform
    per_policy: dict[str, list[tuple[float, object]]] = {}
    infeasible: dict[str, list[int]] = {}
    lower_bound: list[float] = []
    # One compiled ensemble serves every static-schedule policy of the
    # batch (and the LowerBound); dynamic policies fall back to the
    # scalar engine inside simulate_policy_ensemble.
    traces, ensemble = _task_traces(
        platform,
        task.horizon,
        task.seed,
        task.indices,
        task.t0,
        task.use_batch,
        task.layout,
    )
    for policy in task.policies:
        results = simulate_policy_ensemble(
            policy,
            task.work_time,
            traces,
            platform.checkpoint,
            platform.recovery,
            platform.dist,
            t0=task.t0,
            platform_mtbf=platform.platform_mtbf,
            max_makespan=task.max_makespan,
            ensemble=ensemble,
            use_batch=task.use_batch,
        )
        pairs: list[tuple[float, object]] = []
        for index, res in zip(task.indices, results):
            if res is None:
                pairs.append((math.nan, None))
                infeasible.setdefault(policy.name, []).append(index)
            else:
                pairs.append((res.makespan, res))
        per_policy[policy.name] = pairs
    if task.include_lower_bound:
        if ensemble is not None:
            lower_bound = [
                res.makespan
                for res in simulate_lower_bound_batch(
                    task.work_time, ensemble, platform.checkpoint
                )
            ]
        else:
            lower_bound = [
                simulate_lower_bound(
                    task.work_time,
                    tr,
                    platform.checkpoint,
                    platform.recovery,
                    t0=task.t0,
                ).makespan
                for tr in traces
            ]
    after = cache_stats()
    memo_after = replan_memo_stats()
    disk_after = disk_cache_stats()
    # persist hit counters a hit-only worker would otherwise never flush
    get_disk_cache().flush_counters()
    return _TraceTaskResult(
        indices=list(task.indices),
        per_policy=per_policy,
        infeasible=infeasible,
        lower_bound=lower_bound,
        cache_hits=after.hits - before.hits,
        cache_misses=after.misses - before.misses,
        memo_hits=memo_after.hits - memo_before.hits,
        memo_misses=memo_after.misses - memo_before.misses,
        disk_hits=disk_after.hits - disk_before.hits,
        disk_misses=disk_after.misses - disk_before.misses,
        disk_evictions=disk_after.evictions - disk_before.evictions,
        memo_delta=(
            _shm.export_memo_delta(memo_keys) if memo_keys is not None else []
        ),
    )


@dataclass
class _PeriodTask:
    """Phase 2 unit: mean makespan of each candidate period over the
    search-subset traces."""

    platform: Platform
    work_time: float
    horizon: float
    t0: float
    seed: int
    subset_indices: list[int]
    periods: list[float]
    max_makespan: float
    use_cache: bool
    use_batch: bool = True
    use_memo: bool = True
    use_disk_cache: bool = True
    collect_memo_delta: bool = False
    layout: object | None = None


@dataclass
class _PeriodTaskResult:
    means: list[float]
    cache_hits: int = 0
    cache_misses: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    disk_evictions: int = 0
    memo_delta: list = field(default_factory=list)


def _run_period_task(task: _PeriodTask) -> _PeriodTaskResult:
    configure_cache(enabled=task.use_cache)
    configure_replan_memo(enabled=task.use_memo)
    configure_disk_cache(enabled=task.use_disk_cache)
    before = cache_stats()
    memo_before = replan_memo_stats()
    disk_before = disk_cache_stats()
    memo_keys = _shm.memo_snapshot() if task.collect_memo_delta else None
    platform = task.platform
    # The compiled ensemble is period-independent: one compilation is
    # amortized over the entire candidate sweep of this work unit.
    traces, ensemble = _task_traces(
        platform,
        task.horizon,
        task.seed,
        task.subset_indices,
        task.t0,
        task.use_batch,
        task.layout,
    )
    means = []
    for period in task.periods:
        policy = PeriodicPolicy(period, name="PeriodCandidate")
        results = simulate_policy_ensemble(
            policy,
            task.work_time,
            traces,
            platform.checkpoint,
            platform.recovery,
            platform.dist,
            t0=task.t0,
            platform_mtbf=platform.platform_mtbf,
            max_makespan=task.max_makespan,
            ensemble=ensemble,
            use_batch=task.use_batch,
        )
        # a PeriodicPolicy is never infeasible: every entry is a result
        spans = [res.makespan for res in results if res is not None]
        means.append(float(np.mean(spans)))
    after = cache_stats()
    memo_after = replan_memo_stats()
    disk_after = disk_cache_stats()
    # persist hit counters a hit-only worker would otherwise never flush
    get_disk_cache().flush_counters()
    return _PeriodTaskResult(
        means=means,
        cache_hits=after.hits - before.hits,
        cache_misses=after.misses - before.misses,
        memo_hits=memo_after.hits - memo_before.hits,
        memo_misses=memo_after.misses - memo_before.misses,
        disk_hits=disk_after.hits - disk_before.hits,
        disk_misses=disk_after.misses - disk_before.misses,
        disk_evictions=disk_after.evictions - disk_before.evictions,
        memo_delta=(
            _shm.export_memo_delta(memo_keys) if memo_keys is not None else []
        ),
    )


def _chunk(items: list, size: int) -> list[list]:
    return [items[i : i + size] for i in range(0, len(items), size)]


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------


class ParallelRunner:
    """Scenario executor: serial in process (``jobs=1``) or fanned out
    over worker processes (``jobs>1``), with identical results.

    Parameters
    ----------
    jobs:
        Worker processes; None reads the process-wide default
        (:func:`set_default_execution`), 0 or negative uses every CPU.
    batch_size:
        Trace indices per work unit; None splits the trace set into
        about four units per worker.
    use_cache:
        Consult the shared DP table cache (None reads the default).
    use_batch:
        Replay static-schedule policies with the vectorized batch
        engine; None reads the default.  Results are bit-identical
        either way (``--no-batch`` forces the scalar engine).
    use_memo:
        Consult the DPNextFailure replan memo; None reads the default
        (``--no-memo`` disables).  Bit-identical either way.
    use_shm:
        Publish traces/ensembles to workers through shared memory; None
        reads the default.  Only engaged with ``jobs > 1``; falls back
        to per-task regeneration on any failure.  Bit-identical either
        way (``--no-shm`` forces regeneration).
    use_disk_cache:
        Consult the persistent disk solve tier below the in-memory
        caches; None reads the default (``--no-disk-cache`` disables).
        Bit-identical either way — the disk tier only changes which
        process pays for a solve.
    progress:
        Optional callback ``progress(done, total)`` invoked after every
        completed work unit (trace batch, period batch, winner batch).
        ``total`` grows as later phases enqueue their units, so treat it
        as the best current estimate, not a constant.  Used by the
        scenario service for its status/stream JSON; never affects
        results.  Exceptions raised by the callback propagate.
    """

    def __init__(
        self,
        jobs: int | None = None,
        batch_size: int | None = None,
        use_cache: bool | None = None,
        use_batch: bool | None = None,
        use_memo: bool | None = None,
        use_shm: bool | None = None,
        use_disk_cache: bool | None = None,
        progress: Callable[[int, int], None] | None = None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.batch_size = (
            batch_size if batch_size is not None else _DEFAULT.batch_size
        )
        self.use_cache = (
            _DEFAULT.use_cache if use_cache is None else bool(use_cache)
        )
        self.use_batch = (
            _DEFAULT.use_batch if use_batch is None else bool(use_batch)
        )
        self.use_memo = (
            _DEFAULT.use_memo if use_memo is None else bool(use_memo)
        )
        self.use_shm = _DEFAULT.use_shm if use_shm is None else bool(use_shm)
        self.use_disk_cache = (
            _DEFAULT.use_disk_cache
            if use_disk_cache is None
            else bool(use_disk_cache)
        )
        self.progress = progress
        self._units_done = 0
        self._units_total = 0

    # -- internal dispatch ---------------------------------------------

    def _unit_done(self) -> None:
        self._units_done += 1
        if self.progress is not None:
            self.progress(self._units_done, self._units_total)

    def _map(self, fn, tasks: list):
        """Run ``fn`` over ``tasks``, in process or on the pool; results
        come back in task order either way.  Each completed task ticks
        the progress callback."""
        self._units_total += len(tasks)
        if self.jobs <= 1 or len(tasks) <= 1:
            out = []
            for t in tasks:
                out.append(fn(t))
                self._unit_done()
            return out
        workers = min(self.jobs, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            out = []
            for result in pool.map(fn, tasks):
                out.append(result)
                self._unit_done()
            return out

    def _trace_batches(self, indices: list[int]) -> list[list[int]]:
        if self.batch_size is not None:
            size = max(1, int(self.batch_size))
        else:
            size = max(1, math.ceil(len(indices) / max(1, self.jobs * 4)))
        return _chunk(indices, size)

    # -- public API ----------------------------------------------------

    def run(
        self,
        policies: list,
        platform: Platform,
        work_time: float,
        n_traces: int,
        horizon: float,
        t0: float = 0.0,
        seed: int = 0,
        include_lower_bound: bool = True,
        include_period_lb: bool = True,
        period_lb_factors: list[float] | None = None,
        period_lb_traces: int | None = None,
        max_makespan: float = math.inf,
    ):
        """Run ``policies`` over ``n_traces`` generated traces; see
        :func:`repro.simulation.runner.run_scenarios` for semantics."""
        # diagnostic elapsed-time only; never feeds simulation state
        start = time.perf_counter()  # reprolint: clock-ok=diagnostic elapsed time
        self._units_done = 0
        self._units_total = 0
        prior_enabled = get_cache().enabled
        prior_memo = get_replan_memo().enabled
        prior_disk = get_disk_cache().enabled
        configure_cache(enabled=self.use_cache)
        configure_replan_memo(enabled=self.use_memo)
        configure_disk_cache(enabled=self.use_disk_cache)
        try:
            return self._run(
                policies,
                platform,
                work_time,
                n_traces,
                horizon,
                t0,
                seed,
                include_lower_bound,
                include_period_lb,
                period_lb_factors,
                period_lb_traces,
                max_makespan,
                start,
            )
        finally:
            configure_cache(enabled=prior_enabled)
            configure_replan_memo(enabled=prior_memo)
            configure_disk_cache(enabled=prior_disk)

    def _run(
        self,
        policies,
        platform,
        work_time,
        n_traces,
        horizon,
        t0,
        seed,
        include_lower_bound,
        include_period_lb,
        period_lb_factors,
        period_lb_traces,
        max_makespan,
        start,
    ):
        # Publish the scenario's traces (and compiled ensemble) once so
        # workers attach instead of regenerating per task.  Serial runs
        # skip it: the in-process path touches each trace exactly once.
        publication = None
        if self.use_shm and self.jobs > 1 and n_traces > 0:
            try:
                all_traces = [
                    _job_trace(platform, horizon, seed, i)
                    for i in range(n_traces)
                ]
                ensemble = (
                    TraceEnsemble(all_traces, platform.recovery, t0)
                    if self.use_batch
                    else None
                )
                publication = _shm.publish_scenario(
                    all_traces,
                    ensemble,
                    n_units=platform.num_nodes,
                    downtime=platform.downtime,
                    horizon=horizon,
                    recovery=platform.recovery,
                    t0=t0,
                )
            except Exception:
                # no shared memory on this platform / size limits: fall
                # back to per-task regeneration (bit-identical)
                publication = None
        try:
            return self._run_phases(
                policies,
                platform,
                work_time,
                n_traces,
                horizon,
                t0,
                seed,
                include_lower_bound,
                include_period_lb,
                period_lb_factors,
                period_lb_traces,
                max_makespan,
                start,
                publication.layout if publication is not None else None,
            )
        finally:
            if publication is not None:
                publication.close()

    def _run_phases(
        self,
        policies,
        platform,
        work_time,
        n_traces,
        horizon,
        t0,
        seed,
        include_lower_bound,
        include_period_lb,
        period_lb_factors,
        period_lb_traces,
        max_makespan,
        start,
        layout,
    ):
        # Imported here: runner imports this module's config helpers, so
        # a module-level import would be circular.
        from repro.simulation.runner import LOWER_BOUND, PERIOD_LB, ScenarioResult
        from repro.simulation.runner import _optexp_period

        hits = misses = 0
        memo_hits = memo_misses = 0
        disk_hits = disk_misses = disk_evictions = 0
        # With several workers, each unit ships back the memo entries it
        # added; the parent merges them so later phases fork warm, and
        # the union of delta keys is the deduplicated miss count.
        collect_delta = self.jobs > 1 and self.use_memo
        merged_keys: set = set()

        def _absorb(res) -> None:
            nonlocal hits, misses, memo_hits, memo_misses
            nonlocal disk_hits, disk_misses, disk_evictions
            hits += res.cache_hits
            misses += res.cache_misses
            memo_hits += res.memo_hits
            memo_misses += res.memo_misses
            disk_hits += res.disk_hits
            disk_misses += res.disk_misses
            disk_evictions += res.disk_evictions
            if res.memo_delta:
                _shm.merge_memo_delta(res.memo_delta)
                merged_keys.update(key for key, _value in res.memo_delta)

        indices = list(range(n_traces))
        tasks = [
            _TraceTask(
                platform=platform,
                work_time=work_time,
                horizon=horizon,
                t0=t0,
                seed=seed,
                indices=batch,
                policies=policies,
                include_lower_bound=include_lower_bound,
                max_makespan=max_makespan,
                use_cache=self.use_cache,
                use_batch=self.use_batch,
                use_memo=self.use_memo,
                use_disk_cache=self.use_disk_cache,
                collect_memo_delta=collect_delta,
                layout=layout,
            )
            for batch in self._trace_batches(indices)
        ]
        results = self._map(_run_trace_task, tasks)

        makespans: dict[str, np.ndarray] = {
            p.name: np.full(n_traces, np.nan) for p in policies
        }
        details: dict[str, list] = {p.name: [None] * n_traces for p in policies}
        infeasible: dict[str, list[int]] = {}
        lb_spans = np.full(n_traces, np.nan)
        for res in results:
            _absorb(res)
            for name, pairs in res.per_policy.items():
                for index, (span, det) in zip(res.indices, pairs):
                    makespans[name][index] = span
                    details[name][index] = det
            for name, idxs in res.infeasible.items():
                infeasible.setdefault(name, []).extend(idxs)
            if res.lower_bound:
                for index, span in zip(res.indices, res.lower_bound):
                    lb_spans[index] = span
        for name in infeasible:
            infeasible[name].sort()
        if include_lower_bound:
            makespans[LOWER_BOUND] = lb_spans

        best_period = math.nan
        if include_period_lb:
            from repro.policies.periodlb import candidate_factors

            factors = (
                period_lb_factors
                if period_lb_factors is not None
                else candidate_factors()
            )
            base = _optexp_period(platform, work_time)
            periods = np.asarray(sorted(base * np.asarray(factors, dtype=float)))
            subset = indices[: (period_lb_traces or n_traces)]
            per_unit = max(
                1, math.ceil(periods.size / max(1, self.jobs * 2))
            )
            period_tasks = [
                _PeriodTask(
                    platform=platform,
                    work_time=work_time,
                    horizon=horizon,
                    t0=t0,
                    seed=seed,
                    subset_indices=subset,
                    periods=batch,
                    max_makespan=max_makespan,
                    use_cache=self.use_cache,
                    use_batch=self.use_batch,
                    use_memo=self.use_memo,
                    use_disk_cache=self.use_disk_cache,
                    collect_memo_delta=collect_delta,
                    layout=layout,
                )
                for batch in _chunk(list(periods), per_unit)
            ]
            means: list[float] = []
            for period_res in self._map(_run_period_task, period_tasks):
                means.extend(period_res.means)
                _absorb(period_res)
            best = int(np.argmin(means))
            best_period = float(periods[best])

            winner_tasks = [
                _TraceTask(
                    platform=platform,
                    work_time=work_time,
                    horizon=horizon,
                    t0=t0,
                    seed=seed,
                    indices=batch,
                    policies=[PeriodicPolicy(best_period, name=PERIOD_LB)],
                    include_lower_bound=False,
                    max_makespan=max_makespan,
                    use_cache=self.use_cache,
                    use_batch=self.use_batch,
                    use_memo=self.use_memo,
                    use_disk_cache=self.use_disk_cache,
                    collect_memo_delta=collect_delta,
                    layout=layout,
                )
                for batch in self._trace_batches(indices)
            ]
            lb_period_spans = np.full(n_traces, np.nan)
            for res in self._map(_run_trace_task, winner_tasks):
                _absorb(res)
                for index, (span, _det) in zip(res.indices, res.per_policy[PERIOD_LB]):
                    lb_period_spans[index] = span
            makespans[PERIOD_LB] = lb_period_spans

        return ScenarioResult(
            makespans=makespans,
            details=details,
            work_time=work_time,
            best_period=best_period,
            infeasible=infeasible,
            elapsed=time.perf_counter() - start,  # reprolint: clock-ok=diagnostic elapsed time
            n_jobs=self.jobs,
            cache_hits=hits,
            cache_misses=misses,
            memo_hits=memo_hits,
            memo_misses=memo_misses,
            memo_unique_misses=(
                len(merged_keys) if collect_delta else memo_misses
            ),
            disk_hits=disk_hits,
            disk_misses=disk_misses,
            disk_evictions=disk_evictions,
        )
