"""Discrete-event simulation of checkpoint/restart execution."""

from __future__ import annotations

from repro.simulation.batch import (
    TraceEnsemble,
    simulate_job_batch,
    simulate_lower_bound_batch,
    simulate_policy_ensemble,
)
from repro.simulation.engine import JobContext, simulate_job, simulate_lower_bound
from repro.simulation.parallel import (
    ExecutionConfig,
    ParallelRunner,
    SharedTraces,
    get_default_execution,
    set_default_execution,
)
from repro.simulation.results import SimulationResult
from repro.simulation.runner import (
    ScenarioResult,
    aggregate_counters,
    run_scenarios,
)
from repro.simulation.sweep import (
    SweepPlan,
    SweepResult,
    plan_sweep,
    run_sweep,
    trace_signature,
)

__all__ = [
    "JobContext",
    "simulate_job",
    "simulate_lower_bound",
    "TraceEnsemble",
    "simulate_job_batch",
    "simulate_lower_bound_batch",
    "simulate_policy_ensemble",
    "SimulationResult",
    "ScenarioResult",
    "aggregate_counters",
    "run_scenarios",
    "ExecutionConfig",
    "ParallelRunner",
    "SharedTraces",
    "get_default_execution",
    "set_default_execution",
    "SweepPlan",
    "SweepResult",
    "plan_sweep",
    "run_sweep",
    "trace_signature",
]
