"""Scenario orchestration: run every policy over a set of failure traces.

Mirrors the paper's methodology (Section 4.1): for an experimental
scenario, generate ``n_traces`` independent platform failure traces, run
every heuristic on every trace, add the omniscient ``LowerBound`` and the
searched ``PeriodLB``, and hand the per-trace makespans to
:mod:`repro.analysis` for the degradation-from-best statistic.

Execution is delegated to
:class:`repro.simulation.parallel.ParallelRunner`: ``jobs=1`` runs the
work units in process, ``jobs>1`` fans them out over worker processes
with bit-identical results (trace ``i`` is always generated from
``SeedSequence([seed, i])``, independent of batching).  Solved DP tables
are shared through :mod:`repro.core.cache` unless ``use_cache=False``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cluster.models import Platform
from repro.core.theory import optimal_num_chunks
from repro.policies.base import Policy
from repro.simulation.results import SimulationResult

__all__ = [
    "COUNTER_FIELDS",
    "ScenarioResult",
    "aggregate_counters",
    "run_scenarios",
]

LOWER_BOUND = "LowerBound"
PERIOD_LB = "PeriodLB"


@dataclass
class ScenarioResult:
    """Per-policy, per-trace outcomes of one experimental scenario.

    Attributes
    ----------
    makespans:
        Per policy name, the per-trace makespans (``NaN`` where the
        policy was infeasible on that trace).
    details:
        Per policy name, the per-trace :class:`SimulationResult` records
        (``None`` for infeasible pairs); not recorded for the synthetic
        ``LowerBound`` / ``PeriodLB`` entries.
    infeasible:
        Per policy name, the sorted trace indices on which the policy
        raised :class:`~repro.policies.base.PolicyInfeasibleError`
        (e.g. Liu on large Weibull platforms).  Policies that were
        always feasible do not appear.  Serial and parallel execution
        record identical entries.
    work_time:
        The failure-free execution time ``W(p)`` of the scenario.
    best_period:
        The winning PeriodLB period (``NaN`` when the search was off).
    elapsed:
        Wall-clock seconds spent executing the scenario.
    n_jobs:
        Worker processes used (1 = in-process serial).
    cache_hits / cache_misses:
        DP-table cache lookups observed during the run, aggregated over
        all workers (see :mod:`repro.core.cache`).
    memo_hits / memo_misses:
        DPNextFailure replan-memo lookups observed during the run,
        aggregated over all workers; both zero when no adaptive policy
        ran or the memo was disabled (``use_memo=False``).  The sums
        are *per-worker* counters: a signature solved independently by
        N workers contributes N misses.
    memo_unique_misses:
        The deduplicated miss count — how many *distinct* replan
        signatures were actually solved during the run (the union of
        the workers' memo deltas; equal to ``memo_misses`` on serial
        runs, where every miss is already unique).  The gap between
        ``memo_misses`` and this number is pure double-counting.
    disk_hits / disk_misses / disk_evictions:
        Persistent solve-tier activity (:mod:`repro.core.diskcache`)
        during the run, aggregated over all workers; all zero when the
        tier is disabled (``use_disk_cache=False``).
    trace_gen_reused / ensemble_reused:
        True when the run consumed a sweep group's shared trace set /
        compiled ensemble (:mod:`repro.simulation.sweep`) instead of
        generating or compiling its own.  Execution metadata only —
        never part of the comparable result payload.
    scheduler:
        Cost-model dispatch diagnostics: unit count, estimated-cost
        max/mean/imbalance and measured per-unit seconds (see
        :class:`~repro.simulation.parallel.ParallelRunner`).  Execution
        metadata only.
    """

    makespans: dict[str, np.ndarray]
    details: dict[str, list[SimulationResult]] = field(default_factory=dict)
    work_time: float = math.nan
    best_period: float = math.nan
    infeasible: dict[str, list[int]] = field(default_factory=dict)
    elapsed: float = math.nan
    n_jobs: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    memo_unique_misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    disk_evictions: int = 0
    trace_gen_reused: bool = False
    ensemble_reused: bool = False
    scheduler: dict = field(default_factory=dict)

    def policy_names(self) -> list[str]:
        """Every recorded policy, including LowerBound/PeriodLB."""
        return list(self.makespans)


#: Counter fields summed by :func:`aggregate_counters`.
COUNTER_FIELDS = (
    "cache_hits",
    "cache_misses",
    "memo_hits",
    "memo_misses",
    "memo_unique_misses",
    "disk_hits",
    "disk_misses",
    "disk_evictions",
)


def aggregate_counters(results) -> dict:
    """Run-level counter roll-up over several :class:`ScenarioResult`.

    Multi-scenario commands (``repro sweep``, ``repro benchmark``)
    previously reported cache/memo/disk counters only per scenario;
    this sums them into one summary block for the CLI envelope.  Note
    ``memo_unique_misses`` is deduplicated *within* each scenario, so
    the sum counts a signature once per scenario that solved it — a
    signature served from the parent memo in a later scenario is a hit
    there, not another unique miss.
    """
    results = list(results)
    totals: dict = {
        name: int(sum(getattr(res, name) for res in results))
        for name in COUNTER_FIELDS
    }
    totals["scenarios"] = len(results)
    totals["elapsed"] = float(
        sum(res.elapsed for res in results if math.isfinite(res.elapsed))
    )
    return totals


def _optexp_period(platform: Platform, work_time: float) -> float:
    lam = 1.0 / platform.platform_mtbf
    k = optimal_num_chunks(lam, work_time, platform.checkpoint)
    return work_time / k


def run_scenarios(
    policies: list[Policy],
    platform: Platform,
    work_time: float,
    n_traces: int,
    horizon: float,
    t0: float = 0.0,
    seed: int = 0,
    include_lower_bound: bool = True,
    include_period_lb: bool = True,
    period_lb_factors: list[float] | None = None,
    period_lb_traces: int | None = None,
    max_makespan: float = math.inf,
    jobs: int | None = None,
    use_cache: bool | None = None,
    batch_size: int | None = None,
    use_batch: bool | None = None,
    use_memo: bool | None = None,
    use_shm: bool | None = None,
    use_disk_cache: bool | None = None,
    progress: Callable[[int, int], None] | None = None,
    shared=None,
    executor=None,
) -> ScenarioResult:
    """Run ``policies`` over ``n_traces`` freshly generated traces.

    Traces are generated per scenario index with seeds derived from
    ``seed`` so the whole experiment is reproducible; infeasible
    policies (e.g. Liu on large Weibull platforms) record ``NaN``
    makespans *and* are listed in ``ScenarioResult.infeasible``.

    ``jobs`` selects the execution mode: 1 runs serially in process,
    ``N > 1`` fans (policy, trace-batch) work units out over ``N``
    worker processes, 0 or negative uses every CPU, and ``None`` reads
    the process-wide default
    (:func:`repro.simulation.parallel.set_default_execution`).  Per-trace
    results are bit-identical across all modes.  ``use_cache=False``
    bypasses the shared DP table cache; ``use_batch=False`` forces the
    scalar engine for policies the vectorized batch replay
    (:mod:`repro.simulation.batch`) would otherwise handle — results
    are bit-identical either way.  ``use_memo=False`` bypasses the
    cross-trace DPNextFailure replan memo and ``use_shm=False`` the
    shared-memory trace publication (parallel runs then regenerate
    traces per work unit) — again without changing any result.
    ``use_disk_cache=False`` bypasses the persistent disk solve tier
    (:mod:`repro.core.diskcache`) below the in-memory caches — the
    tier only moves solves between processes, never changes them.
    ``progress`` is an optional ``(done, total)`` work-unit callback
    (see :class:`~repro.simulation.parallel.ParallelRunner`).
    ``shared`` hands the runner a pre-built
    :class:`~repro.simulation.parallel.SharedTraces` (sweep groups) and
    ``executor`` an externally-owned process pool — both are execution
    plumbing that cannot change results.
    """
    # Imported here: parallel drives the engine and policies, so a
    # module-level import would be circular through the package inits.
    from repro.simulation.parallel import ParallelRunner

    runner = ParallelRunner(
        jobs=jobs,
        batch_size=batch_size,
        use_cache=use_cache,
        use_batch=use_batch,
        use_memo=use_memo,
        use_shm=use_shm,
        use_disk_cache=use_disk_cache,
        progress=progress,
        executor=executor,
    )
    return runner.run(
        policies,
        platform,
        work_time,
        n_traces=n_traces,
        horizon=horizon,
        t0=t0,
        seed=seed,
        include_lower_bound=include_lower_bound,
        include_period_lb=include_period_lb,
        period_lb_factors=period_lb_factors,
        period_lb_traces=period_lb_traces,
        max_makespan=max_makespan,
        shared=shared,
    )
