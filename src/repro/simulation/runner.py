"""Scenario orchestration: run every policy over a set of failure traces.

Mirrors the paper's methodology (Section 4.1): for an experimental
scenario, generate ``n_traces`` independent platform failure traces, run
every heuristic on every trace, add the omniscient ``LowerBound`` and the
searched ``PeriodLB``, and hand the per-trace makespans to
:mod:`repro.analysis` for the degradation-from-best statistic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.models import Platform
from repro.core.theory import optimal_num_chunks
from repro.policies.base import PeriodicPolicy, Policy, PolicyInfeasibleError
from repro.simulation.engine import simulate_job, simulate_lower_bound
from repro.simulation.results import SimulationResult
from repro.traces.generation import generate_platform_traces

__all__ = ["ScenarioResult", "run_scenarios"]

LOWER_BOUND = "LowerBound"
PERIOD_LB = "PeriodLB"


@dataclass
class ScenarioResult:
    """Per-policy, per-trace outcomes of one experimental scenario."""

    makespans: dict[str, np.ndarray]
    details: dict[str, list[SimulationResult]] = field(default_factory=dict)
    work_time: float = math.nan
    best_period: float = math.nan

    def policy_names(self) -> list[str]:
        """Every recorded policy, including LowerBound/PeriodLB."""
        return list(self.makespans)


def _optexp_period(platform: Platform, work_time: float) -> float:
    lam = 1.0 / platform.platform_mtbf
    k = optimal_num_chunks(lam, work_time, platform.checkpoint)
    return work_time / k


def run_scenarios(
    policies: list[Policy],
    platform: Platform,
    work_time: float,
    n_traces: int,
    horizon: float,
    t0: float = 0.0,
    seed=0,
    include_lower_bound: bool = True,
    include_period_lb: bool = True,
    period_lb_factors=None,
    period_lb_traces: int | None = None,
    max_makespan: float = math.inf,
) -> ScenarioResult:
    """Run ``policies`` over ``n_traces`` freshly generated traces.

    Traces are generated per scenario index with seeds derived from
    ``seed`` so the whole experiment is reproducible; infeasible policies
    (e.g. Liu on large Weibull platforms) record ``NaN`` makespans.
    """
    n_units = platform.num_nodes
    job_traces = []
    for i in range(n_traces):
        plat_traces = generate_platform_traces(
            platform.dist,
            n_units,
            horizon,
            downtime=platform.downtime,
            seed=np.random.SeedSequence([int(seed), i]),
        )
        job_traces.append(plat_traces.for_job(n_units))

    makespans: dict[str, np.ndarray] = {}
    details: dict[str, list[SimulationResult]] = {}

    for policy in policies:
        spans = np.full(n_traces, np.nan)
        dets: list[SimulationResult] = []
        for i, tr in enumerate(job_traces):
            try:
                res = simulate_job(
                    policy,
                    work_time,
                    tr,
                    platform.checkpoint,
                    platform.recovery,
                    platform.dist,
                    t0=t0,
                    platform_mtbf=platform.platform_mtbf,
                    max_makespan=max_makespan,
                )
            except PolicyInfeasibleError:
                dets.append(None)
                continue
            spans[i] = res.makespan
            dets.append(res)
        makespans[policy.name] = spans
        details[policy.name] = dets

    if include_lower_bound:
        spans = np.array(
            [
                simulate_lower_bound(
                    work_time, tr, platform.checkpoint, platform.recovery, t0=t0
                ).makespan
                for tr in job_traces
            ]
        )
        makespans[LOWER_BOUND] = spans

    best_period = math.nan
    if include_period_lb:
        # Imported here: periodlb drives the engine, so a module-level
        # import would be circular through the package __init__s.
        from repro.policies.periodlb import best_period_search, candidate_factors

        base = _optexp_period(platform, work_time)
        subset = job_traces[: (period_lb_traces or n_traces)]
        search = best_period_search(
            base,
            work_time,
            subset,
            platform.checkpoint,
            platform.recovery,
            platform.dist,
            t0=t0,
            platform_mtbf=platform.platform_mtbf,
            factors=(
                period_lb_factors
                if period_lb_factors is not None
                else candidate_factors()
            ),
            max_makespan=max_makespan,
        )
        best_period = search.best_period
        policy = PeriodicPolicy(best_period, name=PERIOD_LB)
        spans = np.array(
            [
                simulate_job(
                    policy,
                    work_time,
                    tr,
                    platform.checkpoint,
                    platform.recovery,
                    platform.dist,
                    t0=t0,
                    platform_mtbf=platform.platform_mtbf,
                    max_makespan=max_makespan,
                ).makespan
                for tr in job_traces
            ]
        )
        makespans[PERIOD_LB] = spans

    return ScenarioResult(
        makespans=makespans,
        details=details,
        work_time=work_time,
        best_period=best_period,
    )
