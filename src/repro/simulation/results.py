"""Simulation outcome records."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of one job execution on one failure trace.

    Attributes
    ----------
    makespan:
        Wall-clock time from job submission to completion (seconds);
        ``inf`` if the job did not complete (``completed`` False).
    work_time:
        The failure-free execution time ``W(p)`` (useful compute).
    n_failures:
        Platform failures experienced during the execution (including
        cascading failures during downtimes and recoveries).
    n_checkpoints:
        Checkpoints successfully taken.
    n_attempts:
        Chunk execution attempts (successful or not).
    chunk_min / chunk_max:
        Smallest / largest chunk size attempted (seconds of work), for
        the paper's adaptivity observations; NaN when no attempt.
    completed:
        Whether the job finished within the allowed horizon.
    time_lost:
        Compute/checkpoint time spent on attempts that a failure voided.
    time_outage:
        Time from each failure to the end of its (possibly restarted)
        recovery, cascades included.
    time_waiting:
        Initial wait for units still in downtime at submission.

    For a completed run the accounting is exact:

        makespan = work_time + n_checkpoints * C
                   + time_lost + time_outage + time_waiting.
    """

    makespan: float
    work_time: float
    n_failures: int = 0
    n_checkpoints: int = 0
    n_attempts: int = 0
    chunk_min: float = field(default=math.nan)
    chunk_max: float = field(default=math.nan)
    completed: bool = True
    time_lost: float = 0.0
    time_outage: float = 0.0
    time_waiting: float = 0.0

    @property
    def overhead(self) -> float:
        """Time beyond the failure-free execution time."""
        return self.makespan - self.work_time

    @property
    def waste_fraction(self) -> float:
        return self.overhead / self.makespan if self.makespan > 0 else 0.0
