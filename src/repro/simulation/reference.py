"""Reference simulator: slow, transparent, used as a differential-test
oracle for the optimized engine.

This implementation advances time microscopically through an explicit
per-unit state machine — no merged event stream, no index arithmetic —
so its correctness can be verified by inspection.  The test suite runs
both engines over random scenarios and requires bit-identical makespans
(`tests/test_differential.py`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.simulation.results import SimulationResult
from repro.traces.generation import JobTraces

__all__ = ["simulate_job_reference"]


class _Unit:
    """One failure unit: its future failure dates and downtime state."""

    def __init__(self, times: np.ndarray, downtime: float):
        self.times = list(map(float, times))
        self.downtime = downtime
        self.up_since = 0.0  # start of current lifetime
        self.down_until = -math.inf

    def catch_up(self, t: float) -> None:
        """Consume every failure at or before ``t`` (idle periods)."""
        while self.times and self.times[0] <= t:
            self.fail(self.times[0])

    def next_failure(self) -> float:
        """Next *live* failure date (skips dates inside own downtime)."""
        while self.times and self.times[0] < self.up_since:
            self.times.pop(0)
        return self.times[0] if self.times else math.inf

    def fail(self, when: float) -> None:
        self.times.pop(0)
        self.down_until = when + self.downtime
        self.up_since = self.down_until

    def available_at(self, t: float) -> bool:
        return t >= self.down_until


def simulate_job_reference(
    policy,
    work_time: float,
    traces: JobTraces,
    checkpoint: float,
    recovery: float,
    dist,
    t0: float = 0.0,
    platform_mtbf: float = math.nan,
    max_makespan: float = math.inf,
) -> SimulationResult:
    """Drop-in equivalent of :func:`repro.simulation.simulate_job`."""
    from repro.simulation.engine import JobContext

    units = []
    for u in range(traces.n_units):
        mask = traces.units == u
        units.append(_Unit(traces.times[mask], traces.downtime))
    # replay history before t0
    for unit in units:
        while unit.times and unit.times[0] < t0:
            unit.fail(unit.times[0])
    t = max([t0] + [u.down_until for u in units])

    def lifetime_starts() -> np.ndarray:
        return np.array([u.up_since for u in units])

    ctx = JobContext(
        checkpoint=checkpoint,
        recovery=recovery,
        downtime=traces.downtime,
        dist=dist,
        work_time=work_time,
        n_units=traces.n_units,
        platform_mtbf=platform_mtbf,
        t0=t0,
        time=t,
        _lifetime_start=lifetime_starts(),
    )
    policy.setup(ctx)

    def outage_and_recovery(first_fail: float, failing_idx: int) -> tuple[float, int]:
        """Process a failure, its cascades and the (restartable)
        recovery; return (time computing can resume, failures seen)."""
        n_fail = 1
        units[failing_idx].fail(first_fail)
        while True:
            # all units must be up, simultaneously, for R seconds
            start = max(u.down_until for u in units)
            # any live failure in (start, start + R] interrupts recovery;
            # failures before `start` on a down unit cascade the outage
            interrupted = False
            for i, u in enumerate(units):
                nf = u.next_failure()
                if nf <= start + recovery:
                    u.fail(nf)
                    n_fail += 1
                    interrupted = True
                    break
            if not interrupted:
                return start + recovery, n_fail

    remaining = work_time
    n_failures = 0
    n_checkpoints = 0
    n_attempts = 0
    chunk_min, chunk_max = math.inf, 0.0
    while remaining > 1e-6:
        ctx.time = t
        ctx._lifetime_start = lifetime_starts()
        w = float(policy.next_chunk(remaining, ctx))
        w = min(w, remaining)
        chunk_min = min(chunk_min, w)
        chunk_max = max(chunk_max, w)
        n_attempts += 1
        end = t + w + checkpoint
        # first live failure during the attempt, across units
        fail_time, fail_idx = math.inf, -1
        for i, u in enumerate(units):
            nf = u.next_failure()
            if t <= nf < end and nf < fail_time:
                fail_time, fail_idx = nf, i
        if fail_idx < 0:
            t = end
            remaining -= w
            n_checkpoints += 1
        else:
            t, seen = outage_and_recovery(fail_time, fail_idx)
            n_failures += seen
            ctx.time = t
            ctx._lifetime_start = lifetime_starts()
            policy.on_failure(ctx)
        if t - t0 > max_makespan:
            return SimulationResult(
                makespan=math.inf,
                work_time=work_time,
                n_failures=n_failures,
                n_checkpoints=n_checkpoints,
                n_attempts=n_attempts,
                completed=False,
            )
    return SimulationResult(
        makespan=t - t0,
        work_time=work_time,
        n_failures=n_failures,
        n_checkpoints=n_checkpoints,
        n_attempts=n_attempts,
        chunk_min=chunk_min if n_attempts else math.nan,
        chunk_max=chunk_max if n_attempts else math.nan,
    )
