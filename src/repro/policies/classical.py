"""MTBF-based periodic policies: Young, Daly (low/high order), OptExp.

All four compute a fixed period from the *platform* MTBF ``M =
processor-MTBF / p`` — i.e. they implicitly assume Exponential failures.
Following the paper, they are applied unchanged to Weibull and log-based
scenarios, simply reusing the (empirical) MTBF.
"""

from __future__ import annotations

import math

from repro.core.theory import optimal_num_chunks
from repro.policies.base import Policy, StaticSchedule
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.simulation.engine import JobContext

__all__ = ["Young", "DalyLow", "DalyHigh", "OptExp"]


class _MTBFPeriodic(Policy):
    """Periodic policy whose period is derived from ctx at setup."""

    def __init__(self):
        self.period = math.nan

    def setup(self, ctx: "JobContext") -> None:
        self.period = self._compute_period(ctx)
        if not self.period > 0:
            raise ValueError(f"{self.name}: non-positive period {self.period}")

    def next_chunk(self, remaining: float, ctx: "JobContext") -> float:
        return min(self.period, remaining)

    def static_schedule(self, ctx: "JobContext") -> StaticSchedule:
        # The period is a function of scenario parameters only (setup
        # has run), so one schedule serves the whole trace ensemble.
        return StaticSchedule(period=self.period)

    def _compute_period(self, ctx: "JobContext") -> float:
        raise NotImplementedError


class Young(_MTBFPeriodic):
    """Young's first-order approximation [26]: ``sqrt(2 C M)``."""

    name = "Young"

    def _compute_period(self, ctx: "JobContext") -> float:
        return math.sqrt(2.0 * ctx.checkpoint * ctx.platform_mtbf)


class DalyLow(_MTBFPeriodic):
    """Daly's lower-order estimate [8]: ``sqrt(2 C (M + D + R))``."""

    name = "DalyLow"

    def _compute_period(self, ctx: "JobContext") -> float:
        return math.sqrt(
            2.0
            * ctx.checkpoint
            * (ctx.platform_mtbf + ctx.downtime + ctx.recovery)
        )


class DalyHigh(_MTBFPeriodic):
    """Daly's higher-order estimate [8]:

        w = sqrt(2 C M) [1 + (1/3) sqrt(C / (2M)) + (1/9) (C / (2M))] - C

    for ``C < 2M``, and ``w = M`` otherwise.
    """

    name = "DalyHigh"

    def _compute_period(self, ctx: "JobContext") -> float:
        c, m = ctx.checkpoint, ctx.platform_mtbf
        if c >= 2.0 * m:
            return m
        ratio = c / (2.0 * m)
        w = math.sqrt(2.0 * c * m) * (
            1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0
        ) - c
        # The expansion can go non-positive in extreme regimes; fall back
        # to Young's period rather than a nonsensical chunk.
        return w if w > 0 else math.sqrt(2.0 * c * m)


class OptExp(_MTBFPeriodic):
    """The paper's optimal periodic policy for Exponential failures
    (Proposition 5): split ``W(p)`` into ``K*`` equal chunks with
    ``K0 = p lam W(p) / (1 + L(-e^{-p lam C(p) - 1}))``.

    The chunk size depends on the total work, so it is computed lazily at
    the first ``next_chunk`` call (where ``remaining`` equals ``W(p)``).
    """

    name = "OptExp"

    def setup(self, ctx: "JobContext") -> None:
        # lam_platform = 1 / platform MTBF = p * lam_processor
        lam = 1.0 / ctx.platform_mtbf
        k = optimal_num_chunks(lam, ctx.work_time, ctx.checkpoint)
        self.period = ctx.work_time / k

    def _compute_period(self, ctx: "JobContext") -> float:  # pragma: no cover
        raise AssertionError("unused: setup overridden")
