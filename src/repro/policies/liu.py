"""Liu et al. non-periodic policy [17].

Liu et al. place checkpoints through a *checkpointing frequency
function*: following the variational-calculus optimum (Ling et al. [16]),
the instantaneous checkpoint frequency is

    n(t) = sqrt( h(t) / (2 C) )

with ``h`` the (platform-level) failure hazard rate, and the checkpoint
dates ``t_k`` solve ``N(t_k) = int_0^{t_k} n(u) du = k``.

Like Bouguerra, the construction treats the platform as a renewal system
whose hazard restarts at every failure, so we use the rejuvenated
platform law ``min(X_1..X_p)``.  For Weibull shapes ``k < 1`` on large
platforms the early hazard is so high that consecutive dates fall closer
together than the checkpoint duration itself — the policy then cannot be
executed, which is exactly the failure mode the paper reports (its Liu
curves are incomplete and the authors suspect an error in [17]).  We
surface that case as :class:`PolicyInfeasibleError`.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.minimum import MinOfIID
from repro.policies.base import Policy, PolicyInfeasibleError, StaticSchedule
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.simulation.engine import JobContext

__all__ = ["Liu"]


def liu_checkpoint_dates(dist, c: float, horizon: float, n_grid: int = 8192):
    """Checkpoint dates ``t_k`` with ``int_0^{t_k} sqrt(h/2C) = k`` on
    ``[0, horizon]``."""
    # Geometric grid: decreasing hazards (Weibull k < 1) have an
    # integrable singularity of sqrt(h) at t = 0 that a uniform grid
    # would resolve poorly.
    ts = np.geomspace(horizon * 1e-12, horizon, n_grid)
    h = np.asarray(dist.hazard(ts), dtype=float)
    h = np.nan_to_num(h, nan=0.0, posinf=0.0)
    freq = np.sqrt(np.maximum(h, 0.0) / (2.0 * c))
    head = freq[0] * ts[0]  # contribution of [0, ts[0]] (negligible)
    big_n = head + np.concatenate(
        [[0.0], np.cumsum(0.5 * (freq[1:] + freq[:-1]) * np.diff(ts))]
    )
    total = big_n[-1]
    ks = np.arange(1.0, np.floor(total) + 1.0)
    return np.interp(ks, big_n, ts)


class Liu(Policy):
    """Hazard-driven non-periodic policy; schedule restarts after each
    failure (the recovered platform is treated as renewed)."""

    name = "Liu"

    def __init__(self):
        self._chunks: list[float] = []
        self._idx = 0

    def setup(self, ctx: "JobContext") -> None:
        platform_law = (
            MinOfIID(ctx.dist, ctx.n_units) if ctx.n_units > 1 else ctx.dist
        )
        # Schedule horizon: enough wall-clock to finish the job with a
        # comfortable margin of checkpoint overheads.
        horizon = 3.0 * ctx.work_time + 100.0 * ctx.checkpoint
        dates = liu_checkpoint_dates(platform_law, ctx.checkpoint, horizon)
        if dates.size == 0:
            raise PolicyInfeasibleError("Liu produced no checkpoint dates")
        # Chunk k is the compute time between the end of checkpoint k-1
        # and the start of checkpoint k.
        starts = np.concatenate([[0.0], dates[:-1] + ctx.checkpoint])
        chunks = dates - starts
        if np.any(chunks <= 0):
            raise PolicyInfeasibleError(
                "Liu checkpoint dates closer than the checkpoint duration"
            )
        self._chunks = chunks.tolist()
        self._idx = 0

    def on_failure(self, ctx: "JobContext") -> None:
        # Restart the date schedule relative to the recovery point.
        self._idx = 0

    def next_chunk(self, remaining: float, ctx: "JobContext") -> float:
        if self._idx >= len(self._chunks):
            raise PolicyInfeasibleError("Liu schedule exhausted before job end")
        w = self._chunks[self._idx]
        self._idx += 1
        return min(w, remaining)

    def static_schedule(self, ctx: "JobContext") -> StaticSchedule:
        # The date schedule restarts after every failure (on_failure
        # resets the index), which is exactly the restarting-chunks
        # replay mode; exhaustion maps to per-trace infeasibility.
        return StaticSchedule(chunks=np.asarray(self._chunks, dtype=float))
