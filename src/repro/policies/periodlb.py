"""PeriodLB: numerical search for the best periodic policy.

The paper's ``PeriodLB`` multiplies and divides the OptExp period by
``1 + 0.05 i`` (``i <= 180``) and by ``1.1^j`` (``j <= 60``), evaluates
every candidate period on a set of random scenarios, and keeps the best.
It is a lower-bound *for periodic policies* that would be prohibitively
expensive in practice.

:func:`candidate_factors` reproduces that factor grid (scaled down by
default); :func:`best_period_search` evaluates candidates over a trace
set and returns the winner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.policies.base import PeriodicPolicy
from repro.simulation.engine import simulate_job

__all__ = ["candidate_factors", "best_period_search", "PeriodSearchResult"]


def candidate_factors(n_linear: int = 10, n_geometric: int = 8, step: float = 0.05):
    """Multiplicative factors around the base period.

    Paper scale: ``n_linear=180, n_geometric=60``; defaults are reduced.
    The grid is symmetric: each factor ``f`` is used as ``f`` and ``1/f``.
    """
    linear = 1.0 + step * np.arange(1, n_linear + 1)
    geometric = 1.1 ** np.arange(1, n_geometric + 1)
    f = np.concatenate([[1.0], linear, 1.0 / linear, geometric, 1.0 / geometric])
    return np.unique(f)


@dataclass
class PeriodSearchResult:
    """Outcome of the search: winning period and the full sweep."""

    best_period: float
    best_mean_makespan: float
    periods: np.ndarray
    mean_makespans: np.ndarray


def best_period_search(
    base_period: float,
    work_time: float,
    job_traces: list,
    checkpoint: float,
    recovery: float,
    dist,
    t0: float = 0.0,
    platform_mtbf: float = np.nan,
    factors=None,
    max_makespan: float = np.inf,
    use_batch: bool = True,
) -> PeriodSearchResult:
    """Evaluate ``base_period * factor`` for every factor over the given
    job traces and return the period minimizing the mean makespan.

    With ``use_batch`` (the default) every candidate is replayed by the
    vectorized batch engine against one shared compiled ensemble —
    bit-identical to the per-trace scalar sweep, much faster.
    """
    if factors is None:
        factors = candidate_factors()
    periods = np.asarray(sorted(base_period * np.asarray(factors)))
    means = np.empty(periods.size)
    ensemble = None
    if use_batch and job_traces:
        # Imported lazily: the batch engine imports the policies
        # package, so a module-level import would be circular.
        from repro.simulation.batch import TraceEnsemble

        ensemble = TraceEnsemble(job_traces, recovery, t0)
    for idx, period in enumerate(periods):
        policy = PeriodicPolicy(period, name="PeriodCandidate")
        if ensemble is not None:
            from repro.simulation.batch import simulate_policy_ensemble

            results = simulate_policy_ensemble(
                policy,
                work_time,
                job_traces,
                checkpoint,
                recovery,
                dist,
                t0=t0,
                platform_mtbf=platform_mtbf,
                max_makespan=max_makespan,
                ensemble=ensemble,
                use_batch=use_batch,
            )
            spans = [res.makespan for res in results if res is not None]
        else:
            spans = [
                simulate_job(
                    policy,
                    work_time,
                    tr,
                    checkpoint,
                    recovery,
                    dist,
                    t0=t0,
                    platform_mtbf=platform_mtbf,
                    max_makespan=max_makespan,
                ).makespan
                for tr in job_traces
            ]
        means[idx] = float(np.mean(spans))
    best = int(np.argmin(means))
    return PeriodSearchResult(
        best_period=float(periods[best]),
        best_mean_makespan=float(means[best]),
        periods=periods,
        mean_makespans=means,
    )
