"""Policy interface and the generic periodic policy."""

from __future__ import annotations

import abc

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.simulation.engine import JobContext

__all__ = [
    "Policy",
    "PeriodicPolicy",
    "PolicyInfeasibleError",
    "StaticSchedule",
]


class PolicyInfeasibleError(RuntimeError):
    """Raised when a policy cannot produce meaningful checkpoint dates
    for the given scenario (e.g. Liu with inter-checkpoint intervals
    shorter than the checkpoint duration — the pathology the paper
    reports for large Weibull platforms)."""


@dataclass(frozen=True)
class StaticSchedule:
    """A fixed chunk schedule declared by a policy for batch replay.

    Exactly one of the two fields is set:

    - ``period``: every attempt proposes ``min(period, remaining)`` —
      the stateless periodic family (Young, Daly, OptExp, Bouguerra,
      PeriodLB candidates);
    - ``chunks``: attempts since the last failure (or job start) follow
      ``chunks[0], chunks[1], ...``, each clipped to the remaining work,
      and the index restarts at 0 after every failure — Liu's renewal
      schedule.  A trace that needs more chunks than provided is
      infeasible on replay, mirroring the scalar engine's
      :class:`PolicyInfeasibleError`.
    """

    period: float | None = None
    chunks: np.ndarray | None = None

    def __post_init__(self) -> None:
        if (self.period is None) == (self.chunks is None):
            raise ValueError("set exactly one of period/chunks")
        if self.period is not None and not self.period > 0:
            raise ValueError("period must be positive")
        if self.chunks is not None and np.any(np.asarray(self.chunks) <= 0):
            raise ValueError("all scheduled chunks must be positive")


class Policy(abc.ABC):
    """A checkpointing strategy: the function ``f(omega | state)``.

    The simulator calls :meth:`setup` once at job start, then
    :meth:`next_chunk` at every decision point and :meth:`on_failure`
    after every recovery.  A policy instance is used for one simulation
    at a time (``setup`` must reset any internal state).
    """

    name: str = "policy"

    def setup(self, ctx: "JobContext") -> None:
        """Prepare for a fresh job execution."""

    def on_failure(self, ctx: "JobContext") -> None:
        """Notification that a failure occurred and recovery completed."""

    def static_schedule(self, ctx: "JobContext") -> StaticSchedule | None:
        """The policy's fixed chunk schedule, or None if state-dependent.

        Called after :meth:`setup`.  An implementation promises that its
        ``next_chunk`` decisions depend only on scenario-level fields of
        ``ctx`` (never ``ctx.time`` / ``ctx.ages``), so one schedule is
        valid for every trace of a scenario and the batch replay engine
        (:mod:`repro.simulation.batch`) may simulate a whole trace
        ensemble with array operations.  Policies that adapt to runtime
        platform state (the DP policies) return None and fall back to
        the scalar engine.
        """
        return None

    @abc.abstractmethod
    def next_chunk(self, remaining: float, ctx: "JobContext") -> float:
        """Size (seconds of work) of the next chunk to attempt."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class PeriodicPolicy(Policy):
    """Checkpoint every ``period`` seconds of work, whatever happens."""

    def __init__(self, period: float, name: str = "Periodic"):
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = float(period)
        self.name = name

    def next_chunk(self, remaining: float, ctx: "JobContext") -> float:
        return min(self.period, remaining)

    def static_schedule(self, ctx: "JobContext") -> StaticSchedule:
        return StaticSchedule(period=self.period)
