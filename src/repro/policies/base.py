"""Policy interface and the generic periodic policy."""

from __future__ import annotations

import abc

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.simulation.engine import JobContext

__all__ = ["Policy", "PeriodicPolicy", "PolicyInfeasibleError"]


class PolicyInfeasibleError(RuntimeError):
    """Raised when a policy cannot produce meaningful checkpoint dates
    for the given scenario (e.g. Liu with inter-checkpoint intervals
    shorter than the checkpoint duration — the pathology the paper
    reports for large Weibull platforms)."""


class Policy(abc.ABC):
    """A checkpointing strategy: the function ``f(omega | state)``.

    The simulator calls :meth:`setup` once at job start, then
    :meth:`next_chunk` at every decision point and :meth:`on_failure`
    after every recovery.  A policy instance is used for one simulation
    at a time (``setup`` must reset any internal state).
    """

    name: str = "policy"

    def setup(self, ctx: "JobContext") -> None:
        """Prepare for a fresh job execution."""

    def on_failure(self, ctx: "JobContext") -> None:
        """Notification that a failure occurred and recovery completed."""

    @abc.abstractmethod
    def next_chunk(self, remaining: float, ctx: "JobContext") -> float:
        """Size (seconds of work) of the next chunk to attempt."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class PeriodicPolicy(Policy):
    """Checkpoint every ``period`` seconds of work, whatever happens."""

    def __init__(self, period: float, name: str = "Periodic"):
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = float(period)
        self.name = name

    def next_chunk(self, remaining: float, ctx: "JobContext") -> float:
        return min(self.period, remaining)
